"""Dynamic systems: a ledger whose clients join and leave at run time.

The dynamicity layer (Section 2.5) is what distinguishes this framework
from the static Task-PIOA world: probabilistic configuration automata
create automata through intrinsic transitions and destroy them when their
signature empties.  The script:

1. steps a ledger PCA through a join → transact → acknowledge → destroy
   cycle, printing the live configuration at each step,
2. validates the four PCA constraints (Definition 2.16),
3. explores the full dynamic state space and reports its shape,
4. demonstrates monotonicity w.r.t. creation (the Section 4.4 property):
   a PCA spawning a biased coin is no easier to distinguish from one
   spawning a fair coin than the coins themselves are.

Run:  python examples/dynamic_ledger.py
"""

from fractions import Fraction

from repro.analysis.explore import state_space_summary
from repro.config.validate import validate_pca
from repro.core.psioa import reachable_states
from repro.experiments.common import run_experiment
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import PriorityScheduler
from repro.systems.ledger import ledger_manager_pca


def step_through() -> None:
    pca = ledger_manager_pca(2)
    print("Stepping the 2-client ledger (states are configurations):")
    state = pca.start
    script = [
        ("join", lambda a: isinstance(a, tuple) and a[0] == "join"),
        ("tx", lambda a: isinstance(a, tuple) and a[0] == "tx"),
        ("ack", lambda a: isinstance(a, tuple) and a[0] == "ack"),
        ("join", lambda a: isinstance(a, tuple) and a[0] == "join"),
    ]
    for label, predicate in script:
        enabled = [a for a in pca.signature(state).all_actions if predicate(a)]
        action = sorted(enabled, key=repr)[0]
        (state,) = pca.transition(state, action).support()
        members = ", ".join(repr(n) for n in sorted(state.ids(), key=repr))
        print(f"  after {action!r}: live automata = [{members}]")


def main() -> None:
    step_through()

    pca = ledger_manager_pca(2)
    validate_pca(pca)
    print("\nPCA constraints of Definition 2.16: OK")

    summary = state_space_summary(pca)
    print(
        f"dynamic state space: {summary.states} configurations, "
        f"{summary.transitions} transitions, {summary.actions} actions"
    )
    sizes = sorted({len(s) for s in reachable_states(pca)})
    print(f"configuration sizes along executions: {sizes} "
          f"(creation grows them, destruction shrinks them)")

    # A full transactional run under a run-to-completion scheduler.
    sched = PriorityScheduler(
        [
            lambda a: isinstance(a, tuple) and a[0] == "join",
            lambda a: isinstance(a, tuple) and a[0] == "tx",
            lambda a: isinstance(a, tuple) and a[0] == "ack",
        ],
        12,
    )
    measure = execution_measure(pca, sched)
    (execution,) = measure.support()
    print(f"\nfull run ({len(execution)} steps): "
          f"{' -> '.join(repr(a) for a in execution.actions)}")
    print(f"final configuration: {sorted(execution.lstate.ids(), key=repr)} "
          f"(all clients destroyed)")

    print("\nMonotonicity w.r.t. creation (E11):")
    print(run_experiment("E11"))


if __name__ == "__main__":
    main()
