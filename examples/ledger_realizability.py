"""Ideal-functionality design: which ideal ledger is realizable?

Blockchain formalizations must choose what the *ideal* ledger promises.
This example uses the framework to decide a classic design question as a
computation: a real ordering service that lets the network adversary pick
the commit order of a batch

* **does** securely emulate the ideal ledger that exposes the same
  ordering choice to the adversary, and
* **provably cannot** emulate the strict-FIFO ideal — the reversing
  adversary produces commit orders no simulator can reproduce.

The script walks both worlds step by step and then prints the E14 table.

Run:  python examples/ledger_realizability.py
"""

from repro.core.composition import compose
from repro.experiments.common import run_experiment
from repro.secure.adversary import is_adversary
from repro.secure.dummy import hide_adversary_actions
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.ledger import (
    fifo_ideal_ledger,
    ideal_fifo_script,
    ledger_environment,
    ordering_adversary,
    ordering_ledger,
    reversing_script,
)


def main() -> None:
    real = ordering_ledger()
    adversary = ordering_adversary()
    print("the real ordering ledger's adversary interface:",
          sorted(map(repr, real.global_aact())))
    print("Definition 4.24 check — ordering adversary is an adversary:",
          is_adversary(adversary, real))

    # A reversed run of the real world.
    env = ledger_environment()
    world_sys = hide_adversary_actions(
        compose(real, adversary, name="real-world"),
        frozenset(real.global_aact()),
    )
    world = compose(env, world_sys)
    sigma = ActionSequenceScheduler(reversing_script(), local_only=True)
    measure = execution_measure(world, sigma)
    (execution,) = measure.support()
    print("\nreal world under the reversing resolution:")
    print("  ", " -> ".join(repr(a) for a in execution.actions))
    print("  environment accepts (order reversed):",
          f_dist(accept_insight(), env, world_sys, sigma)(1))

    # The FIFO ideal cannot follow.
    fifo = fifo_ideal_ledger()
    print("\nthe strict-FIFO ideal's adversary interface:",
          sorted(map(repr, fifo.global_aact())),
          "- no ordering input for a simulator to drive")
    from repro.core.psioa import TablePSIOA
    from repro.core.signature import Signature
    from repro.probability.measures import dirac

    sim = TablePSIOA(
        "sim", "s",
        {"s": Signature(inputs={("pending",)})},
        {("s", ("pending",)): dirac("s")},
    )
    ideal_sys = hide_adversary_actions(
        compose(fifo, sim, name="ideal-world"), frozenset(fifo.global_aact())
    )
    sigma_ideal = ActionSequenceScheduler(ideal_fifo_script(), local_only=True)
    print("  ideal world accepts:",
          f_dist(accept_insight(), env, ideal_sys, sigma_ideal)(1))

    print("\nThe full experiment (E14):")
    print(run_experiment("E14"))


if __name__ == "__main__":
    main()
