"""The dummy adversary, step by step (Definition 4.27, Lemma 4.29).

The composability proof of dynamic secure emulation hinges on one fact:
putting a forwarding "dummy" between a system and its adversary is
*perfectly* invisible.  This script makes the construction concrete:

1. build a structured system (adversary-facing toss, environment-facing
   result), the renaming ``g``, and ``Dummy(A, g)``,
2. show the two worlds ``Phi = E || g(A) || Adv`` and
   ``Psi = E || hide(A || Dummy, AAct) || Adv``,
3. expand an execution through ``Forward^e`` and collapse it back,
4. build the ``Forward^s`` scheduler and verify the f-dist equality is
   *exact* (rational arithmetic, distance the integer 0).

Run:  python examples/dummy_adversary.py
"""

from fractions import Fraction

from repro.core.executions import Fragment
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import dirac, total_variation
from repro.secure.dummy import (
    ForwardScheduler,
    build_dummy_worlds,
    collapse_execution,
    forward_execution,
)
from repro.secure.structured import structure
from repro.semantics.insight import print_insight
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin


def observer():
    signatures = {
        "watch": Signature(inputs={"head", "tail"}),
        "happy": Signature(inputs={"head", "tail"}, outputs={"acc"}),
        "done": Signature(inputs={"head", "tail"}),
    }
    transitions = {
        ("watch", "head"): dirac("happy"),
        ("watch", "tail"): dirac("watch"),
        ("happy", "head"): dirac("happy"),
        ("happy", "tail"): dirac("happy"),
        ("happy", "acc"): dirac("done"),
        ("done", "head"): dirac("done"),
        ("done", "tail"): dirac("done"),
    }
    return TablePSIOA("E", "watch", signatures, transitions)


def main() -> None:
    system = structure(coin("A", Fraction(1, 2)), {"head", "tail"})
    env = observer()
    adv = TablePSIOA(
        "Adv",
        "s",
        {"s": Signature(inputs={("g", "toss")})},
        {("s", ("g", "toss")): dirac("s")},
    )

    phi, psi, dummy, g = build_dummy_worlds(env, system, adv)
    print("the adversary renaming g:", g)
    print("dummy start state:", dummy.start)
    print("Phi start:", phi.start)
    print("Psi start:", psi.start, "(system component carries the dummy's pending slot)")

    # Forward^e on a concrete execution.
    alpha = Fragment(
        (("watch", "q0", "s"), ("watch", "qH", "s"), ("happy", "qF", "s")),
        (("g", "toss"), "head"),
    )
    print(f"\nPhi execution   ({len(alpha)} steps): {alpha.actions}")
    alpha_prime = forward_execution(alpha, dummy)
    print(f"Forward^e image ({len(alpha_prime)} steps): {alpha_prime.actions}")
    print("  - the g-step expanded into (hidden latch, release toward Adv)")
    assert collapse_execution(alpha_prime, dummy) == alpha
    print("  - collapse inverts the expansion exactly")

    # Forward^s and the exact f-dist equality.
    sigma = ActionSequenceScheduler([("g", "toss"), "head", "acc"], local_only=True)
    sigma_prime = ForwardScheduler(sigma, phi, dummy)
    print(f"\nscheduler bounds: q1 = {sigma.step_bound()}, "
          f"q2 = {sigma_prime.step_bound()} (= 2*q1, as Lemma D.1 constructs)")

    insight = print_insight()
    dist_phi = execution_measure(phi, sigma).map(lambda e: insight(env, phi, e))
    dist_psi = execution_measure(psi, sigma_prime).map(lambda e: insight(env, psi, e))
    print("\nenvironment perception in Phi:", dict(dist_phi.items()))
    print("environment perception in Psi:", dict(dist_psi.items()))
    distance = total_variation(dist_phi, dist_psi)
    print(f"total-variation distance = {distance!r}  (exactly zero: Lemma 4.29)")
    assert distance == 0


if __name__ == "__main__":
    main()
