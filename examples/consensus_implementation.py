"""Randomized consensus approximately implements ideal consensus.

A distributed-computing instance of the approximate implementation
relation (Definition 4.12) where the error comes from *protocol
randomness* rather than cryptography: a ``k``-round shared-coin binary
consensus suffers residual disagreement with probability ``2^{-k}``; the
ideal functionality always agrees.  The script:

1. runs the protocol on agreeing and conflicting proposals and shows the
   exact safety-violation probability,
2. sweeps the number of coin rounds and reports the error profile,
3. verifies the profile is negligible (``<=_{neg,pt}``) and demonstrates
   transitivity of the implementation relation across protocol versions.

Run:  python examples/consensus_implementation.py
"""

from fractions import Fraction

from repro.analysis.report import render_profile
from repro.core.composition import compose
from repro.experiments.common import kind_priority_schema, run_experiment
from repro.secure.implementation import (
    family_implementation_profile,
    implementation_distance,
    neg_pt_implements,
)
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.consensus import (
    consensus_environment,
    ideal_consensus,
    ideal_consensus_family,
    real_consensus,
    real_consensus_family,
)

SCHEMA = kind_priority_schema(["propose", "decide"], plain=["acc"])
INSIGHT = accept_insight()
Q = 8


def violation_probability(system, v1: int, v2: int):
    env = consensus_environment(v1, v2)
    scheduler = next(iter(SCHEMA(compose(env, system), Q)))
    return f_dist(INSIGHT, env, system, scheduler)(1)


def main() -> None:
    print("1. Safety-violation probability of the real protocol:")
    for k in (1, 2, 3):
        protocol = real_consensus(("c", k), k)
        agree = violation_probability(protocol, 1, 1)
        conflict = violation_probability(protocol, 0, 1)
        print(f"  k={k} rounds: agreeing proposals -> {agree}, "
              f"conflicting proposals -> {conflict} (= 2^-{k})")
    ideal = ideal_consensus()
    print(f"  ideal functionality: conflicting proposals -> "
          f"{violation_probability(ideal, 0, 1)}")

    print("\n2. Implementation error profile over the round count:")
    envs = [consensus_environment(v1, v2) for v1 in (0, 1) for v2 in (0, 1)]
    profile = family_implementation_profile(
        real_consensus_family(),
        ideal_consensus_family(),
        schema=SCHEMA,
        insight=INSIGHT,
        environment_family=lambda k: envs,
        q1=lambda k: Q,
        q2=lambda k: Q,
        ks=range(1, 7),
    )
    print(render_profile(
        "real-consensus(k) <= ideal-consensus",
        profile,
        note=f"negligible: {neg_pt_implements(profile)}",
    ))

    print("3. Transitivity across protocol versions (Theorem 4.16):")
    v1 = real_consensus("v1", 3)   # 3 rounds
    v2 = real_consensus("v2", 2)   # 2 rounds
    v3 = ideal_consensus("v3")
    kw = dict(schema=SCHEMA, insight=INSIGHT, environments=envs, q1=Q, q2=Q)
    d12 = implementation_distance(v1, v2, **kw)
    d23 = implementation_distance(v2, v3, **kw)
    d13 = implementation_distance(v1, v3, **kw)
    print(f"  d(v1, v2) = {d12}, d(v2, v3) = {d23}, d(v1, v3) = {d13}")
    print(f"  d13 <= d12 + d23 ?  {d13 <= d12 + d23}")

    print("\n4. The full transitivity experiment (E4):")
    print(run_experiment("E4"))


if __name__ == "__main__":
    main()
