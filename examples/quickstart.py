"""Quickstart: build automata, compose them, schedule them, measure them.

Walks the foundational layer of the framework end to end:

1. define a probabilistic automaton (a biased coin) and an observer
   environment,
2. compose them (Definition 2.18) and resolve nondeterminism with an
   oblivious scheduler (Definition 3.1),
3. compute the exact execution measure and the observer's perception
   (``f-dist``, Definition 3.5),
4. decide an approximate implementation claim (Definition 4.12).

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    ActionSequenceScheduler,
    accept_insight,
    coin,
    coin_observer,
    compose,
    execution_measure,
    f_dist,
    implements,
    perception_distance,
    trace_insight,
    validate_psioa,
)
from repro.semantics.schema import SchedulerSchema


def main() -> None:
    # 1. Two systems and a distinguisher environment. --------------------------
    fair = coin("fair", Fraction(1, 2))
    biased = coin("biased", Fraction(3, 4))
    env = coin_observer()  # raises 'acc' after seeing heads
    for automaton in (fair, biased, env):
        validate_psioa(automaton)  # Definition 2.1 constraints
    print("automata validated: fair, biased, observer")

    # 2. Compose and schedule. --------------------------------------------------
    world = compose(env, biased)
    sigma = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
    measure = execution_measure(world, sigma)
    print(f"\nexact execution measure of E || biased under sigma "
          f"({len(measure)} completed executions):")
    for execution, weight in sorted(measure.items(), key=lambda kv: repr(kv[0])):
        print(f"  P = {weight}:  trace = {execution.trace(world.signature)}")

    # 3. The observer's perception. ---------------------------------------------
    accept = f_dist(accept_insight(), env, biased, sigma)
    print(f"\nP[observer accepts | biased] = {accept(1)}")
    traces = f_dist(trace_insight(), env, biased, sigma)
    print(f"trace distribution: {dict(traces.items())}")

    # 4. Distinguishing advantage and the implementation relation. -----------------
    advantage = perception_distance(
        accept_insight(), env, fair, sigma, biased, sigma
    )
    print(f"\ndistinguishing advantage fair-vs-biased = {advantage} (= the bias)")

    def schema_members(automaton, bound):
        import itertools

        for length in range(bound + 1):
            for seq in itertools.product(["toss", "head", "tail", "acc"], repeat=length):
                yield ActionSequenceScheduler(seq, local_only=True)

    schema = SchedulerSchema("oblivious", schema_members)
    result = implements(
        biased,
        fair,
        schema=schema,
        insight=accept_insight(),
        environments=[env],
        q1=3,
        q2=3,
        epsilon=Fraction(1, 4),
    )
    print(
        f"biased <=_(eps=1/4) fair ?  {result.holds}  "
        f"(measured distance {result.distance})"
    )
    too_tight = implements(
        biased,
        fair,
        schema=schema,
        insight=accept_insight(),
        environments=[env],
        q1=3,
        q2=3,
        epsilon=Fraction(1, 8),
    )
    print(f"biased <=_(eps=1/8) fair ?  {too_tight.holds}  "
          f"(counterexample: {too_tight.counterexample})")


if __name__ == "__main__":
    main()
