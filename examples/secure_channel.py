"""Secure emulation of a one-time-pad channel (the paper's Section 4.9
machinery on a concrete cryptographic protocol).

The real protocol leaks the ciphertext of a one-bit message to the
adversary; the ideal functionality leaks only that a message was sent.
The script:

1. shows the adversary's view in the real world (perfect and leaky pads),
2. builds the simulator ``Sim = hide(SimCore || Adv, leaks)``
   (Definition 4.26's existential witness),
3. measures the emulation error profile ``eps(k)`` of the leaky family —
   exactly ``2^{-(k+1)}``, a negligible function — and the constant error
   of the *broken* channel (the negative control),
4. demonstrates composability (Theorem 4.30): the channel composed with a
   commitment scheme still emulates the composed ideal under a two-pronged
   adversary and the composed simulator.

Run:  python examples/secure_channel.py
"""

from repro.analysis.report import render_profile
from repro.experiments.common import run_experiment
from repro.probability.asymptotics import fit_negligible_envelope
from repro.secure.emulation import emulation_distance_profile, hidden_world
from repro.secure.implementation import neg_pt_implements
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.channels import (
    broken_channel,
    channel_emulation_instance,
    channel_environment,
    channel_schema,
    channel_simulator,
    guessing_adversary,
    ideal_channel,
    real_channel,
)
from repro.bounded.families import PSIOAFamily
from repro.secure.emulation import EmulationInstance
from repro.core.composition import compose


def adversary_view(system, label: str) -> None:
    env = channel_environment(1)
    world = hidden_world(system, guessing_adversary())
    scheduler = next(iter(channel_schema()(compose(env, world), 8)))
    dist = f_dist(accept_insight(), env, world, scheduler)
    print(f"  P[adversary guesses the message | {label}] = {dist(1)}")


def main() -> None:
    print("1. The adversary's view of the real protocol:")
    adversary_view(real_channel("perfect"), "perfect pad")
    adversary_view(real_channel("leaky", 2), "leaky pad, k=2")
    adversary_view(broken_channel(), "broken channel")

    print("\n2. The simulator runs the real adversary against a fake leak:")
    sim = channel_simulator(guessing_adversary())
    adversary_view_ideal(sim)

    print("\n3. Emulation error profile of the leaky family:")
    instance = channel_emulation_instance(leaky=True)
    envs = [channel_environment(0), channel_environment(1)]
    profile = emulation_distance_profile(
        instance,
        lambda k: guessing_adversary(),
        schema=channel_schema(),
        insight=accept_insight(),
        environment_family=lambda k: envs,
        q1=lambda k: 8,
        q2=lambda k: 8,
        ks=range(1, 6),
    )
    fit = fit_negligible_envelope(profile)
    print(render_profile(
        "real(k) <=_SE ideal — emulation error",
        profile,
        note=f"negligible: {neg_pt_implements(profile)} (geometric ratio {fit.ratio:.3f})",
    ))

    broken_instance = EmulationInstance(
        "broken",
        PSIOAFamily("broken/real", lambda k: broken_channel(("broken", k))),
        PSIOAFamily("broken/ideal", lambda k: ideal_channel(("ideal", k))),
        simulator_for=lambda k, adv: channel_simulator(adv, name=("Sim", k)),
    )
    broken_profile = emulation_distance_profile(
        broken_instance,
        lambda k: guessing_adversary(),
        schema=channel_schema(),
        insight=accept_insight(),
        environment_family=lambda k: envs,
        q1=lambda k: 8,
        q2=lambda k: 8,
        ks=range(1, 4),
    )
    print(render_profile(
        "negative control: broken channel",
        broken_profile,
        note=f"negligible: {neg_pt_implements(broken_profile)} — emulation FAILS, as it must",
    ))

    print("\n4. Composability (Theorem 4.30): channel || commitment")
    report = run_experiment("E10")
    print(report)


def adversary_view_ideal(sim) -> None:
    env = channel_environment(1)
    world = hidden_world(ideal_channel(), sim)
    scheduler = next(iter(channel_schema()(compose(env, world), 8)))
    dist = f_dist(accept_insight(), env, world, scheduler)
    print(f"  P[adversary guesses the message | ideal + Sim] = {dist(1)}")


if __name__ == "__main__":
    main()
