"""Experiment bench E14: which ideal ledger functionality is realizable
(extension; the UC-literature ordering-interface lesson as a computation).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e14_ledger_realizability(run_report):
    run_report("E14")
