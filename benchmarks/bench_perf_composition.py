"""Performance: PSIOA composition and joint-state exploration throughput.

Measures the cost of building composed automata lazily and of exploring
their reachable joint state space — the substrate cost every higher-level
check (implementation, emulation) pays.
"""

import numpy as np
import pytest

from repro.core.composition import check_partial_compatibility, compose
from repro.core.psioa import reachable_states
from repro.systems.factory import random_psioa


def _pair(n_states):
    rng = np.random.default_rng(n_states)
    left = random_psioa(("L", n_states), rng, n_states=n_states, n_actions=4)
    right = random_psioa(("R", n_states), rng, n_states=n_states, n_actions=4)
    return left, right


@pytest.mark.parametrize("n_states", [4, 8, 16])
def test_compose_and_explore(benchmark, n_states):
    left, right = _pair(n_states)

    def work():
        product = compose(left, right)
        return len(reachable_states(product, max_states=200_000))

    states = benchmark(work)
    assert states >= 1


@pytest.mark.parametrize("n_states", [4, 8])
def test_partial_compatibility_check(benchmark, n_states):
    left, right = _pair(n_states)
    result = benchmark(check_partial_compatibility, [left, right])
    assert result in (True, False)


def test_three_way_composition(benchmark):
    rng = np.random.default_rng(99)
    automata = [
        random_psioa(("T", i), rng, n_states=4, n_actions=3) for i in range(3)
    ]

    def work():
        product = compose(*automata)
        return len(reachable_states(product, max_states=200_000))

    assert benchmark(work) >= 1
