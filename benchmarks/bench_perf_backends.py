"""Performance: sweep dispatch overhead per execution backend.

A sweep's useful work is `fn`; everything else — partitioning, forking or
framing, pickling, snapshot merging — is transport overhead.  This bench
runs the same real unfolding sweep through each backend and records
items/s trajectory points (``parallel.dispatch.{serial,fork,socket}``,
not gated — absolute dispatch cost is host- and loopback-dependent), so
a transport that gets disproportionately slower shows up in the
``BENCH_perf.json`` history.  Result equality with the in-caller
comprehension is asserted on every backend while we're here.
"""

import os
import subprocess
import sys
import time
from fractions import Fraction

import pytest

from repro.perf import cache as perf_cache
from repro.perf.parallel import parallel_map
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import PriorityScheduler

from bench_perf_measure import _branching_chain

_ITEMS = 24


def _sweep_item(depth):
    measure = execution_measure(
        _branching_chain(depth), PriorityScheduler([lambda a: True], depth * 2)
    )
    return measure.total_mass


def _time_sweep(backend_spec):
    items = [3] * _ITEMS
    start = time.perf_counter()
    results = parallel_map(_sweep_item, items, backend=backend_spec)
    elapsed = time.perf_counter() - start
    assert results == [Fraction(1)] * _ITEMS
    return _ITEMS / elapsed


def test_dispatch_serial_vs_fork(perf_point):
    perf_cache.configure(enabled=False)  # measure dispatch, not memo lookups
    perf_point("parallel.dispatch.serial", ops_s=_time_sweep("serial"), items=_ITEMS)
    perf_point("parallel.dispatch.fork", ops_s=_time_sweep("fork:4"), items=_ITEMS)


def test_dispatch_socket_loopback(perf_point):
    if not hasattr(os, "fork"):
        pytest.skip("socket workers need a POSIX host")
    perf_cache.configure(enabled=False)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    workers = []
    try:
        addresses = []
        for _ in range(2):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
            )
            port = int(proc.stdout.readline().strip().rsplit(":", 1)[1])
            workers.append(proc)
            addresses.append(f"127.0.0.1:{port}")
        perf_point(
            "parallel.dispatch.socket",
            ops_s=_time_sweep("socket:" + ",".join(addresses)),
            items=_ITEMS,
            workers=len(addresses),
        )
    finally:
        for proc in workers:
            proc.kill()
            proc.wait()
