"""Performance: the compositional consensus protocol.

Scaling of exact verification with the number of coin rounds — each extra
round doubles the probabilistic branching of the composed execution tree.
"""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import reachable_states
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.consensus import consensus_environment
from repro.systems.consensus_compositional import consensus_pair, consensus_pair_schema

SCHEMA = consensus_pair_schema()


@pytest.mark.parametrize("k", [1, 2, 3])
def test_consensus_violation_probability(benchmark, k):
    env = consensus_environment(0, 1)
    system = consensus_pair(k)
    scheduler = next(iter(SCHEMA(compose(env, system), 40)))

    dist = benchmark(f_dist, accept_insight(), env, system, scheduler)
    assert dist(1) == Fraction(1, 2 ** k)


@pytest.mark.parametrize("k", [1, 2])
def test_consensus_state_space(benchmark, k):
    def work():
        return len(reachable_states(consensus_pair(k), max_states=500_000))

    assert benchmark(work) > 10
