"""Performance: PCA intrinsic transitions and dynamic-system exploration.

Tracks the cost of the dynamicity machinery: configuration hashing,
preserving/intrinsic transitions with creation and destruction, and full
reachable exploration of the dynamic ledger.
"""

from fractions import Fraction

import pytest

from repro.config.transitions import intrinsic_transition, preserving_transition
from repro.config.configuration import Configuration
from repro.core.psioa import reachable_states
from repro.systems.coin import coin
from repro.systems.ledger import ledger_client, ledger_manager_pca, spawning_pca


@pytest.mark.parametrize("clients", [1, 2, 3])
def test_ledger_exploration(benchmark, clients):
    def work():
        pca = ledger_manager_pca(clients, name=("ledger", clients))
        return len(reachable_states(pca, max_states=500_000))

    states = benchmark(work)
    assert states >= clients + 1


def test_intrinsic_transition_with_creation(benchmark):
    pca = spawning_pca(lambda: coin(("spawned",), Fraction(1, 2)))
    config = pca.config(pca.start)

    eta = benchmark(intrinsic_transition, config, "spawn", [coin(("spawned",), Fraction(1, 2))])
    assert len(eta) == 1


def test_preserving_transition_wide_configuration(benchmark):
    members = [
        coin(("w", i), Fraction(1, 2), toss=("t", i), head=("h", i), tail=("l", i))
        for i in range(6)
    ]
    config = Configuration.initial(members)

    eta = benchmark(preserving_transition, config, ("t", 0))
    assert len(eta) == 2


def test_configuration_hashing(benchmark):
    members = [ledger_client(i) for i in range(8)]
    config = Configuration.initial(members)

    def work():
        return {config.replace_states({("client", i): "pending"}) for i in range(8)}

    assert len(benchmark(work)) == 8
