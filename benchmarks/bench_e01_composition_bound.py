"""Experiment bench E1: Lemma 4.3/B.1 — PSIOA composition bound c_comp*(b1+b2).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e1_composition_bound(run_report):
    run_report("E1")
