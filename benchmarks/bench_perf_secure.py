"""Performance: the security layer — dummy-adversary forwarding overhead
and implementation-distance search cost.
"""

from fractions import Fraction

import pytest

from repro.secure.dummy import ForwardScheduler, build_dummy_worlds
from repro.secure.implementation import implementation_distance
from repro.secure.structured import structure
from repro.semantics.insight import accept_insight, print_insight
from repro.semantics.measure import execution_measure
from repro.semantics.schema import SchedulerSchema
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin, coin_observer


def _dummy_setup():
    from repro.core.psioa import TablePSIOA
    from repro.core.signature import Signature
    from repro.probability.measures import dirac

    sc = structure(coin("sys", Fraction(1, 2)), {"head", "tail"})
    env_sigs = {
        "watch": Signature(inputs={"head", "tail"}),
        "happy": Signature(inputs={"head", "tail"}, outputs={"acc"}),
        "done": Signature(inputs={"head", "tail"}),
    }
    env_trans = {
        ("watch", "head"): dirac("happy"),
        ("watch", "tail"): dirac("watch"),
        ("happy", "head"): dirac("happy"),
        ("happy", "tail"): dirac("happy"),
        ("happy", "acc"): dirac("done"),
        ("done", "head"): dirac("done"),
        ("done", "tail"): dirac("done"),
    }
    env = TablePSIOA("E", "watch", env_sigs, env_trans)
    adv_sig = Signature(inputs={("g", "toss")})
    adv = TablePSIOA("Adv", "s", {"s": adv_sig}, {("s", ("g", "toss")): dirac("s")})
    return env, sc, adv


def test_dummy_world_unfold_phi(benchmark):
    """Baseline: the renamed world without the dummy."""
    env, sc, adv = _dummy_setup()
    phi, psi, dummy, g = build_dummy_worlds(env, sc, adv)
    sigma = ActionSequenceScheduler([("g", "toss"), "head", "acc"], local_only=True)

    measure = benchmark(execution_measure, phi, sigma)
    assert measure.total_mass == 1


def test_dummy_world_unfold_psi(benchmark):
    """The dummy world under Forward^s: each forwarded action doubles."""
    env, sc, adv = _dummy_setup()
    phi, psi, dummy, g = build_dummy_worlds(env, sc, adv)
    sigma = ActionSequenceScheduler([("g", "toss"), "head", "acc"], local_only=True)
    sigma_prime = ForwardScheduler(sigma, phi, dummy)

    measure = benchmark(execution_measure, psi, sigma_prime)
    assert measure.total_mass == 1


@pytest.mark.parametrize("bound", [2, 3])
def test_implementation_distance_search(benchmark, bound):
    """Exhaustive oblivious search: |acts|^bound schedulers per environment."""
    import itertools

    def members(automaton, b):
        for length in range(b + 1):
            for seq in itertools.product(["toss", "head", "tail", "acc"], repeat=length):
                yield ActionSequenceScheduler(seq, local_only=True)

    schema = SchedulerSchema("obl", members)
    fair = coin("fair", Fraction(1, 2))
    biased = coin("biased", Fraction(3, 4))

    distance = benchmark(
        implementation_distance,
        biased,
        fair,
        schema=schema,
        insight=accept_insight(),
        environments=[coin_observer()],
        q1=bound,
        q2=bound,
    )
    assert distance <= Fraction(1, 4)
