"""Merge ``BENCH_obs.json`` trajectory artifacts into one table.

Each benchmark session writes a ``BENCH_obs.json`` (see
``benchmarks/conftest.py``) mapping test ids to the hot-path counters the
test exercised.  This tool merges several such files — e.g. one per commit
or one per machine — into a single aligned table so counter trajectories
("did this refactor reduce ``scheduler.steps``?") are visible at a glance:

::

    python benchmarks/report_trajectory.py before/BENCH_obs.json after/BENCH_obs.json
    python benchmarks/report_trajectory.py *.json --counter measure.unfold.transitions
    python benchmarks/report_trajectory.py *.json --counter elapsed_s --json merged.json

Counters are exact, deterministic work measures (unlike wall time), which
makes them the right axis for tracking algorithmic improvements across
runs; this is the seed of the repo's ``BENCH_*.json`` tracking.  The
committed ``benchmarks/BENCH_obs_baseline.json`` (a full 15-experiment
bench run) anchors the trajectory so a single fresh ``BENCH_obs.json``
already has something to diff against.

The tool also ingests **runner reports** (``repro.obs.run-report/*``, from
``--metrics-out``): given two of them it delegates to the regression
attributor (``python -m repro.obs compare``) and prints the ranked
"what changed" table instead of the counter trajectory::

    python benchmarks/report_trajectory.py REPORT_old.json REPORT_new.json --threshold 10

Schema-invalid inputs are an error (exit 1), never silently skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

TRAJECTORY_SCHEMA = "repro.obs.bench-trajectory/1"
RUN_REPORT_PREFIX = "repro.obs.run-report/"


def _bootstrap_repro() -> None:
    """Make ``repro`` importable when run as a bare script from the checkout."""
    try:
        import repro  # noqa: F401
    except ImportError:
        src = os.path.normpath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
        )
        sys.path.insert(0, src)


def _peek_schema(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload.get("schema") if isinstance(payload, dict) else None


def load_trajectory(path: str) -> Dict[str, Any]:
    """Load and sanity-check one ``BENCH_obs.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: not a {TRAJECTORY_SCHEMA} artifact "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    if not isinstance(payload.get("runs"), dict):
        raise ValueError(f"{path}: 'runs' must be an object")
    return payload


def _cell(run: Optional[Dict[str, Any]], counter: str) -> Optional[Any]:
    if run is None:
        return None
    if counter == "elapsed_s":
        return run.get("elapsed_s")
    return run.get("counters", {}).get(counter, 0)


def merge(paths: Sequence[str], counter: str) -> Dict[str, Any]:
    """The merged trajectory: per test id, one value per input file."""
    columns = []
    rows: Dict[str, List[Optional[Any]]] = {}
    for index, path in enumerate(paths):
        payload = load_trajectory(path)
        columns.append(path)
        for test_id, run in payload["runs"].items():
            rows.setdefault(test_id, [None] * len(paths))[index] = _cell(run, counter)
    return {
        "schema": TRAJECTORY_SCHEMA + "+merged",
        "counter": counter,
        "columns": columns,
        "rows": {test_id: values for test_id, values in sorted(rows.items())},
    }


def format_table(merged: Dict[str, Any]) -> str:
    """The merged trajectory as an aligned plain-text table."""

    def render(value: Optional[Any]) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    headers = ["test"] + [f"run{i}" for i in range(len(merged["columns"]))]
    body = [
        [test_id] + [render(v) for v in values]
        for test_id, values in merged["rows"].items()
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"counter: {merged['counter']}"]
    lines += [f"run{i}: {path}" for i, path in enumerate(merged["columns"])]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge BENCH_obs.json trajectory artifacts into one table."
    )
    parser.add_argument("files", nargs="+", help="BENCH_obs.json files, oldest first")
    parser.add_argument(
        "--counter",
        default="scheduler.steps",
        help="counter to tabulate (or the pseudo-counter 'elapsed_s')",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the merged trajectory as JSON to this path",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="regression threshold (percent) when comparing two run reports",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when a run-report comparison finds regressions",
    )
    args = parser.parse_args(argv)

    try:
        schemas = [_peek_schema(path) for path in args.files]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if any(isinstance(s, str) and s.startswith(RUN_REPORT_PREFIX) for s in schemas):
        # Runner reports are richer than bench trajectories: hand them to
        # the regression attributor instead of the counter table.
        if len(args.files) != 2:
            print(
                "error: run-report comparison takes exactly two report files",
                file=sys.stderr,
            )
            return 1
        _bootstrap_repro()
        from repro.obs.analyze import main_compare

        compare_argv = list(args.files) + ["--threshold", str(args.threshold)]
        if args.fail_on_regression:
            compare_argv.append("--fail-on-regression")
        return main_compare(compare_argv)

    try:
        merged = merge(args.files, args.counter)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_table(merged))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
