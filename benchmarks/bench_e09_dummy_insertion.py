"""Experiment bench E9: Lemma 4.29/D.1 — dummy adversary insertion (error exactly 0).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e9_dummy_insertion(run_report):
    run_report("E9")
