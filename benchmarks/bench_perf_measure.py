"""Performance: exact execution-measure computation (epsilon_sigma).

The unfolding engine is the inner loop of every f-dist and every
implementation check; this bench tracks its scaling with scheduler depth
and with probabilistic branching.
"""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler, PriorityScheduler
from repro.systems.channels import (
    channel_environment,
    guessing_adversary,
    real_channel,
)
from repro.secure.emulation import hidden_world
from repro.systems.coin import coin, coin_observer


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_unfold_branching_chain(benchmark, depth):
    """A chain of coins: the execution tree doubles per toss."""
    from repro.core.psioa import TablePSIOA
    from repro.core.signature import Signature
    from repro.probability.measures import DiscreteMeasure, dirac

    signatures = {}
    transitions = {}
    for i in range(depth):
        signatures[i] = Signature(outputs={("flip", i)})
        transitions[(i, ("flip", i))] = DiscreteMeasure(
            {(i + 1): Fraction(1, 2), (i, "dead"): Fraction(1, 2)}
        )
        signatures[(i, "dead")] = Signature(outputs={("stuck", i)})
        transitions[((i, "dead"), ("stuck", i))] = dirac((i, "gone"))
        signatures[(i, "gone")] = Signature()
    signatures[depth] = Signature()
    chain = TablePSIOA("chain", 0, signatures, transitions)
    sched = PriorityScheduler([lambda a: True], depth * 2)

    measure = benchmark(execution_measure, chain, sched)
    assert measure.total_mass == 1


@pytest.mark.parametrize("script_len", [3, 6, 12])
def test_fdist_coin_world(benchmark, script_len):
    env = coin_observer()
    biased = coin("biased", Fraction(2, 3))
    script = (["toss", "head", "acc"] * ((script_len + 2) // 3))[:script_len]
    sched = ActionSequenceScheduler(script, local_only=True)

    dist = benchmark(f_dist, accept_insight(), env, biased, sched)
    assert dist.total_mass == 1


def test_fdist_channel_world(benchmark):
    """The full secure-channel world: env || hide(real || Adv)."""
    env = channel_environment(1)
    system = hidden_world(real_channel("real", 3), guessing_adversary())
    sched = PriorityScheduler(
        [lambda a: isinstance(a, tuple), lambda a: a == "acc"], 10
    )

    dist = benchmark(f_dist, accept_insight(), env, system, sched)
    assert dist.total_mass == 1
