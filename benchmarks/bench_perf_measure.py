"""Performance: exact execution-measure computation (epsilon_sigma).

The unfolding engine is the inner loop of every f-dist and every
implementation check; this bench tracks its scaling with scheduler depth
and with probabilistic branching — plus the ``repro.perf`` cache's effect
on repeated unfoldings (recorded into ``BENCH_perf.json`` and gated
against the committed baseline, see ``conftest.py``).
"""

import time
from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.obs import metrics
from repro.perf import cache as perf_cache
from repro.probability.measures import DiscreteMeasure, dirac
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler, PriorityScheduler
from repro.systems.channels import (
    channel_environment,
    guessing_adversary,
    real_channel,
)
from repro.secure.emulation import hidden_world
from repro.systems.coin import coin, coin_observer


def _branching_chain(depth):
    """The doubling coin chain used by the throughput workloads."""
    signatures = {}
    transitions = {}
    for i in range(depth):
        signatures[i] = Signature(outputs={("flip", i)})
        transitions[(i, ("flip", i))] = DiscreteMeasure(
            {(i + 1): Fraction(1, 2), (i, "dead"): Fraction(1, 2)}
        )
        signatures[(i, "dead")] = Signature(outputs={("stuck", i)})
        transitions[((i, "dead"), ("stuck", i))] = dirac((i, "gone"))
        signatures[(i, "gone")] = Signature()
    signatures[depth] = Signature()
    return TablePSIOA("chain", 0, signatures, transitions)


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_unfold_branching_chain(benchmark, depth):
    """A chain of coins: the execution tree doubles per toss."""
    chain = _branching_chain(depth)
    sched = PriorityScheduler([lambda a: True], depth * 2)

    measure = benchmark(execution_measure, chain, sched)
    assert measure.total_mass == 1


def test_unfold_throughput_point(perf_point):
    """The gated engine-throughput figure: raw unfoldings/s, cache off.

    Cache disabled so the point measures the unfolding engine itself —
    cached repeats would only measure memo-lookup speed."""
    perf_cache.configure(enabled=False)
    chain = _branching_chain(6)
    sched = PriorityScheduler([lambda a: True], 12)
    execution_measure(chain, sched)  # warm import paths / allocators
    rounds = 60
    start = time.perf_counter()
    for _ in range(rounds):
        measure = execution_measure(chain, sched)
    elapsed = time.perf_counter() - start
    assert measure.total_mass == 1
    perf_point(
        "measure.unfold.throughput",
        ops_s=rounds / elapsed,
        rounds=rounds,
        depth=6,
    )


def test_repeated_unfold_cache_speedup(perf_point):
    """Repeated unfoldings of the same (automaton, scheduler) pair must be
    >= 2x faster with the cache on — the tentpole's headline claim.

    Records the first cached-vs-uncached trajectory point, with the cache
    hit/miss counters attached."""
    chain = _branching_chain(7)
    sched = PriorityScheduler([lambda a: True], 14)
    rounds = 25

    perf_cache.configure(enabled=False)
    perf_cache.clear()
    start = time.perf_counter()
    for _ in range(rounds):
        uncached = execution_measure(chain, sched)
    uncached_s = time.perf_counter() - start

    perf_cache.configure(enabled=True)
    perf_cache.clear()
    start = time.perf_counter()
    for _ in range(rounds):
        cached = execution_measure(chain, sched)
    cached_s = time.perf_counter() - start

    assert dict(cached.items()) == dict(uncached.items())
    hits = metrics.counter("perf.cache.measure.hits").value
    misses = metrics.counter("perf.cache.measure.misses").value
    assert hits == rounds - 1 and misses >= 1
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    perf_point(
        "measure.unfold.cached_vs_uncached",
        ops_s=rounds / cached_s if cached_s > 0 else float("inf"),
        speedup=speedup,
        uncached_ops_s=rounds / uncached_s,
        cache_hits=hits,
        cache_misses=misses,
    )
    assert speedup >= 2.0, f"cache speedup {speedup:.2f}x < 2x"


@pytest.mark.parametrize("script_len", [3, 6, 12])
def test_fdist_coin_world(benchmark, script_len):
    env = coin_observer()
    biased = coin("biased", Fraction(2, 3))
    script = (["toss", "head", "acc"] * ((script_len + 2) // 3))[:script_len]
    sched = ActionSequenceScheduler(script, local_only=True)

    dist = benchmark(f_dist, accept_insight(), env, biased, sched)
    assert dist.total_mass == 1


def test_fdist_channel_world(benchmark):
    """The full secure-channel world: env || hide(real || Adv)."""
    env = channel_environment(1)
    system = hidden_world(real_channel("real", 3), guessing_adversary())
    sched = PriorityScheduler(
        [lambda a: isinstance(a, tuple), lambda a: a == "acc"], 10
    )

    dist = benchmark(f_dist, accept_insight(), env, system, sched)
    assert dist.total_mass == 1
