"""Experiment bench E4: Theorem 4.16/B.4 — transitivity of approximate implementation.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e4_transitivity(run_report):
    run_report("E4")
