"""Experiment bench E10: Theorem 4.30/D.2 — composability of dynamic secure emulation.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e10_secure_emulation(run_report):
    run_report("E10")
