"""Experiment bench E3: Lemma 4.5/B.3 — hiding bound c_hide*(b+b').

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e3_hiding_bound(run_report):
    run_report("E3")
