"""Experiment bench E8: Lemma 4.25 — adversary restriction.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e8_adversary_restriction(run_report):
    run_report("E8")
