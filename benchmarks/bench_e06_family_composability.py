"""Experiment bench E6: Theorem 4.15 — neg,pt composability for families.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e6_family_composability(run_report):
    run_report("E6")
