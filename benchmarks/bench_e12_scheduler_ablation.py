"""Experiment bench E12: Scheduler-schema ablation (Section 4.4 design choice).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e12_scheduler_ablation(run_report):
    run_report("E12")
