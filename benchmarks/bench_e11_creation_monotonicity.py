"""Experiment bench E11: Monotonicity w.r.t. creation (Section 4.4 / [7]).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e11_creation_monotonicity(run_report):
    run_report("E11")
