"""Experiment bench E7: Lemma 4.23/C.1 — structured PCA closure under composition.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e7_structured_closure(run_report):
    run_report("E7")
