"""Experiment bench E15: robustness — emulation error under fault injection.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the robustness-shape check (tolerated faults stay within the
theorem bound, assumption-breaking faults exceed it); the benchmark records
the wall-clock cost of the fault sweep.
"""


def test_e15_fault_tolerance(run_report):
    run_report("E15")
