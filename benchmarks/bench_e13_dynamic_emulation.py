"""Experiment bench E13: dynamic secure emulation of run-time-created
sessions (extension; the paper's §4.4 future-work direction).

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e13_dynamic_emulation(run_report):
    run_report("E13")
