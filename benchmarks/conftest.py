"""Shared benchmark configuration.

Every experiment bench runs its experiment exactly once under
``benchmark.pedantic`` (experiments are deterministic — repeated rounds
would only re-measure the same computation), prints the experiment's table
(run with ``-s`` to see it), and asserts the theorem-shape check.
Performance benches (``bench_perf_*``) use the default calibration loop.
"""

import pytest


@pytest.fixture
def run_report(benchmark, capsys):
    """Run an experiment once under the benchmark, print its table, assert it passed."""

    def runner(experiment_id: str):
        from repro.experiments.common import run_experiment

        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(report)
        assert report.passed, f"{experiment_id} failed:\n{report.table}"
        return report

    return runner
