"""Shared benchmark configuration.

Every experiment bench runs its experiment exactly once under
``benchmark.pedantic`` (experiments are deterministic — repeated rounds
would only re-measure the same computation), prints the experiment's table
(run with ``-s`` to see it), and asserts the theorem-shape check.
Performance benches (``bench_perf_*``) use the default calibration loop.

Observability hook: every bench test starts from a clean
:mod:`repro.obs.metrics` registry, and the counters each test accumulated
are written to a ``BENCH_obs.json`` trajectory artifact at session end
(path overridable via ``REPRO_BENCH_OBS``; merge artifacts from several
runs with ``benchmarks/report_trajectory.py``).  Counter values are raw
totals over however many rounds pytest-benchmark ran, so within-run
comparisons are exact for the pedantic experiment benches and indicative
for the calibrated perf benches.

Perf regression gate: tests record named throughput points through the
``perf_point`` fixture; at session end they are written to
``BENCH_perf.json`` (``repro.perf.bench/1``, path overridable via
``REPRO_BENCH_PERF``) *normalized by a host-speed calibration loop*, and
checked against the rules in ``GATED_POINTS``.  Two rule kinds: a *drop*
rule compares a point's field against the committed
``benchmarks/BENCH_perf_baseline.json`` and fails on a fractional drop
beyond the tolerance (``REPRO_PERF_GATE_TOLERANCE`` overrides it, default
25% for ``measure.unfold.throughput``); a *floor* rule fails when the field
falls below an absolute minimum regardless of baseline — used for
host-independent ratios like the cached-vs-uncached unfold speedup
(conservative floor 2x; the baseline records ~9.5x).  Set
``REPRO_PERF_GATE=off`` to record without gating (e.g. when refreshing the
baseline).
"""

import json
import os
import time

import pytest

from repro.obs import metrics
from repro.perf import cache as perf_cache

TRAJECTORY_SCHEMA = "repro.obs.bench-trajectory/1"
PERF_SCHEMA = "repro.perf.bench/1"

#: The points the gate enforces: name -> ("drop", field, tolerance) fails
#: when the field falls more than the fractional tolerance below the
#: committed baseline; ("floor", field, minimum) fails when the field is
#: below an absolute minimum, baseline or not.
GATED_POINTS = {
    "measure.unfold.throughput": ("drop", "normalized", 0.25),
    "measure.unfold.cached_vs_uncached": ("floor", "speedup", 2.0),
}

_RUNS = {}
_PERF_POINTS = {}
_CALIBRATION = None


def _calibration_ops_s():
    """Host-speed yardstick: pure-Python ops/s of a fixed arithmetic loop.

    Dividing measured throughput by this number gives a machine-portable
    figure, so the committed baseline gates relative engine speed rather
    than absolute host speed."""
    global _CALIBRATION
    if _CALIBRATION is None:
        ops = 300_000
        acc = 0
        start = time.perf_counter()
        for i in range(ops):
            acc += i * 3 + (i & 7)
        elapsed = time.perf_counter() - start
        _CALIBRATION = ops / elapsed if elapsed > 0 else float("inf")
    return _CALIBRATION


@pytest.fixture(autouse=True)
def _obs_capture(request):
    """Reset metrics and the perf cache per test; collect counters after."""
    metrics.reset()
    perf_cache.clear()
    perf_cache.configure(enabled=None)
    start = time.perf_counter()
    yield
    perf_cache.clear()
    perf_cache.configure(enabled=None)
    snapshot = metrics.snapshot()
    if snapshot["counters"] or snapshot["histograms"]:
        _RUNS[request.node.nodeid] = {
            "elapsed_s": time.perf_counter() - start,
            "counters": snapshot["counters"],
        }


@pytest.fixture
def perf_point():
    """Record a named throughput point for ``BENCH_perf.json``.

    ``perf_point(name, ops_s, **extra)`` — ``ops_s`` is raw operations per
    second; the session hook adds the calibration-normalized figure."""

    def record(name, ops_s, **extra):
        _PERF_POINTS[name] = {"ops_s": float(ops_s), **extra}

    return record


def _baseline_path():
    return os.path.join(os.path.dirname(__file__), "BENCH_perf_baseline.json")


def _gate_enabled():
    return os.environ.get("REPRO_PERF_GATE", "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


def _finish_perf(session):
    calibration = _calibration_ops_s()
    for point in _PERF_POINTS.values():
        point["normalized"] = point["ops_s"] / calibration
    payload = {
        "schema": PERF_SCHEMA,
        "created_unix": time.time(),
        "calibration_ops_s": calibration,
        "points": _PERF_POINTS,
    }
    path = os.environ.get("REPRO_BENCH_PERF", "BENCH_perf.json")
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    except OSError:
        pass

    if not _gate_enabled():
        return
    try:
        with open(_baseline_path(), "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError):
        baseline = None  # no baseline committed yet: floor rules still apply
    tolerance_override = os.environ.get("REPRO_PERF_GATE_TOLERANCE")
    regressions = []
    for name, (kind, field, limit) in GATED_POINTS.items():
        new = _PERF_POINTS.get(name, {}).get(field)
        if new is None:
            continue
        if kind == "floor":
            if new < limit:
                regressions.append(
                    f"{name}: {field} {new:.4f} is below the absolute "
                    f"floor {limit:.1f}"
                )
            continue
        if baseline is None:
            continue
        base = baseline.get("points", {}).get(name, {}).get(field)
        if base is None:
            continue
        tolerance = float(tolerance_override) if tolerance_override else limit
        if new < base * (1.0 - tolerance):
            regressions.append(
                f"{name}: {field} {new:.4f} is "
                f"{(1 - new / base) * 100:.1f}% below baseline {base:.4f} "
                f"(tolerance {tolerance * 100:.0f}%)"
            )
    if regressions:
        for line in regressions:
            print(f"\nPERF REGRESSION: {line}")
        print("(refresh benchmarks/BENCH_perf_baseline.json if intentional;"
              " set REPRO_PERF_GATE=off to bypass)")
        session.exitstatus = 1


def pytest_sessionfinish(session, exitstatus):
    if _PERF_POINTS:
        _finish_perf(session)
    if not _RUNS:
        return
    path = os.environ.get("REPRO_BENCH_OBS", "BENCH_obs.json")
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "created_unix": time.time(),
        "runs": _RUNS,
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    except OSError:
        pass


@pytest.fixture
def run_report(benchmark, capsys):
    """Run an experiment once under the benchmark, print its table, assert it passed."""

    def runner(experiment_id: str):
        from repro.experiments.common import run_experiment

        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(report)
        assert report.passed, f"{experiment_id} failed:\n{report.table}"
        return report

    return runner
