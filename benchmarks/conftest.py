"""Shared benchmark configuration.

Every experiment bench runs its experiment exactly once under
``benchmark.pedantic`` (experiments are deterministic — repeated rounds
would only re-measure the same computation), prints the experiment's table
(run with ``-s`` to see it), and asserts the theorem-shape check.
Performance benches (``bench_perf_*``) use the default calibration loop.

Observability hook: every bench test starts from a clean
:mod:`repro.obs.metrics` registry, and the counters each test accumulated
are written to a ``BENCH_obs.json`` trajectory artifact at session end
(path overridable via ``REPRO_BENCH_OBS``; merge artifacts from several
runs with ``benchmarks/report_trajectory.py``).  Counter values are raw
totals over however many rounds pytest-benchmark ran, so within-run
comparisons are exact for the pedantic experiment benches and indicative
for the calibrated perf benches.
"""

import json
import os
import time

import pytest

from repro.obs import metrics

TRAJECTORY_SCHEMA = "repro.obs.bench-trajectory/1"

_RUNS = {}


@pytest.fixture(autouse=True)
def _obs_capture(request):
    """Reset the metrics registry per test; collect its counters after."""
    metrics.reset()
    start = time.perf_counter()
    yield
    snapshot = metrics.snapshot()
    if snapshot["counters"] or snapshot["histograms"]:
        _RUNS[request.node.nodeid] = {
            "elapsed_s": time.perf_counter() - start,
            "counters": snapshot["counters"],
        }


def pytest_sessionfinish(session, exitstatus):
    if not _RUNS:
        return
    path = os.environ.get("REPRO_BENCH_OBS", "BENCH_obs.json")
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "created_unix": time.time(),
        "runs": _RUNS,
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
    except OSError:
        pass


@pytest.fixture
def run_report(benchmark, capsys):
    """Run an experiment once under the benchmark, print its table, assert it passed."""

    def runner(experiment_id: str):
        from repro.experiments.common import run_experiment

        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(report)
        assert report.passed, f"{experiment_id} failed:\n{report.table}"
        return report

    return runner
