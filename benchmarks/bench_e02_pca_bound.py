"""Experiment bench E2: Lemma B.2 — PCA composition bound.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e2_pca_bound(run_report):
    run_report("E2")
