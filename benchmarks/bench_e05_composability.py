"""Experiment bench E5: Lemma 4.13 — composability of approximate implementation.

Runs the experiment once (deterministic), prints its table (use ``-s``)
and asserts the theorem-shape check; the benchmark records the wall-clock
cost of regenerating the table.
"""


def test_e5_composability(run_report):
    run_report("E5")
