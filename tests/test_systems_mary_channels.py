"""Tests for m-ary OTP channels (non-binary message alphabets)."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import validate_psioa
from repro.experiments.common import kind_priority_schema
from repro.probability.measures import total_variation
from repro.secure.adversary import is_adversary
from repro.secure.emulation import hidden_world
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.channels_mary import (
    GUESS,
    LEAK,
    SEND,
    mary_channel_environment,
    mary_channel_simulator,
    mary_guessing_adversary,
    mary_ideal_channel,
    mary_real_channel,
)

SCHEMA = kind_priority_schema(["send", "sent", "leak", "guess", "recv"], plain=["acc"])


@pytest.mark.parametrize("m", [2, 3, 4])
class TestMaryChannel:
    def test_automata_validate(self, m):
        validate_psioa(mary_real_channel(("mr", m), m))
        validate_psioa(mary_ideal_channel(("mi", m), m))
        validate_psioa(mary_guessing_adversary(("ma", m), m))

    def test_ciphertext_uniform(self, m):
        real = mary_real_channel(("mr", m), m)
        for v in range(m):
            eta = real.transition("idle", SEND(v))
            for c in range(m):
                assert eta(("cipher", v, c)) == Fraction(1, m)

    def test_adversary_and_simulator_admissible(self, m):
        adv = mary_guessing_adversary(("ma", m), m)
        assert is_adversary(adv, mary_real_channel(("mr", m), m))
        sim = mary_channel_simulator(adv, m)
        assert is_adversary(sim, mary_ideal_channel(("mi", m), m))

    def test_guess_probability_is_one_over_m(self, m):
        adv = mary_guessing_adversary(("ma", m), m)
        env = mary_channel_environment(1, m)
        system = hidden_world(mary_real_channel(("mr", m), m), adv)
        sched = next(iter(SCHEMA(compose(env, system), 10)))
        dist = f_dist(accept_insight(), env, system, sched)
        assert dist(1) == Fraction(1, m)

    def test_emulation_error_exactly_zero(self, m):
        adv = mary_guessing_adversary(("ma", m), m)
        env = mary_channel_environment(min(1, m - 1), m)
        real_world = hidden_world(mary_real_channel(("mr", m), m), adv)
        ideal_world = hidden_world(
            mary_ideal_channel(("mi", m), m), mary_channel_simulator(adv, m)
        )
        insight = accept_insight()
        sched_real = next(iter(SCHEMA(compose(env, real_world), 10)))
        sched_ideal = next(iter(SCHEMA(compose(env, ideal_world), 10)))
        d = total_variation(
            f_dist(insight, env, real_world, sched_real),
            f_dist(insight, env, ideal_world, sched_ideal),
        )
        assert d == 0


class TestDegenerate:
    def test_alphabet_too_small_rejected(self):
        with pytest.raises(ValueError):
            mary_real_channel("bad", 1)
