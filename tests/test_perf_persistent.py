"""Differential lockdown of the persistent content-addressed cache.

The disk-backed store (``REPRO_CACHE_DIR`` / ``--cache-dir``,
:mod:`repro.perf.store`) must be *invisible in results*: a run served from
a warmed store — unfoldings and whole sweep results alike — produces a
report byte-identical to a cold run, on every transport the sweeps can fan
out over (serial, forked children, a live socket pool).  The warm pass
must actually be warm (nonzero persistent and sweep-memo hit counters), and
mutating an automaton after caching must never serve stale fingerprinted
entries from either the in-memory or the disk tier.
"""

import json
import os
from fractions import Fraction

import pytest

from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.obs import metrics
from repro.perf import cache as perf_cache
from repro.perf import store as perf_store
from repro.perf.parallel import parallel_map
from repro.probability.measures import DiscreteMeasure, dirac
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler

#: Report fields that legitimately differ between a cold and a warm run:
#: timing, process identity, file paths — and the perf counters themselves,
#: whose *change* (hits instead of misses) is the feature under test.
VOLATILE_REPORT_KEYS = {"created_unix", "argv"}
VOLATILE_SUMMARY_KEYS = {
    "wall_time_s",
    "cache",
    "backend",
    "trace",
    "profile",
    "analysis",
    "resilience",
}
VOLATILE_RECORD_KEYS = {
    "elapsed_s",
    "peak_rss_bytes",
    "trace_file",
    "counters",
    "histograms",
}


def _scrub(payload):
    payload = {k: v for k, v in payload.items() if k not in VOLATILE_REPORT_KEYS}
    payload["summary"] = {
        k: v for k, v in payload["summary"].items() if k not in VOLATILE_SUMMARY_KEYS
    }
    experiments = []
    for record in payload["experiments"]:
        record = {k: v for k, v in record.items() if k not in VOLATILE_RECORD_KEYS}
        record["attempt_history"] = [
            {k: v for k, v in entry.items() if k != "elapsed_s"}
            for entry in record.get("attempt_history", [])
        ]
        experiments.append(record)
    payload["experiments"] = experiments
    return json.dumps(payload, sort_keys=True)


def _run_suite(tmp_path, label):
    from repro.experiments import runner

    out = tmp_path / f"report-{label}.json"
    code = runner.main(
        ["E12", "E15", "--cache", "stats", "--metrics-out", str(out)]
    )
    assert code == 0
    return json.loads(out.read_text())


def _assert_cold_then_warm(tmp_path, monkeypatch, flavor):
    store_dir = tmp_path / "store"
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(store_dir))

    cold = _run_suite(tmp_path, f"{flavor}-cold")
    warm = _run_suite(tmp_path, f"{flavor}-warm")
    assert _scrub(cold) == _scrub(warm)

    cold_counters = cold["summary"]["cache"]["counters"]
    warm_counters = warm["summary"]["cache"]["counters"]
    # The cold pass populated the store...
    assert cold_counters.get("perf.cache.persistent.writes", 0) > 0
    assert cold["summary"]["cache"]["persistent"]["entries"] > 0
    # ...and the warm pass was actually served from it.
    assert warm_counters.get("perf.cache.sweep.hits", 0) > 0
    assert warm_counters.get("perf.cache.persistent.hits", 0) > 0


class TestWarmStoreDifferential:
    @pytest.mark.parametrize("backend", ["serial", "fork:2"])
    def test_cold_and_warm_reports_byte_identical(
        self, tmp_path, monkeypatch, backend
    ):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        _assert_cold_then_warm(tmp_path, monkeypatch, backend.replace(":", "-"))

    def test_cold_and_warm_reports_byte_identical_on_socket_pool(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        # The cache directory must be exported *before* the workers spawn:
        # they inherit it through the environment (and clients additionally
        # ship it per run frame, for workers started without one).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        monkeypatch.setenv("REPRO_BACKEND", f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        _assert_cold_then_warm(tmp_path, monkeypatch, "socket")

    def test_cache_dir_flag_reaches_report(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_DIR", "sentinel-to-restore")
        store_dir = tmp_path / "flagged-store"
        out = tmp_path / "report-flag.json"
        code = runner.main(
            ["E12", "--cache-dir", str(store_dir), "--metrics-out", str(out)]
        )
        assert code == 0
        persistent = json.loads(out.read_text())["summary"]["cache"]["persistent"]
        assert persistent["dir"] == os.path.abspath(str(store_dir))
        assert persistent["entries"] > 0

    def test_store_less_reports_carry_no_persistent_block(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        out = tmp_path / "report-plain.json"
        assert runner.main(["E12", "--metrics-out", str(out)]) == 0
        assert "persistent" not in json.loads(out.read_text())["summary"]["cache"]


# -- the sweep memo in isolation -----------------------------------------------


class TestSweepMemo:
    def test_identical_sweep_served_from_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)  # the suite may run REPRO_CACHE=off
        hits = metrics.counter("perf.cache.sweep.hits")
        misses = metrics.counter("perf.cache.sweep.misses")
        first = parallel_map(lambda x: x * Fraction(1, 3), [1, 2, 3])
        assert (hits.value, misses.value) == (0, 1)
        second = parallel_map(lambda x: x * Fraction(1, 3), [1, 2, 3])
        assert (hits.value, misses.value) == (1, 1)
        assert first == second == [Fraction(n, 3) for n in (1, 2, 3)]

    def test_different_items_rekey(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        hits = metrics.counter("perf.cache.sweep.hits")
        parallel_map(lambda x: x + 1, [1, 2])
        parallel_map(lambda x: x + 1, [1, 3])  # seeds ride in the items
        assert hits.value == 0

    def test_failed_sweep_not_persisted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)  # the suite may run REPRO_CACHE=off
        misses = metrics.counter("perf.cache.sweep.misses")

        def boom(x):
            raise ValueError("no result to persist")

        for _ in range(2):
            with pytest.raises(ValueError):
                parallel_map(boom, [1, 2])
        assert misses.value == 2  # second attempt missed again: nothing stored

    def test_disabled_cache_bypasses_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=False)
        misses = metrics.counter("perf.cache.sweep.misses")
        parallel_map(lambda x: x, [1, 2])
        assert misses.value == 0


# -- invalidation --------------------------------------------------------------


def _measure_automaton():
    return TablePSIOA(
        "inv",
        "q0",
        {"q0": Signature(outputs={"a"}), "q1": Signature(), "q2": Signature()},
        {
            ("q0", "a"): DiscreteMeasure(
                {"q1": Fraction(1, 2), "q2": Fraction(1, 2)}
            )
        },
    )


def _support_lstates(measure):
    return sorted(fragment.states[-1] for fragment in measure.support())


class TestInvalidation:
    def test_mutation_not_served_from_memory_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)
        automaton = _measure_automaton()
        scheduler = ActionSequenceScheduler(["a"])
        before = execution_measure(automaton, scheduler)
        assert _support_lstates(before) == ["q1", "q2"]
        automaton.transitions[("q0", "a")] = dirac("q1")
        perf_cache.invalidate(automaton)
        after = execution_measure(automaton, scheduler)
        assert _support_lstates(after) == ["q1"]

    def test_mutation_not_served_from_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)
        automaton = _measure_automaton()
        execution_measure(automaton, ActionSequenceScheduler(["a"]))
        writes = metrics.counter("perf.cache.persistent.writes")
        assert writes.value > 0
        # invalidate removes the disk entries keyed by the old fingerprint;
        # a *fresh process* (simulated by clearing every in-memory tier)
        # recomputing the structurally-original automaton must then miss.
        automaton.transitions[("q0", "a")] = dirac("q1")
        perf_cache.invalidate(automaton)
        perf_cache.clear()
        hits = metrics.counter("perf.cache.persistent.hits")
        rebuilt = execution_measure(_measure_automaton(), ActionSequenceScheduler(["a"]))
        assert hits.value == 0
        assert _support_lstates(rebuilt) == ["q1", "q2"]

    def test_unmutated_rebuild_hits_disk_across_simulated_restart(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)
        first = execution_measure(_measure_automaton(), ActionSequenceScheduler(["a"]))
        perf_cache.clear()  # drop every in-memory tier; the disk survives
        hits = metrics.counter("perf.cache.persistent.hits")
        second = execution_measure(_measure_automaton(), ActionSequenceScheduler(["a"]))
        assert hits.value > 0
        assert first == second

    def test_invalidation_wipes_sweep_entries(self, tmp_path, monkeypatch):
        from repro.perf.fingerprint import fingerprint

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        perf_cache.configure(enabled=True)
        hits = metrics.counter("perf.cache.sweep.hits")
        parallel_map(lambda x: x * 2, [1, 2, 3])
        automaton = _measure_automaton()
        fingerprint(automaton)  # give invalidate a fingerprint to key on
        perf_cache.invalidate(automaton)
        # Sweep entries cannot name their dependencies, so invalidation is
        # conservative: the whole sweep kind is dropped.
        parallel_map(lambda x: x * 2, [1, 2, 3])
        assert hits.value == 0

    def test_store_survives_corrupt_entries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        store = perf_store.active_store()
        assert store.put("sweep", "ab" * 32, [1, 2, 3])
        path = store._path("sweep", "ab" * 32, None)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get("sweep", "ab" * 32) is None  # a miss, not a crash
