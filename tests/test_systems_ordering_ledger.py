"""Unit tests for the ordering-ledger workload (the E14 substrate)."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import validate_psioa
from repro.experiments.common import kind_priority_schema
from repro.secure.adversary import is_adversary
from repro.secure.dummy import hide_adversary_actions
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.ledger import (
    COMMITTED,
    ORDER,
    PENDING,
    SUBMIT,
    fifo_ideal_ledger,
    fifo_script,
    ideal_fifo_script,
    ledger_environment,
    ordering_adversary,
    ordering_ledger,
    reversing_script,
)


class TestAutomata:
    def test_all_validate(self):
        for automaton in (
            ordering_ledger(),
            fifo_ideal_ledger(),
            ordering_adversary(),
            ledger_environment(),
        ):
            validate_psioa(automaton)

    def test_action_splits(self):
        real = ordering_ledger()
        assert real.global_aact() == {PENDING, ORDER("12"), ORDER("21")}
        assert SUBMIT(1) in real.global_eact()
        fifo = fifo_ideal_ledger()
        assert fifo.global_aact() == {PENDING}

    def test_ordering_adversary_is_adversary(self):
        # Definition 4.24 input coverage: the adversary offers *both*
        # ordering actions; the scheduler resolves the choice.
        assert is_adversary(ordering_adversary(), ordering_ledger())

    def test_submission_order_insensitive(self):
        real = ordering_ledger()
        s = next(iter(real.transition("idle", SUBMIT(2)).support()))
        assert s == ("one", 2)
        s2 = next(iter(real.transition(("one", 2), SUBMIT(1)).support()))
        assert s2 == "ask"


class TestRuns:
    def run_world(self, system, adversary, script, env=None):
        env = env or ledger_environment()
        hidden = hide_adversary_actions(
            compose(system, adversary, name=("w", system.name, adversary.name)),
            frozenset(system.global_aact()),
        )
        sched = ActionSequenceScheduler(script, local_only=True)
        return env, hidden, sched

    def test_reversing_resolution_reverses(self):
        env, world_sys, sched = self.run_world(
            ordering_ledger("r1"), ordering_adversary("a1"), reversing_script()
        )
        dist = f_dist(accept_insight(), env, world_sys, sched)
        assert dist(1) == 1  # commits observed reversed with certainty

    def test_fifo_resolution_preserves_order(self):
        env, world_sys, sched = self.run_world(
            ordering_ledger("r2"), ordering_adversary("a2"), fifo_script()
        )
        dist = f_dist(accept_insight(), env, world_sys, sched)
        assert dist(0) == 1

    def test_fifo_ideal_never_reverses(self):
        from repro.core.psioa import TablePSIOA
        from repro.core.signature import Signature
        from repro.probability.measures import dirac

        sim = TablePSIOA(
            "sim", "s", {"s": Signature(inputs={PENDING})}, {("s", PENDING): dirac("s")}
        )
        env, world_sys, sched = self.run_world(
            fifo_ideal_ledger("i1"), sim, ideal_fifo_script()
        )
        dist = f_dist(accept_insight(), env, world_sys, sched)
        assert dist(0) == 1

    def test_commit_sequence_in_trace(self):
        env, world_sys, sched = self.run_world(
            ordering_ledger("r3"), ordering_adversary("a3"), reversing_script()
        )
        world = compose(env, world_sys)
        measure = execution_measure(world, sched)
        (execution,) = measure.support()
        commits = [a for a in execution.actions if a[0] == "committed"]
        assert commits == [COMMITTED(2), COMMITTED(1)]
