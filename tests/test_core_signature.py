"""Tests for signature algebra (paper Definitions 2.3, 2.4, 2.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import (
    EMPTY_SIGNATURE,
    Signature,
    compose_signatures,
    fresh_action,
    hide_signature,
    incompatibility_reason,
    signatures_compatible,
)

ALPHABET = [f"a{i}" for i in range(8)]


@st.composite
def signatures(draw):
    """Random signatures over a small alphabet with disjoint components."""
    actions = draw(st.lists(st.sampled_from(ALPHABET), unique=True))
    kinds = [draw(st.sampled_from(["in", "out", "int"])) for _ in actions]
    return Signature(
        inputs=frozenset(a for a, k in zip(actions, kinds) if k == "in"),
        outputs=frozenset(a for a, k in zip(actions, kinds) if k == "out"),
        internals=frozenset(a for a, k in zip(actions, kinds) if k == "int"),
    )


class TestSignatureBasics:
    def test_disjointness_enforced_in_out(self):
        with pytest.raises(ValueError):
            Signature(inputs={"a"}, outputs={"a"})

    def test_disjointness_enforced_in_int(self):
        with pytest.raises(ValueError):
            Signature(inputs={"a"}, internals={"a"})

    def test_disjointness_enforced_out_int(self):
        with pytest.raises(ValueError):
            Signature(outputs={"a"}, internals={"a"})

    def test_external_and_all_actions(self):
        sig = Signature(inputs={"i"}, outputs={"o"}, internals={"h"})
        assert sig.external == {"i", "o"}
        assert sig.all_actions == {"i", "o", "h"}
        assert sig.locally_controlled() == {"o", "h"}

    def test_empty_signature_sentinel(self):
        assert EMPTY_SIGNATURE.is_empty
        assert not Signature(inputs={"a"}).is_empty

    def test_renamed_preserves_partition(self):
        sig = Signature(inputs={"i"}, outputs={"o"}, internals={"h"})
        renamed = sig.renamed(lambda a: a.upper())
        assert renamed.inputs == {"I"}
        assert renamed.outputs == {"O"}
        assert renamed.internals == {"H"}

    def test_accepts_plain_iterables(self):
        sig = Signature(inputs=["a", "b"], outputs=("c",))
        assert sig.inputs == frozenset({"a", "b"})

    def test_fresh_action_is_fresh(self):
        assert fresh_action("send") != "send"
        assert fresh_action("send", "g") == ("g", "send")


class TestCompatibility:
    def test_output_clash_incompatible(self):
        a = Signature(outputs={"x"})
        b = Signature(outputs={"x"})
        assert not signatures_compatible([a, b])
        assert "shared outputs" in incompatibility_reason([a, b])

    def test_internal_clash_incompatible(self):
        a = Signature(internals={"x"})
        b = Signature(inputs={"x"})
        assert not signatures_compatible([a, b])

    def test_internal_clash_symmetric(self):
        a = Signature(inputs={"x"})
        b = Signature(internals={"x"})
        assert not signatures_compatible([a, b])

    def test_matching_io_is_compatible(self):
        a = Signature(outputs={"x"})
        b = Signature(inputs={"x"})
        assert signatures_compatible([a, b])
        assert incompatibility_reason([a, b]) is None

    def test_shared_inputs_are_compatible(self):
        a = Signature(inputs={"x"})
        b = Signature(inputs={"x"})
        assert signatures_compatible([a, b])

    def test_triple_compatibility_checks_all_pairs(self):
        a = Signature(outputs={"x"})
        b = Signature(inputs={"x"})
        c = Signature(outputs={"x"})
        assert not signatures_compatible([a, b, c])

    @given(signatures())
    @settings(max_examples=30, deadline=None)
    def test_empty_compatible_with_anything(self, sig):
        assert signatures_compatible([sig, EMPTY_SIGNATURE])


class TestComposition:
    def test_matched_io_becomes_output(self):
        a = Signature(outputs={"x"}, inputs={"y"})
        b = Signature(inputs={"x"})
        composed = compose_signatures([a, b])
        assert composed.outputs == {"x"}
        assert composed.inputs == {"y"}

    def test_internals_union(self):
        a = Signature(internals={"h1"})
        b = Signature(internals={"h2"})
        composed = compose_signatures([a, b])
        assert composed.internals == {"h1", "h2"}

    def test_identity_of_empty(self):
        sig = Signature(inputs={"i"}, outputs={"o"})
        assert compose_signatures([sig, EMPTY_SIGNATURE]) == sig

    @given(signatures(), signatures())
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, a, b):
        if signatures_compatible([a, b]):
            assert compose_signatures([a, b]) == compose_signatures([b, a])

    @given(signatures(), signatures(), signatures())
    @settings(max_examples=50, deadline=None)
    def test_associative(self, a, b, c):
        if signatures_compatible([a, b, c]):
            left = compose_signatures([compose_signatures([a, b]), c])
            right = compose_signatures([a, compose_signatures([b, c])])
            assert left == right

    @given(signatures(), signatures())
    @settings(max_examples=50, deadline=None)
    def test_composed_all_actions_is_union(self, a, b):
        if signatures_compatible([a, b]):
            assert compose_signatures([a, b]).all_actions == a.all_actions | b.all_actions


class TestHiding:
    def test_hide_moves_outputs_to_internals(self):
        sig = Signature(inputs={"i"}, outputs={"o1", "o2"})
        hidden = hide_signature(sig, {"o1"})
        assert hidden.outputs == {"o2"}
        assert hidden.internals == {"o1"}
        assert hidden.inputs == {"i"}

    def test_hide_ignores_non_outputs(self):
        sig = Signature(inputs={"i"}, outputs={"o"})
        hidden = hide_signature(sig, {"i", "zzz"})
        assert hidden == sig

    def test_hide_everything(self):
        sig = Signature(outputs={"o1", "o2"})
        hidden = hide_signature(sig, {"o1", "o2"})
        assert hidden.outputs == frozenset()
        assert hidden.internals == {"o1", "o2"}

    @given(signatures())
    @settings(max_examples=50, deadline=None)
    def test_hide_preserves_all_actions(self, sig):
        hidden = hide_signature(sig, set(sig.outputs))
        assert hidden.all_actions == sig.all_actions

    @given(signatures())
    @settings(max_examples=50, deadline=None)
    def test_hide_idempotent(self, sig):
        s = set(sig.outputs)
        once = hide_signature(sig, s)
        twice = hide_signature(once, s)
        assert once == twice
