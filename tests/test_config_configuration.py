"""Tests for configurations and configuration transitions (Defs 2.9-2.14)."""

from fractions import Fraction

import pytest

from repro.config.configuration import Configuration
from repro.config.transitions import intrinsic_transition, preserving_transition
from repro.core.psioa import PsioaError
from repro.core.signature import Signature

from tests.helpers import coin_automaton, fair_coin, listener, ticker


def tagged_coin(i, p=Fraction(1, 2)):
    """A coin with per-instance action names so several can coexist."""
    return coin_automaton(
        ("coin", i), p, toss=("toss", i), head=("head", i), tail=("tail", i)
    )


class TestConfiguration:
    def test_initial_places_automata_at_start(self):
        coin = fair_coin()
        ear = listener("ear", {"toss"})
        config = Configuration.initial([coin, ear])
        assert config.state_of(coin) == "q0"
        assert config.state_of("ear") == "s"
        assert config.ids() == {"fair", "ear"}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(PsioaError):
            Configuration([(fair_coin("x"), "q0"), (fair_coin("x"), "qH")])

    def test_intrinsic_signature(self):
        # Definition 2.11: out(C) union of outputs, in(C) = union inputs - out(C).
        coin = fair_coin()
        ear = listener("ear", {"toss", "other"})
        config = Configuration.initial([coin, ear])
        sig = config.signature()
        assert sig.outputs == {"toss"}
        assert sig.inputs == {"other"}

    def test_incompatible_configuration_detected(self):
        a = ticker("a", 1, action="x")
        b = ticker("b", 1, action="x")
        config = Configuration.initial([a, b])
        assert not config.is_compatible()
        with pytest.raises(PsioaError):
            config.signature()

    def test_reduce_drops_empty_signature_members(self):
        coin = fair_coin()
        config = Configuration([(coin, "qF"), (listener("ear", {"x"}), "s")])
        assert not config.is_reduced()
        reduced = config.reduce()
        assert reduced.ids() == {"ear"}
        assert reduced.is_reduced()

    def test_union_requires_disjoint_ids(self):
        c1 = Configuration.initial([fair_coin("a")])
        c2 = Configuration.initial([fair_coin("b")])
        merged = c1.union(c2)
        assert merged.ids() == {"a", "b"}
        with pytest.raises(PsioaError):
            merged.union(c1)

    def test_restrict(self):
        config = Configuration.initial([fair_coin("a"), fair_coin("b")])
        assert config.restrict(["a"]).ids() == {"a"}

    def test_replace_states(self):
        coin = fair_coin()
        config = Configuration.initial([coin])
        moved = config.replace_states({"fair": "qH"})
        assert moved.state_of(coin) == "qH"
        assert config.state_of(coin) == "q0"  # immutability

    def test_value_equality_and_hash(self):
        c1 = Configuration.initial([fair_coin(), listener("ear", {"x"})])
        c2 = Configuration([(listener("ear", {"x"}), "s"), (fair_coin(), "q0")])
        assert c1 == c2
        assert hash(c1) == hash(c2)
        assert len({c1, c2}) == 1

    def test_empty_configuration(self):
        empty = Configuration.empty()
        assert len(empty) == 0
        assert empty.signature().is_empty
        assert empty.is_reduced()


class TestPreservingTransition:
    def test_single_mover(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        config = Configuration.initial([coin, ear])
        eta = preserving_transition(config, "toss")
        heads = config.replace_states({"fair": "qH"})
        tails = config.replace_states({"fair": "qT"})
        assert eta(heads) == Fraction(1, 2)
        assert eta(tails) == Fraction(1, 2)

    def test_automaton_set_preserved(self):
        coin = fair_coin()
        config = Configuration.initial([coin, listener("ear", {"toss"})])
        eta = preserving_transition(config, "toss")
        for outcome in eta.support():
            assert outcome.ids() == config.ids()

    def test_shared_action_moves_all_participants(self):
        # The listener shares the coin's output and must step synchronously.
        coin = coin_automaton("det", 1)
        fwd = listener("ear", {"toss"})
        config = Configuration.initial([coin, fwd])
        eta = preserving_transition(config, "toss")
        (outcome,) = eta.support()
        assert outcome.state_of("det") == "qH"
        assert outcome.state_of("ear") == "s"

    def test_action_outside_signature_rejected(self):
        config = Configuration.initial([fair_coin()])
        with pytest.raises(PsioaError):
            preserving_transition(config, "nonsense")

    def test_incompatible_configuration_rejected(self):
        config = Configuration.initial([ticker("a", 1, action="x"), ticker("b", 1, action="x")])
        with pytest.raises(PsioaError):
            preserving_transition(config, "x")


class TestIntrinsicTransition:
    def test_no_creation_no_destruction_matches_preserving(self):
        coin = fair_coin()
        config = Configuration.initial([coin, listener("ear", {"toss", "head", "tail"})])
        assert intrinsic_transition(config, "toss") == preserving_transition(config, "toss")

    def test_creation_adds_automaton_at_start_state(self):
        spawner = ticker("spawner", 1, action="spawn")
        config = Configuration.initial([spawner])
        worker = tagged_coin(0)
        eta = intrinsic_transition(config, "spawn", created=[worker])
        # Spawner reaches state 1 (empty signature) and is destroyed; the
        # fresh coin joins at its start state.
        (outcome,) = eta.support()
        assert outcome.ids() == {("coin", 0)}
        assert outcome.state_of(("coin", 0)) == "q0"

    def test_destruction_merges_mass(self):
        # A deterministic coin announcing 'head' reaches qF (empty signature)
        # and is destroyed; the listener remains.
        coin = coin_automaton("det", 1)
        ear = listener("ear", {("noop",)})
        config = Configuration([(coin, "qH"), (ear, "s")])
        eta = intrinsic_transition(config, "head")
        (outcome,) = eta.support()
        assert outcome.ids() == {"ear"}
        assert eta(outcome) == 1

    def test_probabilistic_destruction(self):
        # Coin at q0: after 'toss' both branches stay alive (qH, qT non-empty).
        coin = fair_coin()
        config = Configuration.initial([coin])
        eta = intrinsic_transition(config, "toss")
        assert len(eta.support()) == 2

    def test_creation_set_must_be_fresh(self):
        coin = fair_coin()
        config = Configuration.initial([coin])
        with pytest.raises(PsioaError, match="overlaps"):
            intrinsic_transition(config, "toss", created=[fair_coin()])

    def test_duplicate_creation_ids_rejected(self):
        config = Configuration.initial([ticker("t", 1, action="go")])
        with pytest.raises(PsioaError, match="duplicate"):
            intrinsic_transition(config, "go", created=[tagged_coin(1), tagged_coin(1)])

    def test_requires_reduced_configuration(self):
        coin = fair_coin()
        not_reduced = Configuration([(coin, "qF"), (ticker("t", 1, action="go"), 0)])
        with pytest.raises(PsioaError, match="reduced"):
            intrinsic_transition(not_reduced, "go")

    def test_created_automaton_with_immediately_empty_signature_is_destroyed(self):
        # Creating an automaton already at an empty-signature start state is
        # a no-op after reduction (Definition 2.14's eta_r).
        from repro.core.psioa import TablePSIOA

        husk = TablePSIOA("husk", "dead", {"dead": Signature()}, {})
        config = Configuration.initial([ticker("t", 1, action="go")])
        eta = intrinsic_transition(config, "go", created=[husk])
        (outcome,) = eta.support()
        assert "husk" not in outcome.ids()
