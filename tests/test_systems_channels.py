"""Tests for the OTP channel workload and its secure emulation (Def 4.26)."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import validate_psioa
from repro.secure.adversary import is_adversary
from repro.secure.emulation import (
    emulation_distance_profile,
    hidden_world,
    secure_emulates,
)
from repro.secure.implementation import neg_pt_implements
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.channels import (
    GUESS,
    LEAK,
    RECV,
    SEND,
    SENT,
    broken_channel,
    channel_emulation_instance,
    channel_environment,
    channel_schema,
    channel_simulator,
    guessing_adversary,
    ideal_channel,
    leak_bias,
    real_channel,
)

ENVS = [channel_environment(0), channel_environment(1)]
SCHEMA = channel_schema()
INSIGHT = accept_insight()
Q = 8


def protocol_scheduler(world):
    (member,) = list(SCHEMA(world, Q))[:1]
    return member


class TestChannelAutomata:
    def test_real_channel_validates(self):
        validate_psioa(real_channel())
        validate_psioa(real_channel("leaky", 3))
        validate_psioa(broken_channel())

    def test_ideal_channel_validates(self):
        validate_psioa(ideal_channel())

    def test_action_split(self):
        real = real_channel()
        assert real.global_aact() == {LEAK(0), LEAK(1)}
        assert SEND(0) in real.global_eact()
        ideal = ideal_channel()
        assert ideal.global_aact() == {SENT}

    def test_perfect_pad_ciphertext_uniform(self):
        real = real_channel()
        eta = real.transition("idle", SEND(1))
        assert eta(("cipher", 1, 0)) == Fraction(1, 2)
        assert eta(("cipher", 1, 1)) == Fraction(1, 2)

    def test_leaky_pad_bias(self):
        real = real_channel("leaky", 2)
        eta = real.transition("idle", SEND(1))
        assert eta(("cipher", 1, 1)) == Fraction(1, 2) + Fraction(1, 8)

    def test_broken_channel_leaks_message(self):
        broken = broken_channel()
        eta = broken.transition("idle", SEND(1))
        assert eta(("cipher", 1, 1)) == 1

    def test_leak_bias_values(self):
        assert leak_bias(None) == 0
        assert leak_bias(3) == Fraction(1, 16)


class TestAdversaryAndSimulator:
    def test_guessing_adversary_is_adversary_for_real(self):
        assert is_adversary(guessing_adversary(), real_channel())

    def test_simulator_is_adversary_for_ideal(self):
        sim = channel_simulator(guessing_adversary())
        assert is_adversary(sim, ideal_channel())

    def test_simulator_hides_leak_channel(self):
        sim = channel_simulator(guessing_adversary())
        sig = sim.signature(sim.start)
        assert LEAK(0) not in sig.outputs
        assert SENT in sig.inputs


class TestRealWorldRun:
    def test_adversary_guess_matches_pad_statistics(self):
        env = channel_environment(1)
        world = compose(env, hidden_world(real_channel(), guessing_adversary()))
        sched = protocol_scheduler(world)
        dist = f_dist(INSIGHT, env, hidden_world(real_channel(), guessing_adversary()), sched)
        # Perfect pad: the adversary's guess is right half the time.
        assert dist(1) == Fraction(1, 2)

    def test_broken_channel_adversary_always_wins(self):
        env = channel_environment(1)
        world_sys = hidden_world(broken_channel(), guessing_adversary())
        sched = protocol_scheduler(compose(env, world_sys))
        dist = f_dist(INSIGHT, env, world_sys, sched)
        assert dist(1) == 1

    def test_ideal_with_simulator_guess_uniform(self):
        env = channel_environment(1)
        sim = channel_simulator(guessing_adversary())
        world_sys = hidden_world(ideal_channel(), sim)
        sched = protocol_scheduler(compose(env, world_sys))
        dist = f_dist(INSIGHT, env, world_sys, sched)
        assert dist(1) == Fraction(1, 2)


class TestEmulation:
    def test_perfect_channel_zero_profile(self):
        instance = channel_emulation_instance(leaky=False)
        profile = emulation_distance_profile(
            instance,
            lambda k: guessing_adversary(),
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: Q,
            q2=lambda k: Q,
            ks=range(1, 4),
        )
        assert all(v == 0 for _, v in profile)

    def test_leaky_channel_profile_is_exact_bias(self):
        instance = channel_emulation_instance(leaky=True)
        profile = emulation_distance_profile(
            instance,
            lambda k: guessing_adversary(),
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: Q,
            q2=lambda k: Q,
            ks=range(1, 5),
        )
        for k, v in profile:
            assert v == pytest.approx(float(leak_bias(k)))
        assert neg_pt_implements(profile)

    def test_secure_emulates_passes_for_leaky_family(self):
        instance = channel_emulation_instance(leaky=True)
        profiles = secure_emulates(
            instance,
            [lambda k: guessing_adversary()],
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: Q,
            q2=lambda k: Q,
            ks=range(1, 5),
        )
        assert 0 in profiles

    def test_broken_channel_fails_emulation(self):
        from repro.bounded.families import PSIOAFamily
        from repro.secure.emulation import EmulationInstance

        broken_instance = EmulationInstance(
            "broken",
            PSIOAFamily("broken/real", lambda k: broken_channel(("broken", k))),
            PSIOAFamily("broken/ideal", lambda k: ideal_channel(("ideal", k))),
            simulator_for=lambda k, adv: channel_simulator(adv, name=("Sim", k)),
        )
        with pytest.raises(AssertionError, match="not negligible"):
            secure_emulates(
                broken_instance,
                [lambda k: guessing_adversary()],
                schema=SCHEMA,
                insight=INSIGHT,
                environment_family=lambda k: ENVS,
                q1=lambda k: Q,
                q2=lambda k: Q,
                ks=range(1, 4),
            )
