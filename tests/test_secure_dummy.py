"""Tests for the dummy adversary and Forward constructions (Defs 4.27-4.28,
Lemma 4.29/D.1)."""

from fractions import Fraction

import pytest

from repro.core.executions import Fragment
from repro.core.psioa import TablePSIOA, validate_psioa
from repro.core.signature import Signature
from repro.probability.measures import dirac, total_variation
from repro.secure.adversary import is_adversary
from repro.secure.dummy import (
    DummyAdversary,
    ForwardScheduler,
    adversary_rename,
    apply_adversary_rename,
    build_dummy_worlds,
    collapse_execution,
    dummy_adversary,
    forward_execution,
    hide_adversary_actions,
)
from repro.secure.structured import structure
from repro.semantics.insight import f_dist, print_insight, trace_insight
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler

from tests.helpers import coin_automaton, controlled_coin, listener


def structured_coin(name="coin", p=Fraction(1, 2)):
    return structure(coin_automaton(name, p), {"head", "tail"})


def structured_controlled(name="rc", p=Fraction(1, 2)):
    return structure(controlled_coin(name, p, go="go"), {"head", "tail"})


def env_observer(name="E"):
    """Environment watching head/tail and reporting via output 'acc'."""
    signatures = {
        "watch": Signature(inputs={"head", "tail"}),
        "happy": Signature(inputs={"head", "tail"}, outputs={"acc"}),
        "done": Signature(inputs={"head", "tail"}),
    }
    transitions = {
        ("watch", "head"): dirac("happy"),
        ("watch", "tail"): dirac("watch"),
        ("happy", "head"): dirac("happy"),
        ("happy", "tail"): dirac("happy"),
        ("happy", "acc"): dirac("done"),
        ("done", "head"): dirac("done"),
        ("done", "tail"): dirac("done"),
    }
    return TablePSIOA(name, "watch", signatures, transitions)


def passive_adv(name="Adv", g_names=()):
    """Adversary listening on the renamed channel."""
    return listener(name, set(g_names))


def driving_adv(name="Adv", action=("g", "go")):
    """Adversary that repeatedly fires one renamed action."""
    return TablePSIOA(
        name,
        "s",
        {"s": Signature(outputs={action})},
        {("s", action): dirac("s")},
    )


class TestRenaming:
    def test_adversary_rename_covers_aact(self):
        sc = structured_coin()
        g = adversary_rename(sc)
        assert g == {"toss": ("g", "toss")}

    def test_apply_rename_keeps_eact(self):
        sc = structured_coin()
        g = adversary_rename(sc)
        renamed = apply_adversary_rename(sc, g)
        assert renamed.signature("q0").outputs == {("g", "toss")}
        assert renamed.signature("qH").outputs == {"head"}
        assert renamed.eact("qH") == {"head"}
        validate_psioa(renamed)


class TestDummyAutomaton:
    def test_dummy_shape_output_direction(self):
        sc = structured_coin()
        dummy, g = dummy_adversary(sc)
        assert dummy.start == ("pend", None)
        sig0 = dummy.signature(("pend", None))
        assert sig0.inputs == {"toss"}
        assert sig0.outputs == frozenset()
        # After latching 'toss', the dummy offers g('toss').
        latched = dummy.transition(("pend", None), "toss")
        assert latched(("pend", "toss")) == 1
        sig1 = dummy.signature(("pend", "toss"))
        assert sig1.outputs == {("g", "toss")}
        assert dummy.transition(("pend", "toss"), ("g", "toss"))(("pend", None)) == 1

    def test_dummy_shape_input_direction(self):
        rc = structured_controlled()
        dummy, g = dummy_adversary(rc)
        sig0 = dummy.signature(("pend", None))
        assert sig0.inputs == {("g", "go")}
        latched = dummy.transition(("pend", None), ("g", "go"))
        assert latched(("pend", ("g", "go"))) == 1
        sig1 = dummy.signature(("pend", ("g", "go")))
        assert sig1.outputs == {"go"}

    def test_forward_and_origin_actions(self):
        sc = structured_coin()
        dummy, g = dummy_adversary(sc)
        assert dummy.forward_action("toss") == ("g", "toss")
        assert dummy.origin_action("toss") == ("g", "toss")
        rc = structured_controlled("rc2")
        dummy2, _ = dummy_adversary(rc)
        assert dummy2.forward_action(("g", "go")) == "go"
        assert dummy2.origin_action(("g", "go")) == ("g", "go")

    def test_dummy_is_valid_psioa(self):
        sc = structured_coin()
        dummy, _ = dummy_adversary(sc)
        # Dummy alone never reaches latched states (inputs drive it), so
        # validate over the explicit state set.
        states = [("pend", None), ("pend", "toss"), ("pend", ("g", "toss"))]
        validate_psioa(dummy, states=[("pend", None), ("pend", "toss")])

    def test_dummy_rejects_incomplete_renaming(self):
        sc = structured_coin()
        with pytest.raises(Exception):
            DummyAdversary(sc, {})


class TestWorldsAndAdversaryStatus:
    def test_adv_is_adversary_for_renamed_and_hidden(self):
        # The premise of Lemma 4.29: Adv must be an adversary for both g(A)
        # and hide(A || Dummy, AAct_A).
        sc = structured_coin()
        g = adversary_rename(sc)
        adv = passive_adv(g_names=[("g", "toss")])
        renamed = apply_adversary_rename(sc, g)
        assert is_adversary(adv, renamed)

    def test_build_dummy_worlds_shapes(self):
        sc = structured_coin()
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        phi, psi, dummy, g = build_dummy_worlds(env, sc, adv)
        assert phi.start == ("watch", "q0", "s")
        assert psi.start == ("watch", ("q0", ("pend", None)), "s")

    def test_hidden_world_internalizes_aact(self):
        sc = structured_coin()
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        _phi, psi, _dummy, _g = build_dummy_worlds(env, sc, adv)
        sig = psi.signature(psi.start)
        assert "toss" in sig.internals
        assert "toss" not in sig.outputs


class TestForwardExecution:
    def setup_method(self):
        self.sc = structured_coin()
        self.env = env_observer()
        self.adv = passive_adv(g_names=[("g", "toss")])
        self.phi, self.psi, self.dummy, self.g = build_dummy_worlds(self.env, self.sc, self.adv)

    def phi_execution(self):
        return Fragment(
            (
                ("watch", "q0", "s"),
                ("watch", "qH", "s"),
                ("happy", "qF", "s"),
            ),
            (("g", "toss"), "head"),
        )

    def test_forward_expands_adversary_steps(self):
        alpha = self.phi_execution()
        alpha_prime = forward_execution(alpha, self.dummy)
        assert alpha_prime.actions == ("toss", ("g", "toss"), "head")
        assert alpha_prime.states[1] == ("watch", ("qH", ("pend", "toss")), "s")
        assert alpha_prime.is_execution_of(self.psi)

    def test_collapse_is_inverse(self):
        alpha = self.phi_execution()
        assert collapse_execution(forward_execution(alpha, self.dummy), self.dummy) == alpha

    def test_collapse_rejects_mid_forward(self):
        alpha = self.phi_execution()
        alpha_prime = forward_execution(alpha, self.dummy)
        mid = Fragment(alpha_prime.states[:2], alpha_prime.actions[:1])
        assert collapse_execution(mid, self.dummy) is None

    def test_forward_execution_valid_in_psi(self):
        # Every phi execution maps to a valid psi execution.
        alpha = Fragment(
            (("watch", "q0", "s"), ("watch", "qT", "s")),
            (("g", "toss"),),
        )
        assert alpha.is_execution_of(self.phi)
        assert forward_execution(alpha, self.dummy).is_execution_of(self.psi)

    def test_input_direction_expansion(self):
        rc = structured_controlled()
        env = env_observer("E2")
        adv = driving_adv(action=("g", "go"))
        phi, psi, dummy, g = build_dummy_worlds(env, rc, adv)
        alpha = Fragment(
            (("watch", "w", "s"), ("watch", "qH", "s")),
            (("g", "go"),),
        )
        assert alpha.is_execution_of(phi)
        alpha_prime = forward_execution(alpha, dummy)
        assert alpha_prime.actions == (("g", "go"), "go")
        assert alpha_prime.states[1] == ("watch", ("w", ("pend", ("g", "go"))), "s")
        assert alpha_prime.is_execution_of(psi)


class TestLemma429:
    """Dummy adversary insertion: exact f-dist equality under Forward^s."""

    def check_equality(self, structured, env, adv, script, insight):
        phi, psi, dummy, g = build_dummy_worlds(env, structured, adv)
        sigma = ActionSequenceScheduler(script, local_only=True)
        sigma_prime = ForwardScheduler(sigma, phi, dummy)
        dist_phi = execution_measure(phi, sigma).map(
            lambda e: insight(env, phi, e)
        )
        dist_psi = execution_measure(psi, sigma_prime).map(
            lambda e: insight(env, psi, e)
        )
        return total_variation(dist_phi, dist_psi)

    def test_output_direction_exact_zero(self):
        sc = structured_coin()
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        d = self.check_equality(
            sc, env, adv, [("g", "toss"), "head", "acc"], print_insight()
        )
        assert d == 0

    def test_output_direction_trace_insight_zero(self):
        # Hiding makes the initiating step internal, so even the full trace
        # agrees between the two worlds.
        sc = structured_coin()
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        d = self.check_equality(
            sc, env, adv, [("g", "toss"), "head", "acc"], trace_insight()
        )
        assert d == 0

    def test_input_direction_exact_zero(self):
        rc = structured_controlled()
        env = env_observer("E2")
        adv = driving_adv(action=("g", "go"))
        d = self.check_equality(
            rc, env, adv, [("g", "go"), "head", "acc"], print_insight()
        )
        assert d == 0

    def test_biased_coin_still_zero(self):
        sc = structured_coin(p=Fraction(2, 7))
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        d = self.check_equality(
            sc, env, adv, [("g", "toss"), "head", "acc"], print_insight()
        )
        assert d == 0

    def test_q2_is_twice_q1(self):
        sc = structured_coin()
        env = env_observer()
        adv = passive_adv(g_names=[("g", "toss")])
        phi, psi, dummy, g = build_dummy_worlds(env, sc, adv)
        sigma = ActionSequenceScheduler([("g", "toss"), "head"], local_only=True)
        sigma_prime = ForwardScheduler(sigma, phi, dummy)
        assert sigma_prime.step_bound() == 2 * sigma.step_bound()

    def test_longer_scripts_stay_exact(self):
        rc = structured_controlled()
        env = env_observer("E2")
        adv = driving_adv(action=("g", "go"))
        for script in [
            [("g", "go")],
            [("g", "go"), "head"],
            [("g", "go"), "tail", "head", "acc"],
            [("g", "go"), ("g", "go"), "head", "acc"],
        ]:
            d = self.check_equality(rc, env, adv, script, print_insight())
            assert d == 0, script
