"""Property-based invariants of the PCA layer over randomized dynamic
systems (spawning PCAs with seeded children)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distinguish import estimated_perception_distance
from repro.config.pca import compose_pca, hide_pca
from repro.config.validate import validate_pca
from repro.core.psioa import reachable_states
from repro.semantics.insight import accept_insight
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin, coin_observer
from repro.systems.ledger import spawning_pca

SEEDS = st.integers(min_value=0, max_value=2_000)


def random_spawner(seed, tag="p"):
    rng = np.random.default_rng(seed)
    p = Fraction(int(rng.integers(0, 9)), 8)
    child = lambda: coin(
        ("child", tag, seed),
        p,
        toss=("toss", tag, seed),
        head=("head", tag, seed),
        tail=("tail", tag, seed),
    )
    return spawning_pca(
        child,
        name=("spawner", tag, seed),
        trigger=("spawn", tag, seed),
        manager_name=("mgr", tag, seed),
    )


class TestPcaInvariants:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_random_spawners_satisfy_definition_216(self, seed):
        validate_pca(random_spawner(seed))

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_every_reachable_configuration_reduced_and_compatible(self, seed):
        pca = random_spawner(seed)
        for state in reachable_states(pca):
            config = pca.config(state)
            assert config.is_reduced()
            assert config.is_compatible()

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_composition_config_is_union(self, seed):
        left = random_spawner(seed, tag="L")
        right = random_spawner(seed + 1, tag="R")
        both = compose_pca(left, right)
        for state in reachable_states(both, max_states=5_000):
            config = both.config(state)
            left_config = left.config(state[0])
            right_config = right.config(state[1])
            assert config.ids() == left_config.ids() | right_config.ids()

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_hidden_pca_keeps_transitions(self, seed):
        pca = random_spawner(seed)
        hidden = hide_pca(pca, lambda q: set(pca.signature(q).outputs))
        for state in reachable_states(pca, max_states=5_000):
            for action in pca.signature(state).all_actions:
                assert hidden.transition(state, action) == pca.transition(state, action)

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_composed_pca_validates(self, seed):
        left = random_spawner(seed, tag="L")
        right = random_spawner(seed + 1, tag="R")
        validate_pca(compose_pca(left, right), max_states=10_000)


class TestEstimatedDistance:
    def test_estimate_brackets_exact_value(self):
        env = coin_observer()
        fair = coin("fair", Fraction(1, 2))
        biased = coin("biased", Fraction(3, 4))
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        estimate, radius = estimated_perception_distance(
            accept_insight(), env, fair, biased, sched, samples=4000, seed=3
        )
        assert abs(estimate - 0.25) <= radius

    def test_identical_systems_estimate_near_zero(self):
        env = coin_observer()
        fair = coin("fair", Fraction(1, 2))
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        estimate, radius = estimated_perception_distance(
            accept_insight(), env, fair, fair, sched, samples=4000, seed=4
        )
        assert estimate <= radius
