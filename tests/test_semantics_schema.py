"""Tests for scheduler schemas (Def 3.2) and their enumerations."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.semantics.measure import execution_measure
from repro.semantics.schema import (
    SchedulerSchema,
    adaptive_schema,
    enumerate_action_sequences,
    oblivious_schema,
    singleton_schema,
)
from repro.semantics.scheduler import ActionSequenceScheduler, PriorityScheduler

from tests.helpers import fair_coin, listener, ticker


class TestObliviousSchema:
    def test_member_count_is_geometric(self):
        coin = fair_coin()
        members = list(enumerate_action_sequences(coin, 2))
        # alphabet {toss, head, tail}: 1 + 3 + 9 sequences.
        assert len(members) == 13

    def test_explicit_action_alphabet(self):
        coin = fair_coin()
        members = list(enumerate_action_sequences(coin, 2, actions=["toss"]))
        assert len(members) == 3  # (), (toss), (toss, toss)

    def test_schema_membership(self):
        schema = oblivious_schema()
        coin = fair_coin()
        member = next(iter(schema(coin, 1)))
        assert schema.contains(coin, member)
        assert not schema.contains(coin, PriorityScheduler([lambda a: True], 3))

    def test_members_are_bounded(self):
        schema = oblivious_schema()
        for member in schema(fair_coin(), 2):
            assert member.step_bound() <= 2


class TestAdaptiveSchema:
    def test_members_run_to_their_depth(self):
        schema = adaptive_schema()
        t = ticker("t", 5)
        depths = set()
        for member in schema(t, 3):
            measure = execution_measure(t, member, max_depth=5)
            (execution,) = measure.support()
            depths.add(len(execution))
        assert depths == {0, 1, 2, 3}

    def test_members_never_fire_inputs(self):
        schema = adaptive_schema()
        ear = listener("ear", {"ping"})
        for member in schema(ear, 2):
            measure = execution_measure(ear, member, max_depth=3)
            for execution in measure.support():
                assert len(execution) == 0  # nothing locally controlled


class TestSingletonSchema:
    def test_exactly_one_member(self):
        schema = singleton_schema(
            lambda automaton, bound: ActionSequenceScheduler(["toss"])
        )
        members = list(schema(fair_coin(), 5))
        assert len(members) == 1

    def test_member_is_bound_wrapped(self):
        schema = singleton_schema(
            lambda automaton, bound: PriorityScheduler([lambda a: True], 100)
        )
        (member,) = list(schema(fair_coin(), 3))
        assert member.step_bound() == 3


class TestSchemaOverCompositions:
    def test_schema_applies_to_composed_world(self):
        world = compose(fair_coin(), listener("ear", {"toss", "head", "tail"}))
        schema = oblivious_schema(actions=["toss", "head", "tail"])
        members = list(schema(world, 1))
        assert len(members) == 4
        for member in members:
            measure = execution_measure(world, member)
            assert measure.total_mass == 1
