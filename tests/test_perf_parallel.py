"""Tests of the fork-based ``parallel_map`` determinism contract.

Order preservation, exactness across the pickle boundary, seed-stable
partitioning, fork-boundary metrics merging, serial fallback, and error
propagation with the child traceback attached.
"""

import random
from fractions import Fraction

import pytest

from repro.obs import metrics
from repro.perf.parallel import (
    ParallelWorkerError,
    configure_workers,
    default_workers,
    parallel_map,
)


@pytest.fixture(autouse=True)
def _reset_workers():
    configure_workers(None)
    yield
    configure_workers(None)


class TestOrderAndExactness:
    def test_results_in_input_order(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, workers=4) == [x * x for x in items]

    def test_fractions_cross_the_boundary_exactly(self):
        items = [Fraction(1, n) for n in range(1, 17)]
        result = parallel_map(lambda f: f / 3, items, workers=3)
        assert result == [f / 3 for f in items]
        assert all(isinstance(r, Fraction) for r in result)

    def test_single_item_runs_serially(self):
        forks_before = metrics.counter("perf.parallel.forks").value
        assert parallel_map(lambda x: x + 1, [41], workers=8) == [42]
        assert metrics.counter("perf.parallel.forks").value == forks_before

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], workers=4) == []


class TestSeedStability:
    def test_same_results_at_every_worker_count(self):
        # Each item carries its own seed; the round-robin partition must
        # never change which seed computes which item.
        def draw(seed):
            return random.Random(seed).random()

        items = list(range(31))
        serial = [draw(i) for i in items]
        for workers in (1, 2, 4, 7):
            assert parallel_map(draw, items, workers=workers) == serial


class TestMetricsMerging:
    def test_worker_counters_fold_into_parent(self):
        c = metrics.counter("test.parallel.increments")
        before = c.value

        def bump(x):
            c.inc()
            return x

        parallel_map(bump, list(range(12)), workers=4)
        assert c.value == before + 12

    def test_merge_can_be_disabled(self):
        c = metrics.counter("test.parallel.unmerged")
        before = c.value

        def bump(x):
            c.inc()
            return x

        parallel_map(bump, list(range(8)), workers=4, merge_metrics=False)
        assert c.value == before


class TestErrors:
    def test_worker_exception_propagates_with_traceback(self):
        def maybe_boom(x):
            if x == 7:
                raise ValueError("boom at seven")
            return x

        with pytest.raises(ParallelWorkerError) as excinfo:
            parallel_map(maybe_boom, list(range(12)), workers=3)
        assert excinfo.value.index == 7
        assert "boom at seven" in str(excinfo.value)

    def test_lowest_failing_index_wins(self):
        def boom_high(x):
            if x >= 5:
                raise RuntimeError(f"fail {x}")
            return x

        with pytest.raises(ParallelWorkerError) as excinfo:
            parallel_map(boom_high, list(range(12)), workers=4)
        assert excinfo.value.index == 5


class TestConfiguration:
    def test_configure_workers_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert default_workers() == 6
        configure_workers(3)
        assert default_workers() == 3
        configure_workers(None)
        assert default_workers() == 6

    def test_invalid_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        assert default_workers() == 1
