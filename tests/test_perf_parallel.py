"""Tests of the ``parallel_map`` determinism contract over backends.

Order preservation, exactness across the pickle boundary, seed-stable
partitioning, boundary metrics merging, lost-chunk fallback without
double-counting, and error propagation with the remote traceback attached.
The contract is backend-independent; these tests exercise it through the
fork transport (the serial and socket transports are covered in
``test_perf_backends.py``, against the same assertions).
"""

import os
import random
from fractions import Fraction

import pytest

from repro.obs import metrics
from repro.perf.parallel import ParallelWorkerError, parallel_map


class TestOrderAndExactness:
    def test_results_in_input_order(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, workers=4) == [x * x for x in items]

    def test_fractions_cross_the_boundary_exactly(self):
        items = [Fraction(1, n) for n in range(1, 17)]
        result = parallel_map(lambda f: f / 3, items, workers=3)
        assert result == [f / 3 for f in items]
        assert all(isinstance(r, Fraction) for r in result)

    def test_single_item_runs_serially(self):
        forks_before = metrics.counter("perf.parallel.forks").value
        assert parallel_map(lambda x: x + 1, [41], workers=8) == [42]
        assert metrics.counter("perf.parallel.forks").value == forks_before

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], workers=4) == []


class TestSeedStability:
    def test_same_results_at_every_worker_count(self):
        # Each item carries its own seed; the round-robin partition must
        # never change which seed computes which item.
        def draw(seed):
            return random.Random(seed).random()

        items = list(range(31))
        serial = [draw(i) for i in items]
        for workers in (1, 2, 4, 7):
            assert parallel_map(draw, items, workers=workers) == serial


class TestMetricsMerging:
    def test_worker_counters_fold_into_parent(self):
        c = metrics.counter("test.parallel.increments")
        before = c.value

        def bump(x):
            c.inc()
            return x

        parallel_map(bump, list(range(12)), workers=4)
        assert c.value == before + 12

    def test_merge_can_be_disabled(self):
        c = metrics.counter("test.parallel.unmerged")
        before = c.value

        def bump(x):
            c.inc()
            return x

        parallel_map(bump, list(range(8)), workers=4, merge_metrics=False)
        assert c.value == before


class TestLostChunkFallback:
    def test_dead_chunk_is_recomputed_without_double_counting(self):
        # One forked chunk dies hard (os._exit — no results, no snapshot).
        # The fallback recomputes exactly that chunk in the parent; because
        # chunk payloads are atomic the dead child's partial counter
        # increments never merge, so every item is counted exactly once.
        c = metrics.counter("test.parallel.fallback_work")
        before = c.value
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        fallbacks_before = fallbacks.value
        parent_pid = os.getpid()

        def work(x):
            c.inc()
            if x == 1 and os.getpid() != parent_pid:
                os._exit(1)  # dies *after* counting: a real double-count risk
            return x * 10

        items = list(range(9))
        # workers=3 puts items {1, 4, 7} alone in chunk 1 (round-robin).
        assert parallel_map(work, items, workers=3) == [x * 10 for x in items]
        assert fallbacks.value == fallbacks_before + 1
        assert c.value == before + len(items)


class TestErrors:
    def test_worker_exception_propagates_with_traceback(self):
        def maybe_boom(x):
            if x == 7:
                raise ValueError("boom at seven")
            return x

        with pytest.raises(ParallelWorkerError) as excinfo:
            parallel_map(maybe_boom, list(range(12)), workers=3)
        assert excinfo.value.index == 7
        assert "boom at seven" in str(excinfo.value)

    def test_lowest_failing_index_wins(self):
        def boom_high(x):
            if x >= 5:
                raise RuntimeError(f"fail {x}")
            return x

        with pytest.raises(ParallelWorkerError) as excinfo:
            parallel_map(boom_high, list(range(12)), workers=4)
        assert excinfo.value.index == 5
