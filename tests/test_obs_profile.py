"""Phase profiling and trace analytics (:mod:`repro.obs.profile` / ``.analyze``).

Covers the profiler's attribution semantics (anchored calls, nesting,
recursion counted once, exclusive-time disjointness), the collapsed-stack
export, lane payloads and ``(pid, lane)`` merging, the disabled-path
contract (no hook installed at all, tracer parity), the ``REPRO_PROFILE``
environment gate, critical-path extraction and straggler detection over
synthetic traces, the ``summary.profile`` schema block, and cross-run
regression attribution (identical reports compare clean; an inflated
phase ranks first).
"""

import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.obs import analyze, profile
from repro.obs.analyze import (
    analyze_events,
    compare_reports,
    critical_path,
    format_analysis,
    format_comparison,
    lane_analysis,
)
from repro.obs.profile import Profiler, merge_lane_phases, save_folded
from repro.obs.report import (
    ReportSchemaError,
    build_report,
    format_summary_table,
    outcome_record,
    profile_summary,
    validate_report,
)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


# -- attribution ------------------------------------------------------------------


def _spin(n=2000):
    acc = 0
    for i in range(n):
        acc += i & 7
    return acc


def _anchored_inner():
    return _spin()


def _anchored_outer():
    _spin()
    return _anchored_inner()


def _anchored_recursive(n):
    _spin(200)
    if n > 1:
        _anchored_recursive(n - 1)


def _test_profiler():
    return Profiler(
        anchors={
            (__name__, "_anchored_outer"): "phase.outer",
            (__name__, "_anchored_inner"): "phase.inner",
            (__name__, "_anchored_recursive"): "phase.rec",
        }
    )


@pytest.fixture
def profiler():
    p = _test_profiler()
    p.enable()
    yield p
    p.disable()


class TestAttribution:
    def test_anchored_call_accounts_calls_and_time(self, profiler):
        _anchored_inner()
        profiler.disable()
        snap = profiler.snapshot()
        inner = snap["phases"]["phase.inner"]
        assert inner["calls"] == 1
        assert inner["inclusive_us"] > 0
        assert 0 < inner["exclusive_us"] <= inner["inclusive_us"]
        assert snap["stacks"].get("phase.inner", 0) > 0

    def test_unanchored_calls_account_nothing(self, profiler):
        _spin()
        profiler.disable()
        assert profiler.snapshot() == {"phases": {}, "stacks": {}}

    def test_nesting_splits_exclusive_from_inclusive(self, profiler):
        _anchored_outer()
        profiler.disable()
        snap = profiler.snapshot()
        outer, inner = snap["phases"]["phase.outer"], snap["phases"]["phase.inner"]
        assert outer["calls"] == 1 and inner["calls"] == 1
        # The inner phase's time is inside the outer's inclusive but
        # outside its exclusive.
        assert outer["exclusive_us"] < outer["inclusive_us"]
        assert inner["inclusive_us"] <= outer["inclusive_us"]
        assert outer["exclusive_us"] + inner["inclusive_us"] == pytest.approx(
            outer["inclusive_us"], rel=0.25
        )
        # Collapsed stacks carry the nesting.
        assert "phase.outer;phase.inner" in snap["stacks"]
        assert "phase.outer" in snap["stacks"]

    def test_recursion_adds_calls_not_inclusive_time(self, profiler):
        _anchored_recursive(5)
        profiler.disable()
        rec = profiler.snapshot()["phases"]["phase.rec"]
        assert rec["calls"] == 5
        # Inclusive is the outermost occurrence only: were recursion
        # double-counted it would be ~5x the exclusive sum (every level
        # spins the same loop), not about equal to it.
        assert rec["inclusive_us"] == pytest.approx(rec["exclusive_us"], rel=0.5)

    def test_semantic_phases_attributed_on_a_real_unfolding(self):
        from fractions import Fraction

        from tests.helpers import coin_automaton
        from repro.semantics.measure import execution_measure
        from repro.semantics.scheduler import ActionSequenceScheduler

        coin = coin_automaton("coin", Fraction(1, 2))
        scheduler = ActionSequenceScheduler(["toss", "head", "tail"])
        profile.clear()
        profile.enable()
        try:
            execution_measure(coin, scheduler)
        finally:
            profile.disable()
        phases = profile.snapshot()["phases"]
        profile.clear()
        assert "measure.unfold" in phases
        assert "scheduler.step" in phases
        assert phases["measure.unfold"]["calls"] >= 1

    def test_registered_phases_cover_the_spec_registry(self):
        registry = profile.registered_phases()
        for phase in (
            "measure.unfold",
            "measure.compose",
            "fragment.decide",
            "scheduler.step",
            "pca.transition",
            "cache.lookup",
            "transport.pickle",
        ):
            assert phase in registry, phase
            assert registry[phase]  # at least one anchor label each

    def test_register_extends_and_reclassifies(self):
        p = _test_profiler()
        p.register("phase.extra", __name__, "_spin")
        p.enable()
        try:
            _spin()
        finally:
            p.disable()
        assert "phase.extra" in p.snapshot()["phases"]


# -- disabled path (tracer parity) -------------------------------------------------


class TestDisabledContract:
    def test_no_hook_installed_when_disabled(self):
        # The strictest disabled contract: not a cheap hook — *no* hook.
        assert not profile.is_enabled()
        assert sys.getprofile() is None

    def test_enable_installs_and_disable_removes_the_hook(self):
        profile.enable()
        try:
            assert sys.getprofile() is not None
            assert profile.is_enabled()
        finally:
            profile.disable()
            profile.clear()
        assert sys.getprofile() is None
        assert not profile.is_enabled()

    def test_disabled_payload_is_none_and_absorb_noop(self):
        assert profile.chunk_profile_payload("lane") is None
        assert profile.absorb_chunk_profile(None) is False
        assert (
            profile.absorb_chunk_profile(
                {"pid": 1, "lane": "w", "phases": {}, "stacks": {}}
            )
            is False
        )

    def test_repro_profile_gates_a_fresh_process(self):
        script = (
            "import sys; from repro.obs import profile; "
            "print('enabled' if profile.is_enabled() else 'disabled', "
            "'hooked' if sys.getprofile() is not None else 'unhooked')"
        )
        for value, expected in (
            ("on", "enabled hooked"),
            ("1", "enabled hooked"),
            ("", "disabled unhooked"),
            ("off", "disabled unhooked"),
        ):
            env = _subprocess_env()
            env["REPRO_PROFILE"] = value
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True, text=True, env=env
            )
            assert out.stdout.strip() == expected, (value, out.stdout)


# -- lanes, payloads, folded export ------------------------------------------------


def _lane_payload(pid=111, lane="worker x", calls=2, inclusive=10.0, exclusive=6.0):
    return {
        "pid": pid,
        "lane": lane,
        "phases": {
            "phase.p": {
                "calls": calls,
                "inclusive_us": inclusive,
                "exclusive_us": exclusive,
            }
        },
        "stacks": {"phase.p": exclusive},
    }


class TestLanes:
    def test_absorb_merges_by_pid_and_lane(self):
        profile.enable()
        try:
            profile.clear()
            assert profile.absorb_chunk_profile(_lane_payload()) is True
            assert profile.absorb_chunk_profile(_lane_payload()) is True
            assert profile.absorb_chunk_profile(_lane_payload(pid=222)) is True
            lanes = profile.lanes(lane="caller")
        finally:
            profile.disable()
            profile.clear()
        assert lanes[0]["lane"] == "caller" and lanes[0]["pid"] == os.getpid()
        absorbed = {(lane["pid"], lane["lane"]): lane for lane in lanes[1:]}
        assert set(absorbed) == {(111, "worker x"), (222, "worker x")}
        merged = absorbed[(111, "worker x")]["phases"]["phase.p"]
        assert merged["calls"] == 4  # two chunks, one lane
        assert merged["inclusive_us"] == pytest.approx(20.0)
        assert absorbed[(111, "worker x")]["stacks"]["phase.p"] == pytest.approx(12.0)

    def test_merge_lane_phases_is_addition(self):
        into = {"a": {"calls": 1, "inclusive_us": 2.0, "exclusive_us": 1.0}}
        merge_lane_phases(into, {"a": {"calls": 2, "inclusive_us": 3.0, "exclusive_us": 1.5},
                                 "b": {"calls": 1, "inclusive_us": 1.0, "exclusive_us": 1.0}})
        assert into["a"] == {"calls": 3, "inclusive_us": 5.0, "exclusive_us": 2.5}
        assert "b" in into

    def test_save_folded_writes_collapsed_stacks(self, tmp_path):
        out = tmp_path / "nested" / "profile.folded"
        save_folded(
            out,
            [
                {
                    "pid": 7,
                    "lane": "experiment",
                    "stacks": {"a;b": 1500.4, "a": 2.6, "zero": 0.0},
                }
            ],
        )
        lines = out.read_text().splitlines()
        assert "experiment (pid 7);a;b 1500" in lines
        assert "experiment (pid 7);a 3" in lines
        # Zero-weight stacks are dropped (flamegraph.pl chokes on them).
        assert not any(line.endswith(" 0") for line in lines)

    def test_format_lanes_ranks_phases(self):
        text = profile.format_lanes([_lane_payload()])
        assert "worker x (pid 111)" in text and "phase.p" in text


# -- critical path and stragglers --------------------------------------------------


def _span(name, ts, dur, pid=1, tid=1, depth=0):
    return {"name": name, "ph": "X", "cat": "repro", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": {"depth": depth}}


class TestCriticalPath:
    def test_empty_trace_has_no_path(self):
        assert critical_path([]) == {"wall_us": 0.0, "steps": []}

    def test_descends_into_the_blocking_child(self):
        events = [
            _span("experiment", 0.0, 100.0, depth=0),
            _span("early", 0.0, 30.0, depth=1),
            _span("blocking", 40.0, 55.0, depth=1),  # finishes last
            _span("grandchild", 42.0, 10.0, depth=2),
        ]
        path = critical_path(events)
        assert [s["name"] for s in path["steps"]] == [
            "experiment", "blocking", "grandchild",
        ]
        assert path["wall_us"] == pytest.approx(100.0)

    def test_crosses_lanes_with_slack(self):
        events = [
            _span("parallel.map", 0.0, 100.0, pid=1, depth=0),
            # The worker's outermost chunk span sits in a foreign lane,
            # aligned to within one reply latency.
            _span("backend.chunk", 10.0, 85.0, pid=2, depth=0),
            _span("backend.item", 12.0, 40.0, pid=2, depth=1),
        ]
        path = critical_path(events, slack_us=50.0)
        assert [s["name"] for s in path["steps"]] == [
            "parallel.map", "backend.chunk", "backend.item",
        ]
        assert [s["pid"] for s in path["steps"]] == [1, 2, 2]

    def test_malformed_traces_cannot_loop(self):
        # Two identical spans that would each pick the other forever.
        events = [
            _span("a", 0.0, 10.0, depth=0),
            _span("b", 0.0, 10.0, pid=2, depth=0),
        ]
        path = critical_path(events, slack_us=1000.0)
        assert len(path["steps"]) <= 2


class TestLaneAnalysis:
    def test_straggler_skew_and_idle_gaps(self):
        events = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
             "args": {"name": "worker a"}},
            _span("backend.chunk", 0.0, 10.0, pid=1),
            _span("backend.chunk", 20.0, 10.0, pid=1),   # 10us idle gap
            _span("backend.chunk", 30.0, 50.0, pid=1),   # the straggling chunk
            _span("backend.chunk", 0.0, 10.0, pid=2),
            _span("backend.chunk", 10.0, 10.0, pid=2),
        ]
        lanes = {lane["pid"]: lane for lane in lane_analysis(events)}
        straggler = lanes[1]
        assert straggler["name"] == "worker a"
        assert straggler["chunks"] == 3
        assert straggler["skew"] == pytest.approx(5.0)  # 50 / median 10
        assert straggler["straggler"] is True
        assert straggler["idle_gaps"]["count"] == 1
        assert straggler["idle_gaps"]["total_us"] == pytest.approx(10.0)
        assert straggler["utilization"] == pytest.approx(70.0 / 80.0)
        even = lanes[2]
        assert even["skew"] == pytest.approx(1.0)
        assert even["straggler"] is False
        assert even["utilization"] == pytest.approx(1.0)

    def test_single_chunk_lane_is_never_a_straggler(self):
        lanes = lane_analysis([_span("backend.chunk", 0.0, 99.0, pid=1)])
        assert lanes[0]["straggler"] is False

    def test_analyze_events_and_formatting(self):
        events = [
            _span("parallel.map", 0.0, 100.0, pid=1, depth=0),
            _span("backend.chunk", 0.0, 10.0, pid=2),
            _span("backend.chunk", 10.0, 10.0, pid=2),
            _span("backend.chunk", 20.0, 78.0, pid=2),
        ]
        analysis = analyze_events(events, slack_us=50.0)
        assert analysis["critical_path"]["steps"]
        assert analysis["stragglers"] and analysis["stragglers"][0]["pid"] == 2
        text = format_analysis(analysis)
        assert "critical path" in text and "straggler" in text


# -- summary.profile schema --------------------------------------------------------


def _outcome(**overrides):
    base = dict(
        experiment="E1",
        status="pass",
        ok=True,
        elapsed=0.25,
        attempts=1,
        seed=None,
        report=SimpleNamespace(table="col a\n1"),
        error=None,
        metrics={"counters": {"scheduler.steps": 42}, "gauges": {}, "histograms": {}},
        peak_rss_bytes=48 * 1024 * 1024,
        trace_path=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def _profile_block(inclusive=1000.0, folded=None):
    return profile_summary(
        [
            {
                "pid": 1,
                "lane": "experiment",
                "phases": {
                    "measure.unfold": {
                        "calls": 10,
                        "inclusive_us": inclusive,
                        "exclusive_us": inclusive * 0.8,
                    }
                },
            }
        ],
        enabled=True,
        folded_files=folded,
    )


class TestProfileReportBlock:
    def test_profile_block_round_trips_and_renders(self):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)],
            fast=True,
            profile=_profile_block(folded=["profiles/E1.folded"]),
        )
        restored = json.loads(json.dumps(payload))
        validate_report(restored)
        block = restored["summary"]["profile"]
        assert block["enabled"] is True
        assert block["lanes"][0]["phases"]["measure.unfold"]["calls"] == 10
        assert block["folded_files"] == ["profiles/E1.folded"]
        assert "profile:" in format_summary_table(restored)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b.update(enabled="yes"),
            lambda b: b.update(lanes="not-a-list"),
            lambda b: b["lanes"][0].update(pid="one"),
            lambda b: b["lanes"][0]["phases"]["measure.unfold"].update(calls=-1),
            lambda b: b["lanes"][0]["phases"]["measure.unfold"].pop("inclusive_us"),
        ],
    )
    def test_validation_rejects_bad_profile_block(self, mutate):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)],
            fast=True,
            profile=_profile_block(),
        )
        corrupted = json.loads(json.dumps(payload))
        mutate(corrupted["summary"]["profile"])
        with pytest.raises(ReportSchemaError):
            validate_report(corrupted)

    def test_report_without_profile_has_no_block(self):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        assert "profile" not in payload["summary"]
        validate_report(payload)


# -- cross-run comparison ----------------------------------------------------------


def _mini_report(profile_inclusive=1000.0, steps=42, elapsed=1.0):
    return {
        "schema": "repro.obs.run-report/4",
        "summary": {
            "wall_time_s": 10.0,
            "profile": {
                "enabled": True,
                "lanes": [
                    {
                        "pid": 1,
                        "lane": "experiment",
                        "phases": {
                            "measure.unfold": {
                                "calls": 10,
                                "inclusive_us": profile_inclusive,
                                "exclusive_us": profile_inclusive * 0.8,
                            }
                        },
                    }
                ],
            },
        },
        "experiments": [
            {
                "experiment": "E1",
                "elapsed_s": elapsed,
                "peak_rss_bytes": 1000,
                "counters": {"scheduler.steps": steps},
                "histograms": {
                    "h": {"p50": 1, "p90": 2, "p99": 3, "mean": 1.5, "max": 3}
                },
            }
        ],
    }


class TestCompareReports:
    def test_identical_reports_have_zero_regressions(self):
        report = _mini_report()
        comparison = compare_reports(report, json.loads(json.dumps(report)))
        assert comparison["regressions"] == []
        assert comparison["improvements"] == []
        assert all(row["delta"] == 0 for row in comparison["rows"])
        assert "no changes beyond the threshold" in format_comparison(comparison)

    def test_inflated_phase_ranks_first(self):
        a = _mini_report()
        # Inflate one phase 10x; nudge elapsed by 1% (below the threshold).
        b = _mini_report(profile_inclusive=10_000.0, elapsed=1.01)
        comparison = compare_reports(a, b, threshold=0.05)
        top = comparison["rows"][0]
        assert top["metric"].startswith("phase.measure.unfold.")
        assert top["pct"] == pytest.approx(9.0)
        regressed = {row["metric"] for row in comparison["regressions"]}
        assert "phase.measure.unfold.inclusive_us" in regressed
        assert "E1.elapsed_s" not in regressed  # within threshold
        table = format_comparison(comparison)
        assert table.count("phase.measure.unfold") >= 1

    def test_appearing_metric_ranks_above_finite_changes(self):
        a = _mini_report()
        b = _mini_report(profile_inclusive=2000.0)
        b["experiments"][0]["counters"]["brand.new"] = 5
        comparison = compare_reports(a, b)
        assert comparison["rows"][0]["metric"] == "E1.counter.brand.new"
        assert comparison["rows"][0]["pct"] is None
        assert comparison["rows"][0] in comparison["regressions"]

    def test_histogram_stats_compared_including_p99_and_mean(self):
        a = _mini_report()
        b = _mini_report()
        b["experiments"][0]["histograms"]["h"]["p99"] = 30
        b["experiments"][0]["histograms"]["h"]["mean"] = 15.0
        comparison = compare_reports(a, b)
        regressed = {row["metric"] for row in comparison["regressions"]}
        assert {"E1.hist.h.p99", "E1.hist.h.mean"} <= regressed

    def test_cli_compare_validates_and_gates(self, tmp_path, capsys):
        good = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(good))
        worse = json.loads(json.dumps(good))
        worse["experiments"][0]["counters"]["scheduler.steps"] *= 10
        b.write_text(json.dumps(worse))

        assert analyze.main_compare([str(a), str(a)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        # Regressions are a non-blocking signal by default...
        assert analyze.main_compare([str(a), str(b)]) == 0
        assert "scheduler.steps" in capsys.readouterr().out
        # ...and a gate on request.
        assert analyze.main_compare([str(a), str(b), "--fail-on-regression"]) == 1
        capsys.readouterr()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert analyze.main_compare([str(a), str(bad)]) == 1
        assert "invalid report" in capsys.readouterr().out

    def test_cli_analyze_prints_critical_path(self, tmp_path, capsys):
        events = [
            _span("parallel.map", 0.0, 100.0, pid=1, depth=0),
            _span("backend.chunk", 5.0, 90.0, pid=2),
        ]
        source = tmp_path / "one.trace.json"
        source.write_text(json.dumps({"traceEvents": events}))
        assert analyze.main_analyze([str(source)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "parallel.map" in out
