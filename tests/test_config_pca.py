"""Tests for probabilistic configuration automata (Defs 2.16, 2.17, 2.19)."""

from fractions import Fraction

import pytest

from repro.config.configuration import Configuration
from repro.config.pca import CanonicalPCA, ComposedPCA, compose_pca, hide_pca
from repro.config.validate import PcaError, validate_pca
from repro.core.psioa import PsioaError, TablePSIOA, reachable_states, validate_psioa
from repro.core.signature import Signature
from repro.probability.measures import dirac

from tests.helpers import coin_automaton, fair_coin, listener, ticker


def tagged_coin(i, p=Fraction(1, 2)):
    return coin_automaton(
        ("coin", i), p, toss=("toss", i), head=("head", i), tail=("tail", i)
    )


def spawner(name="mgr", count=2, prefix="spawn"):
    """Emits (prefix, i) for i < count, then idles on input ('poke', name)."""
    signatures = {}
    transitions = {}
    for i in range(count):
        signatures[i] = Signature(outputs={(prefix, i)})
        transitions[(i, (prefix, i))] = dirac(i + 1)
    signatures[count] = Signature(inputs={("poke", name)})
    transitions[(count, ("poke", name))] = dirac(count)
    return TablePSIOA(name, 0, signatures, transitions)


def spawning_pca(name="dyn", count=2, p=Fraction(1, 2)):
    """A PCA whose manager dynamically creates `count` coins at run time."""
    mgr = spawner("mgr", count)

    def created(config, action):
        if isinstance(action, tuple) and action[0] == "spawn":
            return [tagged_coin(action[1], p)]
        return []

    return CanonicalPCA(name, [mgr], created=created)


class TestCanonicalPca:
    def test_start_is_reduced_initial_configuration(self):
        pca = spawning_pca()
        assert isinstance(pca.start, Configuration)
        assert pca.start.ids() == {"mgr"}

    def test_constraint1_violation_rejected(self):
        coin = fair_coin()
        shifted = Configuration([(coin, "qH")])
        with pytest.raises(PsioaError, match="start preservation"):
            CanonicalPCA("bad", shifted)

    def test_creation_on_spawn(self):
        pca = spawning_pca(count=1)
        eta = pca.transition(pca.start, ("spawn", 0))
        (state,) = eta.support()
        assert state.ids() == {"mgr", ("coin", 0)}
        assert state.state_of(("coin", 0)) == "q0"

    def test_destruction_by_empty_signature(self):
        pca = spawning_pca(count=1, p=1)
        after_spawn = next(iter(pca.transition(pca.start, ("spawn", 0)).support()))
        after_toss = next(iter(pca.transition(after_spawn, ("toss", 0)).support()))
        assert after_toss.state_of(("coin", 0)) == "qH"
        after_head = next(iter(pca.transition(after_toss, ("head", 0)).support()))
        # The coin hit its empty-signature state and was destroyed.
        assert after_head.ids() == {"mgr"}

    def test_full_dynamics_reachable(self):
        pca = spawning_pca(count=2)
        states = reachable_states(pca)
        sizes = {len(s) for s in states}
        assert 1 in sizes  # manager alone (before spawns / after destruction)
        assert 3 in sizes  # manager + two live coins

    def test_pca_is_valid_psioa(self):
        validate_psioa(spawning_pca(count=2))

    def test_pca_satisfies_definition_216(self):
        validate_pca(spawning_pca(count=2))

    def test_probabilistic_branching_inside_pca(self):
        pca = spawning_pca(count=1)
        after_spawn = next(iter(pca.transition(pca.start, ("spawn", 0)).support()))
        eta = pca.transition(after_spawn, ("toss", 0))
        assert len(eta.support()) == 2
        for outcome, weight in eta.items():
            assert weight == Fraction(1, 2)

    def test_created_mapping_exposed(self):
        pca = spawning_pca(count=1)
        created = pca.created(pca.start, ("spawn", 0))
        assert [a.name for a in created] == [("coin", 0)]
        assert pca.created(pca.start, "unrelated") == ()

    def test_as_psioa_identity(self):
        pca = spawning_pca()
        assert pca.as_psioa is pca


class TestHiddenPca:
    def test_hiding_moves_outputs(self):
        pca = spawning_pca(count=1)
        hidden = hide_pca(pca, lambda q: {("spawn", 0)})
        sig = hidden.signature(hidden.start)
        assert ("spawn", 0) in sig.internals
        assert ("spawn", 0) in hidden.hidden_actions(hidden.start)

    def test_hidden_pca_still_satisfies_constraints(self):
        pca = spawning_pca(count=2)
        hidden = hide_pca(pca, lambda q: {a for a in pca.signature(q).outputs})
        validate_pca(hidden)

    def test_config_and_created_delegate(self):
        pca = spawning_pca(count=1)
        hidden = hide_pca(pca, lambda q: set())
        assert hidden.config(hidden.start) == pca.config(pca.start)
        assert hidden.created(hidden.start, ("spawn", 0)) == pca.created(pca.start, ("spawn", 0))

    def test_transition_unchanged(self):
        pca = spawning_pca(count=1)
        hidden = hide_pca(pca, lambda q: {("spawn", 0)})
        assert hidden.transition(hidden.start, ("spawn", 0)) == pca.transition(
            pca.start, ("spawn", 0)
        )


class TestComposedPca:
    def make_pair(self):
        left = spawning_pca("left", count=1)
        # Right PCA spawns a *different* coin id via a distinct manager name.
        mgr = spawner("mgr2", 1, prefix="spawn2")

        def created(config, action):
            if isinstance(action, tuple) and action[0] == "spawn2":
                return [tagged_coin(100 + action[1])]
            return []

        right = CanonicalPCA("right", [mgr], created=created)
        return left, right

    def test_composition_is_pca(self):
        left, right = self.make_pair()
        both = compose_pca(left, right)
        assert isinstance(both, ComposedPCA)
        config = both.config(both.start)
        assert config.ids() == {"mgr", "mgr2"}

    def test_config_union(self):
        left, right = self.make_pair()
        both = compose_pca(left, right)
        eta = both.transition(both.start, ("spawn", 0))
        (state,) = eta.support()
        assert both.config(state).ids() == {"mgr", ("coin", 0), "mgr2"}

    def test_created_union_with_convention(self):
        left, right = self.make_pair()
        both = compose_pca(left, right)
        # ('spawn', 0) is only in the left component's signature.
        created = both.created(both.start, ("spawn", 0))
        assert [a.name for a in created] == [("coin", 0)]

    def test_composed_pca_satisfies_constraints(self):
        left, right = self.make_pair()
        validate_pca(compose_pca(left, right))

    def test_composed_pca_valid_psioa(self):
        left, right = self.make_pair()
        validate_psioa(compose_pca(left, right))

    def test_non_pca_component_rejected(self):
        with pytest.raises(PsioaError):
            ComposedPCA([spawning_pca(), fair_coin()])  # type: ignore[list-item]

    def test_hidden_actions_union(self):
        left, right = self.make_pair()
        hidden_left = hide_pca(left, lambda q: {("spawn", 0)})
        both = compose_pca(hidden_left, right)
        assert ("spawn", 0) in both.hidden_actions(both.start)


class TestValidatorCatchesBrokenPca:
    def test_wrong_transition_detected(self):
        """A hand-built PCA whose psioa diverges from the intrinsic transition."""
        coin = fair_coin()

        class BrokenPCA(CanonicalPCA):
            def _pca_transition(self, state, action):
                # Deliberately wrong: deterministic where the configuration
                # branches probabilistically.
                eta = super()._pca_transition(state, action)
                if len(eta.support()) > 1:
                    return dirac(sorted(eta.support(), key=repr)[0])
                return eta

        broken = BrokenPCA.__new__(BrokenPCA)
        CanonicalPCA.__init__(broken, "broken", [coin])
        with pytest.raises(PcaError, match="top/down"):
            validate_pca(broken)

    def test_wrong_hidden_actions_detected(self):
        coin = fair_coin()

        class BadHiding(CanonicalPCA):
            def hidden_actions(self, state):
                return frozenset({"not-an-output"})

        bad = BadHiding.__new__(BadHiding)
        CanonicalPCA.__init__(bad, "bad", [coin])
        with pytest.raises(PcaError, match="constraint 4"):
            validate_pca(bad)
