"""Monte-Carlo cross-validation of the exact engine on the flagship
workloads.

The exact unfolding and the sampling path share only the automaton and
scheduler definitions, so agreement within Hoeffding bounds is strong
evidence against systematic bugs in either.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    crosscheck_f_dist,
    empirical_f_dist,
    hoeffding_radius,
    sample_execution,
)
from repro.core.composition import compose
from repro.probability.measures import total_variation
from repro.secure.emulation import hidden_world
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.systems.channels import (
    channel_environment,
    channel_schema,
    channel_simulator,
    guessing_adversary,
    ideal_channel,
    real_channel,
)
from repro.systems.consensus import consensus_environment
from repro.systems.consensus_compositional import consensus_pair, consensus_pair_schema


class TestChannelCrosscheck:
    @pytest.mark.parametrize("k", [None, 2])
    def test_real_world_accept_probability(self, k):
        env = channel_environment(1)
        system = hidden_world(real_channel(("r", k), k), guessing_adversary())
        world = compose(env, system)
        scheduler = next(iter(channel_schema()(world, 8)))
        exact = f_dist(accept_insight(), env, system, scheduler, world=world)

        def value_of(execution):
            return accept_insight()(env, world, execution)

        assert crosscheck_f_dist(world, scheduler, value_of, exact, samples=3000, seed=5)

    def test_ideal_world_with_simulator(self):
        env = channel_environment(0)
        sim = channel_simulator(guessing_adversary())
        system = hidden_world(ideal_channel(), sim)
        world = compose(env, system)
        scheduler = next(iter(channel_schema()(world, 10)))
        exact = f_dist(accept_insight(), env, system, scheduler, world=world)

        def value_of(execution):
            return accept_insight()(env, world, execution)

        assert crosscheck_f_dist(world, scheduler, value_of, exact, samples=3000, seed=6)


class TestConsensusCrosscheck:
    def test_violation_probability_sampled(self):
        env = consensus_environment(0, 1)
        system = consensus_pair(2)
        world = compose(env, system)
        scheduler = next(iter(consensus_pair_schema()(world, 40)))
        exact = f_dist(accept_insight(), env, system, scheduler, world=world)
        assert exact(1) == Fraction(1, 4)

        rng = np.random.default_rng(7)
        hits = 0
        samples = 2000
        for _ in range(samples):
            execution = sample_execution(world, scheduler, rng)
            hits += accept_insight()(env, world, execution)
        assert abs(hits / samples - 0.25) <= hoeffding_radius(samples)


class TestSampledTraceDistribution:
    def test_empirical_trace_distribution_converges(self):
        from repro.systems.coin import coin, coin_observer
        from repro.semantics.scheduler import ActionSequenceScheduler

        env = coin_observer()
        biased = coin("b", Fraction(2, 3))
        world = compose(env, biased)
        scheduler = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        exact = execution_measure(world, scheduler).map(
            lambda e: e.trace(world.signature)
        )
        rng = np.random.default_rng(8)
        empirical = empirical_f_dist(
            world,
            scheduler,
            lambda e: e.trace(world.signature),
            samples=4000,
            rng=rng,
        )
        radius = hoeffding_radius(4000, support=max(len(exact), 2))
        assert float(total_variation(exact, empirical)) <= radius
