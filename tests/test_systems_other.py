"""Tests for the commitment, consensus, ledger and factory workloads."""

from fractions import Fraction

import numpy as np
import pytest

from repro.config.validate import validate_pca
from repro.core.composition import compose
from repro.core.psioa import reachable_states, validate_psioa
from repro.secure.adversary import is_adversary
from repro.secure.emulation import emulation_distance_profile, hidden_world
from repro.secure.implementation import (
    family_implementation_profile,
    neg_pt_implements,
)
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.schema import SchedulerSchema
from repro.semantics.scheduler import PriorityScheduler
from repro.systems.coin import (
    amplified_coin_family,
    coin,
    coin_observer,
    fair_coin_family,
    structured_coin,
    xor_bias,
)
from repro.systems.commitment import (
    commitment_emulation_instance,
    commitment_environment,
    commitment_simulator,
    ideal_commitment,
    real_commitment,
)
from repro.systems.consensus import (
    consensus_environment,
    ideal_consensus,
    ideal_consensus_family,
    real_consensus,
    real_consensus_family,
)
from repro.systems.factory import random_psioa, random_structured
from repro.systems.ledger import ledger_client, ledger_manager_pca, spawning_pca

INSIGHT = accept_insight()


def kind_schema(kinds, plain=()):
    """Priority schedulers over tuple-action kinds plus plain actions."""

    def is_kind(k):
        return lambda a: isinstance(a, tuple) and len(a) >= 1 and a[0] == k

    predicates = [is_kind(k) for k in kinds] + [lambda a, p=p: a == p for p in plain]

    def members(automaton, bound):
        yield PriorityScheduler(predicates, bound, name=("prio",) + tuple(kinds))

    return SchedulerSchema("kind-priority", members)


class TestCoin:
    def test_xor_bias_geometric(self):
        assert xor_bias(1) == Fraction(1, 4)
        assert xor_bias(2) == Fraction(1, 8)
        assert xor_bias(5) == Fraction(1, 64)

    def test_families_validate(self):
        validate_psioa(fair_coin_family()[3])
        validate_psioa(amplified_coin_family()[3])

    def test_structured_coin_split(self):
        sc = structured_coin("c", Fraction(1, 2))
        assert sc.global_aact() == {"toss"}

    def test_observer_validates(self):
        validate_psioa(coin_observer())


class TestCommitment:
    ENVS = [commitment_environment(0), commitment_environment(1)]
    SCHEMA = kind_schema(["commit", "posted", "post", "guess", "open", "reveal"], plain=["acc"])
    Q = 10

    def test_automata_validate(self):
        validate_psioa(real_commitment())
        validate_psioa(real_commitment("r", 3))
        validate_psioa(ideal_commitment())

    def test_action_split(self):
        real = real_commitment()
        assert real.global_aact() == {("post", 0), ("post", 1)}
        ideal = ideal_commitment()
        assert ideal.global_aact() == {("posted",)}

    def test_simulator_is_adversary_for_ideal(self):
        from tests.helpers import listener

        adv = listener("Adv", {("post", 0), ("post", 1)})
        sim = commitment_simulator(adv)
        assert is_adversary(sim, ideal_commitment())

    def test_emulation_profile_decays(self):
        from repro.core.psioa import TablePSIOA
        from repro.core.signature import Signature
        from repro.probability.measures import dirac

        # Adversary guessing the committed bit from the masked post.
        posts = {("post", 0), ("post", 1)}
        signatures = {"wait": Signature(inputs=posts)}
        transitions = {}
        for c in (0, 1):
            transitions[("wait", ("post", c))] = dirac(("heard", c))
            signatures[("heard", c)] = Signature(inputs=posts, outputs={("guess", c)})
            for c2 in (0, 1):
                transitions[(("heard", c), ("post", c2))] = dirac(("heard", c))
            transitions[(("heard", c), ("guess", c))] = dirac("told")
        signatures["told"] = Signature(inputs=posts)
        for c in (0, 1):
            transitions[("told", ("post", c))] = dirac("told")
        adv = TablePSIOA("Adv", "wait", signatures, transitions)

        instance = commitment_emulation_instance(leaky=True)
        profile = emulation_distance_profile(
            instance,
            lambda k: adv,
            schema=self.SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: self.ENVS,
            q1=lambda k: self.Q,
            q2=lambda k: self.Q,
            ks=range(1, 5),
        )
        for k, v in profile:
            assert v == pytest.approx(float(Fraction(1, 2 ** (k + 1))))
        assert neg_pt_implements(profile)


class TestConsensus:
    SCHEMA = kind_schema(["propose", "decide"], plain=["acc"])
    Q = 8

    def test_automata_validate(self):
        validate_psioa(real_consensus("r", 2))
        validate_psioa(ideal_consensus())

    def test_agreement_on_common_proposal(self):
        env = consensus_environment(1, 1)
        world_sys = real_consensus("r", 1)
        sched = next(iter(self.SCHEMA(compose(env, world_sys), self.Q)))
        dist = f_dist(INSIGHT, env, world_sys, sched)
        assert dist(1) == 0  # no safety violation when proposals agree

    def test_disagreement_probability_exact(self):
        env = consensus_environment(0, 1)
        for k in (1, 2, 3):
            world_sys = real_consensus(("r", k), k)
            sched = next(iter(self.SCHEMA(compose(env, world_sys), self.Q)))
            dist = f_dist(INSIGHT, env, world_sys, sched)
            assert dist(1) == Fraction(1, 2 ** k)

    def test_ideal_never_violates_safety(self):
        for v1 in (0, 1):
            for v2 in (0, 1):
                env = consensus_environment(v1, v2)
                world_sys = ideal_consensus()
                sched = next(iter(self.SCHEMA(compose(env, world_sys), self.Q)))
                dist = f_dist(INSIGHT, env, world_sys, sched)
                assert dist(1) == 0

    def test_implementation_profile_negligible(self):
        envs = [consensus_environment(v1, v2) for v1 in (0, 1) for v2 in (0, 1)]
        profile = family_implementation_profile(
            real_consensus_family(),
            ideal_consensus_family(),
            schema=self.SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: envs,
            q1=lambda k: self.Q,
            q2=lambda k: self.Q,
            ks=range(1, 5),
        )
        for k, v in profile:
            assert v == pytest.approx(2.0 ** -k)
        assert neg_pt_implements(profile)


class TestLedger:
    def test_client_lifecycle(self):
        client = ledger_client(7)
        validate_psioa(client)
        assert client.signature("gone").is_empty

    def test_ledger_pca_validates(self):
        pca = ledger_manager_pca(2)
        validate_pca(pca)

    def test_clients_created_and_destroyed(self):
        pca = ledger_manager_pca(1)
        states = reachable_states(pca)
        sizes = {frozenset(s.ids()) for s in states}
        assert frozenset({("ledger", "mgr")}) in sizes  # before join / after ack
        assert frozenset({("ledger", "mgr"), ("client", 0)}) in sizes

    def test_full_transaction_flow(self):
        pca = ledger_manager_pca(1)
        sched = PriorityScheduler(
            [
                lambda a: isinstance(a, tuple) and a[0] == "join",
                lambda a: isinstance(a, tuple) and a[0] == "tx",
                lambda a: isinstance(a, tuple) and a[0] == "ack",
            ],
            6,
        )
        from repro.semantics.measure import execution_measure

        measure = execution_measure(pca, sched)
        (execution,) = measure.support()
        assert [a[0] for a in execution.actions] == ["join", "tx", "ack"]
        # After the ack the client destroyed itself.
        assert execution.lstate.ids() == {("ledger", "mgr")}

    def test_spawning_pca(self):
        pca = spawning_pca(lambda: coin(("child",), Fraction(1, 2)))
        validate_pca(pca)
        eta = pca.transition(pca.start, "spawn")
        (state,) = eta.support()
        assert ("child",) in state.ids()


class TestFactory:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_random_psioa_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        automaton = random_psioa(("rand", seed), rng, n_states=5, n_actions=4)
        validate_psioa(automaton, states=range(5))

    def test_reproducible(self):
        a = random_psioa("r", np.random.default_rng(42))
        b = random_psioa("r", np.random.default_rng(42))
        assert a.signatures == b.signatures
        assert a.transitions == b.transitions

    def test_random_structured_split_is_external(self):
        rng = np.random.default_rng(7)
        structured = random_structured(("rs",), rng, n_states=5, n_actions=4)
        for state in range(5):
            assert structured.eact(state) <= structured.signature(state).external

    def test_scaling_parameters(self):
        rng = np.random.default_rng(3)
        big = random_psioa("big", rng, n_states=20, n_actions=8, branching=3)
        assert len(big.states) == 20
