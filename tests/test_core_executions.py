"""Tests for execution fragments and traces (paper Definition 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executions import Fragment, concat, cone_prefixes
from repro.core.signature import Signature

from tests.helpers import fair_coin, ticker


def frag(*parts):
    """Build a fragment from alternating states/actions: frag(q0, a1, q1, ...)."""
    states = tuple(parts[0::2])
    actions = tuple(parts[1::2])
    return Fragment(states, actions)


@st.composite
def fragments(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    states = tuple(draw(st.integers(0, 5)) for _ in range(n + 1))
    actions = tuple(draw(st.sampled_from("abc")) for _ in range(n))
    return Fragment(states, actions)


class TestFragmentShape:
    def test_initial_fragment(self):
        alpha = Fragment.initial("q0")
        assert alpha.fstate == "q0"
        assert alpha.lstate == "q0"
        assert len(alpha) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Fragment(("q0", "q1"), ())

    def test_extend(self):
        alpha = Fragment.initial("q0").extend("a", "q1").extend("b", "q2")
        assert alpha.states == ("q0", "q1", "q2")
        assert alpha.actions == ("a", "b")
        assert alpha.lstate == "q2"
        assert len(alpha) == 2

    def test_steps(self):
        alpha = frag("q0", "a", "q1", "b", "q2")
        assert list(alpha.steps()) == [("q0", "a", "q1"), ("q1", "b", "q2")]

    def test_hashable(self):
        assert len({frag("q0", "a", "q1"), frag("q0", "a", "q1")}) == 1


class TestConcat:
    def test_matching_endpoint(self):
        left = frag("q0", "a", "q1")
        right = frag("q1", "b", "q2")
        assert concat(left, right) == frag("q0", "a", "q1", "b", "q2")

    def test_mismatched_endpoint_undefined(self):
        with pytest.raises(ValueError):
            concat(frag("q0", "a", "q1"), frag("q9", "b", "q2"))

    def test_identity_elements(self):
        alpha = frag("q0", "a", "q1")
        assert concat(Fragment.initial("q0"), alpha) == alpha
        assert concat(alpha, Fragment.initial("q1")) == alpha

    @given(fragments(), fragments(), fragments())
    @settings(max_examples=40, deadline=None)
    def test_associative_when_defined(self, a, b, c):
        if a.lstate == b.fstate and b.lstate == c.fstate:
            assert concat(concat(a, b), c) == concat(a, concat(b, c))


class TestPrefix:
    def test_proper_prefix(self):
        alpha = frag("q0", "a", "q1")
        beta = frag("q0", "a", "q1", "b", "q2")
        assert alpha < beta
        assert alpha <= beta
        assert not beta <= alpha

    def test_prefix_reflexive_not_proper(self):
        alpha = frag("q0", "a", "q1")
        assert alpha <= alpha
        assert not alpha < alpha

    def test_divergent_fragments_not_prefixes(self):
        assert not frag("q0", "a", "q1") <= frag("q0", "b", "q1", "c", "q2")

    @given(fragments())
    @settings(max_examples=40, deadline=None)
    def test_cone_prefixes_are_all_prefixes(self, alpha):
        prefixes = cone_prefixes(alpha)
        assert len(prefixes) == len(alpha) + 1
        for p in prefixes:
            assert p <= alpha
        assert prefixes[-1] == alpha
        assert prefixes[0] == Fragment.initial(alpha.fstate)

    @given(fragments(), fragments())
    @settings(max_examples=60, deadline=None)
    def test_prefix_antisymmetry(self, a, b):
        if a <= b and b <= a:
            assert a == b


class TestAgainstAutomata:
    def test_valid_execution_of_coin(self):
        coin = fair_coin()
        alpha = frag("q0", "toss", "qH", "head", "qF")
        assert alpha.is_fragment_of(coin)
        assert alpha.is_execution_of(coin)

    def test_fragment_not_from_start_is_not_execution(self):
        coin = fair_coin()
        alpha = frag("qH", "head", "qF")
        assert alpha.is_fragment_of(coin)
        assert not alpha.is_execution_of(coin)

    def test_invalid_step_rejected(self):
        coin = fair_coin()
        assert not frag("q0", "head", "qF").is_fragment_of(coin)

    def test_impossible_target_rejected(self):
        coin = fair_coin()
        assert not frag("q0", "toss", "qF").is_fragment_of(coin)

    def test_trace_filters_internal_actions(self):
        # Build a signature map where 'b' is internal at q1.
        def signature_of(state):
            if state == "q1":
                return Signature(internals={"b"})
            return Signature(outputs={"a", "b"})

        alpha = frag("q0", "a", "q1", "b", "q2")
        assert alpha.trace(signature_of) == ("a",)

    def test_trace_of_ticker(self):
        t = ticker("t", 3)
        alpha = frag(0, "tick", 1, "tick", 2, "tick", 3)
        assert alpha.trace(t.signature) == ("tick", "tick", "tick")
