"""Property-based invariants over randomly generated automata.

These tests pin down the semantic laws the framework relies on, using the
seeded factory so hypothesis explores genuinely different automata:

* the execution measure is a probability measure (mass exactly 1) for any
  bounded scheduler;
* cone probabilities agree with the unfolded measure;
* composition is commutative up to the positional state isomorphism;
* hiding commutes with composition at the signature level;
* renaming is invertible and preserves the execution measure through the
  action bijection;
* intrinsic transitions conserve mass and produce reduced configurations.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.configuration import Configuration
from repro.config.transitions import intrinsic_transition
from repro.core.composition import compose
from repro.core.executions import Fragment
from repro.core.psioa import reachable_states, validate_psioa
from repro.core.renaming import rename_psioa
from repro.core.signature import compose_signatures, hide_signature, signatures_compatible
from repro.probability.measures import total_variation
from repro.semantics.measure import cone_probability, execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler, DeterministicScheduler, bound_scheduler
from repro.systems.factory import random_psioa

from tests.helpers import fair_coin, ticker

SEEDS = st.integers(min_value=0, max_value=10_000)


def make(seed, name="X", **kw):
    rng = np.random.default_rng(seed)
    return random_psioa((name, seed), rng, **kw)


class TestExecutionMeasureLaws:
    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_mass_exactly_one_under_bounded_greedy(self, seed):
        automaton = make(seed, n_states=5, n_actions=3)
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 5)
        measure = execution_measure(automaton, scheduler)
        assert measure.total_mass == 1  # exact rational arithmetic

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_every_completed_execution_is_valid(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 4)
        for execution in execution_measure(automaton, scheduler).support():
            assert execution.is_execution_of(automaton)

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_cone_probability_consistent_with_unfolding(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 4)
        measure = execution_measure(automaton, scheduler)
        for execution in measure.support():
            for cut in range(len(execution) + 1):
                prefix = Fragment(execution.states[: cut + 1], execution.actions[:cut])
                cone = cone_probability(automaton, scheduler, prefix)
                total = sum(w for e, w in measure.items() if prefix <= e)
                assert cone == total

    @given(SEEDS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_longer_bounds_refine_the_measure(self, seed, bound):
        # Halting earlier coarsens: the measure at bound b pushes forward to
        # the measure at bound b' < b under prefix truncation.
        automaton = make(seed, n_states=4, n_actions=3)
        short = execution_measure(
            automaton, bound_scheduler(DeterministicScheduler.greedy(), bound)
        )
        long = execution_measure(
            automaton, bound_scheduler(DeterministicScheduler.greedy(), bound + 1)
        )

        def truncate(execution):
            cut = min(len(execution), bound)
            return Fragment(execution.states[: cut + 1], execution.actions[:cut])

        assert total_variation(long.map(truncate), short) == 0


class TestCompositionLaws:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_commutativity_up_to_state_swap(self, seed):
        left = make(seed, name="L", n_states=3, n_actions=2)
        right = make(seed + 1, name="R", n_states=3, n_actions=2)
        ab = compose(left, right)
        ba = compose(right, left)
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 4)
        measure_ab = execution_measure(ab, scheduler)
        measure_ba = execution_measure(ba, scheduler)

        def swap(execution):
            return Fragment(
                tuple((b, a) for a, b in execution.states), execution.actions
            )

        assert total_variation(measure_ab.map(swap), measure_ba) == 0

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_composed_signature_distributes(self, seed):
        left = make(seed, name="L", n_states=3, n_actions=2)
        right = make(seed + 1, name="R", n_states=3, n_actions=2)
        product = compose(left, right)
        for state in reachable_states(product, max_states=2_000):
            sigs = [left.signature(state[0]), right.signature(state[1])]
            assert signatures_compatible(sigs)
            assert product.signature(state) == compose_signatures(sigs)

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_hide_commutes_with_composition_on_signatures(self, seed):
        left = make(seed, name="L", n_states=3, n_actions=2)
        right = make(seed + 1, name="R", n_states=3, n_actions=2)
        product = compose(left, right)
        for state in reachable_states(product, max_states=2_000):
            sig = product.signature(state)
            hidden_after = hide_signature(sig, sig.outputs)
            # Hiding *all* outputs componentwise then composing gives the
            # same partition (no output matching can occur afterwards).
            left_hidden = hide_signature(left.signature(state[0]), sig.outputs)
            right_hidden = hide_signature(right.signature(state[1]), sig.outputs)
            composed_before = compose_signatures([left_hidden, right_hidden])
            assert hidden_after.all_actions == composed_before.all_actions
            assert hidden_after.internals == composed_before.internals


class TestRenamingLaws:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_rename_preserves_measure_through_bijection(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        renamed = rename_psioa(automaton, lambda a: ("r", a))
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 4)
        original = execution_measure(automaton, scheduler)
        image = execution_measure(renamed, scheduler)

        def rename_execution(execution):
            return Fragment(
                execution.states, tuple(("r", a) for a in execution.actions)
            )

        assert total_variation(original.map(rename_execution), image) == 0

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_lemma_a1_renamed_automata_valid(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        validate_psioa(rename_psioa(automaton, lambda a: ("r", a)), states=range(4))

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_rename_roundtrip_identity(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        back = rename_psioa(
            rename_psioa(automaton, lambda a: ("r", a)), lambda a: a[1], name="back"
        )
        for state in range(4):
            assert back.signature(state) == automaton.signature(state)


class TestIntrinsicTransitionLaws:
    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_and_outcomes_reduced(self, seed):
        rng = np.random.default_rng(seed)
        automaton = random_psioa(("C", seed), rng, n_states=4, n_actions=3)
        config = Configuration.initial([automaton]).reduce()
        if len(config) == 0:
            return  # degenerate: start state already empty-signature
        for action in sorted(config.signature().all_actions, key=repr):
            eta = intrinsic_transition(config, action)
            assert eta.total_mass == 1
            for outcome in eta.support():
                assert outcome.is_reduced()

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_creation_adds_member_at_start(self, seed):
        spawner = ticker(("sp", seed), 1, action=("go", seed))
        child = fair_coin(("child", seed))
        config = Configuration.initial([spawner])
        eta = intrinsic_transition(config, ("go", seed), created=[child])
        for outcome in eta.support():
            if ("child", seed) in outcome.ids():
                assert outcome.state_of(("child", seed)) == child.start
