"""Differential lockdown of the perf layer.

The memoization and parallelism machinery must be *invisible* in results:

* every experiment's report — table, verdict, data — is identical with the
  cache on and off (exact equality; all arithmetic is rational);
* the runner's machine-readable report is byte-identical at every
  ``--parallel N`` modulo wall-clock/pid-flavoured fields;
* inner sweep parallelism (the ``REPRO_BACKEND`` execution backend) does
  not change experiment results either;
* the unfolding engine decides every fragment exactly once (the historical
  double-decide of depth-bound fragments in ``execution_measure`` stays
  fixed), pinned by counting scheduler invocations.
"""

import json
from fractions import Fraction

import pytest

from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.experiments.common import ALL_EXPERIMENTS, run_experiment, set_experiment_seed
from repro.obs import metrics
from repro.perf import backends as perf_backends
from repro.perf import cache as perf_cache
from repro.probability.measures import DiscreteMeasure, dirac
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler, Scheduler
from tests.helpers import coin_automaton

#: Report fields that legitimately differ between runs (timing, process
#: identity, file paths) and are scrubbed before exact comparison.
VOLATILE_REPORT_KEYS = {"created_unix", "argv", "wall_time_s"}
VOLATILE_RECORD_KEYS = {"elapsed_s", "peak_rss_bytes", "trace_file"}
#: Experiment ``data`` keys that carry wall-clock measurements.
VOLATILE_DATA_KEYS = {"timings_ms"}
#: Optional observability summary blocks: their *presence* is the feature
#: under differential test, so they are scrubbed before byte comparison —
#: everything outside them must be identical with profiling on or off.
#: ``summary.config`` rides along: it records the resolved RunConfig, and
#: differential runs intentionally vary knobs — provenance, like ``argv``.
OPTIONAL_SUMMARY_BLOCKS = {"trace", "profile", "analysis", "config"}


def _normalized(report):
    data = {k: v for k, v in report.data.items() if k not in VOLATILE_DATA_KEYS}
    return (report.experiment, report.claim, bool(report.passed), report.table, repr(data))


def _scrub(payload):
    payload = {k: v for k, v in payload.items() if k not in VOLATILE_REPORT_KEYS}
    payload["summary"] = {
        k: v
        for k, v in payload["summary"].items()
        if k not in VOLATILE_REPORT_KEYS and k not in OPTIONAL_SUMMARY_BLOCKS
    }
    experiments = []
    for record in payload["experiments"]:
        record = {k: v for k, v in record.items() if k not in VOLATILE_RECORD_KEYS}
        record["attempt_history"] = [
            {k: v for k, v in entry.items() if k != "elapsed_s"}
            for entry in record.get("attempt_history", [])
        ]
        experiments.append(record)
    payload["experiments"] = experiments
    return json.dumps(payload, sort_keys=True)


class TestCachedVersusUncached:
    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_experiment_identical_with_cache_on_and_off(self, experiment_id):
        set_experiment_seed(None)
        perf_cache.configure(enabled=True)
        perf_cache.clear()
        cached = run_experiment(experiment_id)
        perf_cache.configure(enabled=False)
        perf_cache.clear()
        uncached = run_experiment(experiment_id)
        assert _normalized(cached) == _normalized(uncached)
        assert cached.passed and uncached.passed


class TestRunnerParallelism:
    def test_reports_byte_identical_across_worker_counts(self, tmp_path, monkeypatch):
        # runner.main writes REPRO_CACHE into the environment; route the
        # write through monkeypatch so it is undone after the test.
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner

        subset = ["E1", "E5", "E9", "E12", "E15"]
        scrubbed = {}
        for workers in (1, 2, 4):
            out = tmp_path / f"report-{workers}.json"
            code = runner.main(
                subset + ["--parallel", str(workers), "--metrics-out", str(out)]
            )
            assert code == 0
            scrubbed[workers] = _scrub(json.loads(out.read_text()))
        assert scrubbed[1] == scrubbed[2] == scrubbed[4]

    def test_parallel_requires_isolation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner

        assert runner.main(["E1", "--parallel", "2", "--no-isolation"]) == 2

    def test_report_carries_cache_summary(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner

        out = tmp_path / "report.json"
        assert runner.main(["E1", "--cache", "stats", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        cache = payload["summary"]["cache"]
        assert cache["enabled"] is True
        assert any(k.startswith("perf.cache.") for k in cache["counters"])

    def test_cache_off_flag_reaches_children(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner

        out = tmp_path / "report.json"
        assert runner.main(["E1", "--cache", "off", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        cache = payload["summary"]["cache"]
        assert cache["enabled"] is False
        assert not any(k.startswith("perf.cache.") for k in cache["counters"])


class TestInnerSweepParallelism:
    @pytest.mark.parametrize("experiment_id", ["E12", "E15"])
    def test_fanned_sweeps_identical_to_serial(self, experiment_id):
        set_experiment_seed(None)
        perf_cache.configure(enabled=True)
        perf_cache.clear()
        perf_backends.configure_backend("serial")
        serial = run_experiment(experiment_id)
        perf_cache.clear()
        perf_backends.configure_backend("fork:2")
        try:
            fanned = run_experiment(experiment_id)
        finally:
            perf_backends.configure_backend(None)
        assert _normalized(serial) == _normalized(fanned)


class TestProfileDifferential:
    """``REPRO_PROFILE`` must be invisible in results: the full 15-experiment
    run report is byte-identical with profiling on or off outside the
    optional ``summary.profile`` / ``summary.analysis`` blocks, on every
    backend the sweeps can fan out over."""

    @staticmethod
    def _suite_report(tmp_path, monkeypatch, label, profiled):
        from repro.experiments import runner
        from repro.obs import profile as obs_profile

        out = tmp_path / f"report-{label}.json"
        if profiled:
            monkeypatch.setenv("REPRO_PROFILE", "1")
        else:
            monkeypatch.delenv("REPRO_PROFILE", raising=False)
        try:
            code = runner.main(["--parallel", "4", "--metrics-out", str(out)])
        finally:
            obs_profile.disable()
            obs_profile.clear()
        assert code == 0
        payload = json.loads(out.read_text())
        if profiled:
            block = payload["summary"]["profile"]
            assert block["enabled"] is True and block["lanes"]
        else:
            assert "profile" not in payload["summary"]
        # No record ever carries phase data — only summary.profile does.
        for record in payload["experiments"]:
            assert "profile" not in record
        return _scrub(payload)

    @pytest.mark.parametrize("backend", ["serial", "fork:2"])
    def test_profiled_suite_byte_identical_outside_summary_blocks(
        self, tmp_path, monkeypatch, backend
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", backend)
        plain = self._suite_report(tmp_path, monkeypatch, f"{backend}-off", False)
        profiled = self._suite_report(tmp_path, monkeypatch, f"{backend}-on", True)
        assert plain == profiled

    def test_profiled_socket_suite_byte_identical(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        plain = self._suite_report(tmp_path, monkeypatch, "socket-off", False)
        profiled = self._suite_report(tmp_path, monkeypatch, "socket-on", True)
        assert plain == profiled


class _CountingScheduler(Scheduler):
    """Counts logical decisions per fragment (bypasses the decision cache)."""

    cacheable = False

    def __init__(self, inner):
        self.inner = inner
        self.calls = {}

    def decide(self, automaton, fragment):
        key = (fragment.states, fragment.actions)
        self.calls[key] = self.calls.get(key, 0) + 1
        return self.inner.decide(automaton, fragment)

    def step_bound(self):
        return self.inner.step_bound()


def _branching_automaton():
    """``q0 --a--> {q1, q2}`` (1/2 each), then ``b`` to a sink."""
    sig_ab = Signature(outputs={"a"})
    sig_b = Signature(outputs={"b"})
    return TablePSIOA(
        "branch",
        "q0",
        {
            "q0": sig_ab,
            "q1": sig_b,
            "q2": sig_b,
            "q3": Signature(),
            "q4": Signature(),
        },
        {
            ("q0", "a"): DiscreteMeasure({"q1": Fraction(1, 2), "q2": Fraction(1, 2)}),
            ("q1", "b"): dirac("q3"),
            ("q2", "b"): dirac("q4"),
        },
    )


class TestDecideOnce:
    def test_every_fragment_decided_exactly_once(self):
        # bound 2 with a branch at depth 1: one initial fragment, two at
        # depth 1, two at the depth bound.  5 fragments, 5 decisions — the
        # depth-bound fragments must NOT be re-decided by a residual pass.
        perf_cache.configure(enabled=False)
        perf_cache.clear()
        scheduler = _CountingScheduler(ActionSequenceScheduler(["a", "b"]))
        measure = execution_measure(_branching_automaton(), scheduler)
        assert measure.total_mass == 1
        assert all(count == 1 for count in scheduler.calls.values()), scheduler.calls
        assert sum(scheduler.calls.values()) == 5
        assert metrics.counter("scheduler.steps").value == 5

    def test_memoized_unfolding_adds_no_decisions(self):
        perf_cache.configure(enabled=True)
        perf_cache.clear()
        scheduler = _CountingScheduler(ActionSequenceScheduler(["a", "b"]))
        scheduler.cacheable = True
        automaton = _branching_automaton()
        execution_measure(automaton, scheduler)
        first_round = sum(scheduler.calls.values())
        assert first_round == 5
        execution_measure(automaton, scheduler)
        assert sum(scheduler.calls.values()) == first_round
