"""Unit tests: the fault-injection subsystem (``repro.faults``).

Covers the crash wrappers (crash-stop destruction, crash-recovery restart,
Bernoulli crash mixing), the channel fault wrappers (drop / duplicate /
delay keep the external interface), Byzantine corruption (strategy-driven
adversary outputs, adversary checks still apply), and the fault injector
(deterministic seeded plans, JSON round-trip, scheduler wrapping that is
invisible to the base scheduler's step counting).
"""

from fractions import Fraction

import pytest

from tests.helpers import coin_automaton, fair_coin

from repro.core.executions import Fragment
from repro.core.psioa import PsioaError, reachable_states, validate_psioa
from repro.core.signature import EMPTY_SIGNATURE
from repro.faults import (
    CRASHED,
    FaultEvent,
    FaultPlan,
    FaultyScheduler,
    bernoulli_crash,
    byzantine,
    crash_action,
    crash_recovery,
    crash_stop,
    delay,
    drop,
    duplicate,
    faulty_schema,
    output_rename_strategy,
    recover_action,
)
from repro.probability.measures import DiscreteMeasure, dirac, total_variation
from repro.secure.adversary import is_adversary
from repro.semantics.insight import accept_insight, f_dist, trace_insight
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler, PriorityScheduler
from repro.semantics.schema import SchedulerSchema
from repro.systems.channels import (
    LEAK,
    RECV,
    SEND,
    channel_environment,
    guessing_adversary,
    ideal_channel,
    real_channel,
)


class TestCrashStop:
    def test_crashed_state_has_empty_signature(self):
        wrapped = crash_stop(fair_coin())
        assert wrapped.signature(CRASHED) == EMPTY_SIGNATURE

    def test_crash_input_added_everywhere_up(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        for q in ("q0", "qH", "qT", "qF"):
            sig = wrapped.signature(("up", q))
            assert crash_action(base) in sig.inputs
            assert sig.outputs == base.signature(q).outputs

    def test_crash_transition_destroys(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        eta = wrapped.transition(("up", "q0"), crash_action(base))
        assert eta == dirac(CRASHED)
        with pytest.raises(PsioaError):
            wrapped.transition(CRASHED, "toss")

    def test_valid_psioa(self):
        wrapped = crash_stop(fair_coin())
        validate_psioa(wrapped)
        assert CRASHED in reachable_states(wrapped)

    def test_crash_name_collision_rejected(self):
        base = fair_coin()
        wrapped = crash_stop(base, crash="toss")
        with pytest.raises(PsioaError):
            wrapped.signature(("up", "q0"))


class TestCrashRecovery:
    def test_recovery_restarts_from_start_state(self):
        base = coin_automaton("c", Fraction(1, 3))
        wrapped = crash_recovery(base)
        assert wrapped.signature(CRASHED).inputs == frozenset({recover_action(base)})
        eta = wrapped.transition(CRASHED, recover_action(base))
        assert eta == dirac(("up", "q0"))
        validate_psioa(wrapped)

    def test_only_recovery_enabled_when_crashed(self):
        wrapped = crash_recovery(fair_coin())
        with pytest.raises(PsioaError):
            wrapped.transition(CRASHED, "toss")

    def test_crash_equals_recover_rejected(self):
        with pytest.raises(PsioaError):
            crash_recovery(fair_coin(), crash="x", recover="x")


class TestBernoulliCrash:
    def test_transitions_mix_toward_crash(self):
        p = Fraction(1, 4)
        wrapped = bernoulli_crash(fair_coin(), p)
        eta = wrapped.transition(("up", "q0"), "toss")
        assert eta(CRASHED) == p
        assert eta(("up", "qH")) == Fraction(1, 2) * (1 - p)
        validate_psioa(wrapped)

    def test_zero_rate_is_faithful(self):
        base = fair_coin()
        wrapped = bernoulli_crash(base, 0)
        eta = wrapped.transition(("up", "q0"), "toss")
        assert eta == DiscreteMeasure({("up", "qH"): Fraction(1, 2), ("up", "qT"): Fraction(1, 2)})

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            bernoulli_crash(fair_coin(), 2)


class TestChannelFaults:
    def test_drop_preserves_signatures(self):
        chan = real_channel("c", 2)
        lossy = drop(chan, Fraction(1, 2))
        for q in ("idle", "done", ("cipher", 0, 0), ("deliver", 1)):
            assert lossy.signature(q) == chan.signature(q)
        validate_psioa(lossy)

    def test_drop_mixes_send_toward_done(self):
        p = Fraction(1, 3)
        lossy = drop(real_channel("c", 2), p)
        eta = lossy.transition("idle", SEND(0))
        assert eta("done") == p
        assert sum(w for q, w in eta.items() if q != "done") == 1 - p

    def test_drop_keeps_structured_split(self):
        chan = real_channel("c", 2)
        lossy = drop(chan, Fraction(1, 4))
        assert lossy.eact(("cipher", 0, 1)) == chan.eact(("cipher", 0, 1))
        assert set(lossy.global_aact()) == set(chan.global_aact())

    def test_drop_works_on_ideal_channel(self):
        lossy = drop(ideal_channel("i"), Fraction(1, 2))
        validate_psioa(lossy)
        assert lossy.transition("idle", SEND(1))("done") == Fraction(1, 2)

    def test_duplicate_returns_to_delivering_state(self):
        p = Fraction(1, 4)
        chan = real_channel("c", 2)
        dup = duplicate(chan, p)
        eta = dup.transition(("deliver", 1), RECV(1))
        assert eta(("deliver", 1)) == p and eta("done") == 1 - p
        for q in ("idle", ("deliver", 0)):
            assert dup.signature(q) == chan.signature(q)
        validate_psioa(dup)

    def test_delay_adds_only_internal_actions(self):
        chan = real_channel("c", 2)
        slowed = delay(chan, 2)
        # External interface at original states unchanged.
        for q in ("idle", ("deliver", 0), ("cipher", 1, 0)):
            assert slowed.signature(q).external == chan.signature(q).external
        chain = ("delayed", ("deliver", 0), 2)
        sig = slowed.signature(chain)
        assert sig.outputs == frozenset()
        assert sig.internals == frozenset({("tick", "c")})
        validate_psioa(slowed)

    def test_delay_chain_reaches_target(self):
        slowed = delay(real_channel("c", 2), 1)
        tick = ("tick", "c")
        eta = slowed.transition(("delayed", ("deliver", 0), 1), tick)
        assert eta == dirac(("deliver", 0))

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError):
            drop(real_channel("c", 2), 2)
        with pytest.raises(ValueError):
            duplicate(real_channel("c", 2), -1)
        with pytest.raises(ValueError):
            delay(real_channel("c", 2), -1)


class TestByzantine:
    def test_full_corruption_rewrites_adversary_outputs(self):
        chan = real_channel("c", 2)
        strategy = output_rename_strategy({LEAK(0): LEAK(1), LEAK(1): LEAK(0)})
        byz = byzantine(chan, strategy, rate=1)
        sig = byz.signature(("byz", ("cipher", 0, 0)))
        assert sig.outputs == frozenset({LEAK(1)})
        # The emitted action drives the transition of the action it masks.
        eta = byz.transition(("byz", ("cipher", 0, 0)), LEAK(1))
        assert eta == dirac(("byz", ("deliver", 0)))
        validate_psioa(byz)

    def test_environment_interface_untouched(self):
        chan = real_channel("c", 2)
        byz = byzantine(chan, output_rename_strategy({}), rate=1)
        assert byz.eact(("byz", "idle")) == chan.eact("idle")
        assert set(byz.global_aact()) == set(chan.global_aact())

    def test_partial_rate_mixes_modes(self):
        r = Fraction(1, 4)
        byz = byzantine(real_channel("c", 2), output_rename_strategy({}), rate=r)
        assert byz.start == ("honest", "idle")
        eta = byz.transition(("honest", ("deliver", 0)), RECV(0))
        assert eta(("honest", "done")) == 1 - r and eta(("byz", "done")) == r

    def test_adversary_checks_still_apply(self):
        byz = byzantine(real_channel("c", 2), output_rename_strategy({}), rate=1)
        assert is_adversary(guessing_adversary(), byz)

    def test_strategy_may_not_emit_environment_actions(self):
        byz = byzantine(
            real_channel("c", 2),
            output_rename_strategy({LEAK(0): SEND(0)}),
            rate=1,
        )
        with pytest.raises(PsioaError):
            byz.signature(("byz", ("cipher", 0, 0)))

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            byzantine(real_channel("c", 2), output_rename_strategy({}), rate=Fraction(3, 2))


class TestFaultPlan:
    def test_deterministic_under_fixed_seed(self):
        actions = [("crash", "a"), ("crash", "b")]
        one = FaultPlan.bernoulli(actions, 0.3, 50, seed=7)
        two = FaultPlan.bernoulli(actions, 0.3, 50, seed=7)
        other = FaultPlan.bernoulli(actions, 0.3, 50, seed=8)
        assert one == two
        assert one.seed == 7
        assert one != other

    def test_events_sorted_and_unique(self):
        plan = FaultPlan.of((5, "x"), (1, "y"))
        assert [e.step for e in plan.events] == [1, 5]
        assert plan.action_at(5) == "x" and plan.action_at(2) is None
        with pytest.raises(ValueError):
            FaultPlan.of((1, "x"), (1, "y"))
        with pytest.raises(ValueError):
            FaultEvent(-1, "x")

    def test_json_roundtrip_with_tuple_actions(self):
        plan = FaultPlan.of((0, ("crash", ("cons", 2))), (3, ("recover", ("cons", 2))))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bernoulli_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan.bernoulli(["x"], 1.5, 10, seed=0)
        with pytest.raises(ValueError):
            FaultPlan.bernoulli([], 0.5, 10, seed=0)


class TestFaultyScheduler:
    def test_injects_enabled_fault_dirac(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        plan = FaultPlan.of((0, crash_action(base)))
        scheduler = FaultyScheduler(
            ActionSequenceScheduler(("toss", "head", "tail"), local_only=True), plan
        )
        decision = scheduler.decide(wrapped, Fragment((wrapped.start,), ()))
        assert decision(crash_action(base)) == 1

    def test_skips_disabled_fault(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        # A crash scheduled while already crashed: delegate to the base.
        plan = FaultPlan.of((0, ("not-enabled",)))
        scheduler = FaultyScheduler(
            ActionSequenceScheduler(("toss",), local_only=True), plan
        )
        decision = scheduler.decide(wrapped, Fragment((wrapped.start,), ()))
        assert decision("toss") == 1

    def test_base_scheduler_sees_stripped_fragment(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        crash = crash_action(base)

        seen = []

        class Recording(ActionSequenceScheduler):
            def decide(self, automaton, fragment):
                seen.append(fragment)
                return super().decide(automaton, fragment)

        plan = FaultPlan.of((1, crash))
        scheduler = FaultyScheduler(Recording(("toss", "head"), local_only=True), plan)
        # Raw history: toss, then the injected crash at step 1.
        fragment = Fragment(
            (("up", "q0"), ("up", "qH"), CRASHED), ("toss", crash)
        )
        scheduler.decide(wrapped, fragment)
        assert seen[-1].actions == ("toss",)
        assert seen[-1].lstate == CRASHED  # the true current state survives

    def test_crash_kills_the_coin_execution(self):
        base = fair_coin()
        wrapped = crash_stop(base)
        schedule = ActionSequenceScheduler(("toss", "head", "tail"), local_only=True)
        healthy = execution_measure(wrapped, schedule)
        crashed = execution_measure(
            wrapped, FaultyScheduler(schedule, FaultPlan.of((0, crash_action(base))))
        )
        assert total_variation(healthy, crashed) == 1
        assert all(execution.lstate == CRASHED for execution in crashed.support())

    def test_step_bound_extends_by_plan_length(self):
        base = FaultyScheduler(
            PriorityScheduler([lambda a: True], 5), FaultPlan.of((0, "x"), (2, "y"))
        )
        assert base.step_bound() == 7

    def test_faulty_schema_lifts_members(self):
        plan = FaultPlan.of((0, ("crash", "fair")))
        schema = SchedulerSchema(
            "seq",
            lambda automaton, bound: iter(
                [ActionSequenceScheduler(("toss",), local_only=True)]
            ),
        )
        lifted = faulty_schema(schema, plan)
        members = list(lifted.members(fair_coin(), 3))
        assert len(members) == 1
        assert isinstance(members[0], FaultyScheduler)
        assert members[0].plan is plan


class TestEndToEnd:
    def test_crash_preserves_safety_breaks_liveness(self):
        """The E15 headline on a tiny instance: under the accept insight a
        crashed channel run stays close; under the trace insight it is
        distance 1 from the healthy run."""
        chan = real_channel("c", 2)
        wrapped = crash_stop(chan)
        env = channel_environment(0)
        scheduler = PriorityScheduler(
            [
                lambda a: isinstance(a, tuple) and a[0] == "send",
                lambda a: isinstance(a, tuple) and a[0] == "leak",
                lambda a: isinstance(a, tuple) and a[0] == "recv",
                lambda a: a == "acc",
            ],
            8,
        )
        plan = FaultPlan.of((1, crash_action(chan)))
        healthy_trace = f_dist(trace_insight(), env, wrapped, scheduler)
        crashed_trace = f_dist(
            trace_insight(), env, wrapped, FaultyScheduler(scheduler, plan)
        )
        assert total_variation(healthy_trace, crashed_trace) == 1
        healthy_acc = f_dist(accept_insight(), env, wrapped, scheduler)
        crashed_acc = f_dist(
            accept_insight(), env, wrapped, FaultyScheduler(scheduler, plan)
        )
        # No adversary in the loop: acc never fires either way.
        assert total_variation(healthy_acc, crashed_acc) == 0
