"""Integration tests: observability through the guarded experiment runner.

The guarded runner must marshal the child's metrics snapshot across the
fork boundary — including from a child that crashes mid-experiment — save
Chrome traces per experiment, and emit a schema-valid ``--metrics-out``
report that records every seed needed to reproduce a failure.
"""

import json
import os

import pytest

from repro.experiments import common
from repro.experiments.common import DEFAULT_SEED, run_experiment_guarded
from repro.experiments.runner import main
from repro.obs.report import validate_report

_FIXTURES = {
    "EX-WORKCRASH": (
        "tests.faultyexp.crashing_after_work",
        "crashes after metered work",
    ),
}


@pytest.fixture(autouse=True)
def _inject_fixture_experiments(monkeypatch):
    for experiment_id, entry in _FIXTURES.items():
        monkeypatch.setitem(common.ALL_EXPERIMENTS, experiment_id, entry)


class TestGuardedObservability:
    def test_crashing_child_ships_partial_metrics(self):
        outcome = run_experiment_guarded("EX-WORKCRASH")
        assert outcome.status == "error"
        assert outcome.metrics is not None, "extras must survive the crash"
        counters = outcome.metrics["counters"]
        assert counters.get("measure.unfold.calls", 0) >= 1
        assert counters.get("scheduler.steps", 0) > 0
        assert outcome.peak_rss_bytes is None or outcome.peak_rss_bytes > 0

    def test_passing_child_ships_metrics_and_trace(self, tmp_path):
        trace_path = tmp_path / "E4.trace.json"
        outcome = run_experiment_guarded("E4", trace_path=str(trace_path))
        assert outcome.ok
        assert outcome.metrics["counters"]["scheduler.steps"] > 0
        assert outcome.trace_path == str(trace_path)
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        assert {"experiment", "experiment.run"} <= names
        assert all(event["ts"] >= 0 and event.get("dur", 0) >= 0 for event in events)

    def test_inline_metrics_are_per_experiment_deltas(self):
        first = run_experiment_guarded("E4", isolated=False)
        second = run_experiment_guarded("E4", isolated=False)
        assert first.ok and second.ok
        # Without before/after diffing the second run would report the
        # accumulated (roughly doubled) totals of the shared registry.
        assert (
            first.metrics["counters"]["scheduler.steps"]
            == second.metrics["counters"]["scheduler.steps"]
        )

    def test_timeout_yields_no_metrics(self, monkeypatch):
        monkeypatch.setitem(
            common.ALL_EXPERIMENTS, "EX-HANG", ("tests.faultyexp.hanging", "hangs")
        )
        outcome = run_experiment_guarded("EX-HANG", timeout=1.0)
        assert outcome.status == "timeout"
        assert outcome.metrics is None


class TestRunnerCliReports:
    def test_metrics_out_captures_crashing_childs_partial_metrics(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "report.json"
        assert main(["EX-WORKCRASH", "E4", "--metrics-out", str(out_path)]) == 1
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        by_id = {record["experiment"]: record for record in payload["experiments"]}
        crashed = by_id["EX-WORKCRASH"]
        assert crashed["status"] == "error"
        assert "deliberate crash after metered work" in crashed["error"]
        assert crashed["counters"].get("scheduler.steps", 0) > 0
        assert by_id["E4"]["ok"] and by_id["E4"]["table"]
        out = capsys.readouterr().out
        assert f"metrics report written to {out_path}" in out

    def test_seeds_recorded_for_reproducibility(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(
            ["EX-WORKCRASH", "--seed", "11", "--retries", "1",
             "--metrics-out", str(out_path)]
        )
        assert code == 1
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        (record,) = payload["experiments"]
        assert record["attempts"] == 2
        assert record["seed"] == 12  # base 11, rotated once
        assert record["default_seed"] == DEFAULT_SEED

    def test_attempt_history_records_every_attempt(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(
            ["EX-WORKCRASH", "--seed", "11", "--retries", "1",
             "--metrics-out", str(out_path)]
        )
        assert code == 1
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        (record,) = payload["experiments"]
        history = record["attempt_history"]
        assert [entry["attempt"] for entry in history] == [1, 2]
        assert [entry["seed"] for entry in history] == [11, 12]
        assert all(entry["status"] == "error" for entry in history)
        assert all(entry["error_class"] == "RuntimeError" for entry in history)
        assert all(entry["elapsed_s"] >= 0 for entry in history)

    def test_supervise_flag_exports_env_and_emits_resilience(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        for var in ("REPRO_SUPERVISE", "REPRO_SUPERVISE_SEED", "REPRO_CHUNK_DEADLINE"):
            monkeypatch.delenv(var, raising=False)
        out_path = tmp_path / "report.json"
        try:
            code = main(
                ["E4", "--supervise", "--chunk-deadline", "45", "--seed", "3",
                 "--metrics-out", str(out_path)]
            )
            assert code == 0
            # Isolated children and socket transports resolve the policy
            # from the environment, so the flags must export it.
            assert os.environ["REPRO_SUPERVISE"] == "on"
            assert os.environ["REPRO_SUPERVISE_SEED"] == "3"
            assert os.environ["REPRO_CHUNK_DEADLINE"] == "45.0"
        finally:
            for var in (
                "REPRO_SUPERVISE", "REPRO_SUPERVISE_SEED", "REPRO_CHUNK_DEADLINE"
            ):
                os.environ.pop(var, None)
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        resilience = payload["summary"]["resilience"]
        assert resilience["supervised"] is True
        assert resilience["chunk_deadline_s"] == 45.0
        assert isinstance(resilience["counters"], dict)

    def test_unsupervised_report_has_no_resilience_block(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        monkeypatch.delenv("REPRO_SUPERVISE", raising=False)
        out_path = tmp_path / "report.json"
        assert main(["E4", "--metrics-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        assert "resilience" not in payload["summary"]

    def test_default_seed_recorded_without_seed_flag(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["E4", "--metrics-out", str(out_path)]) == 0
        (record,) = json.loads(out_path.read_text())["experiments"]
        assert record["seed"] is None
        assert record["default_seed"] == DEFAULT_SEED

    def test_trace_dir_writes_chrome_trace_per_experiment(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["E4", "E9", "--trace-dir", str(trace_dir)]) == 0
        for experiment_id in ("E4", "E9"):
            payload = json.loads((trace_dir / f"{experiment_id}.trace.json").read_text())
            assert payload["traceEvents"], experiment_id

    def test_report_flag_summarizes_existing_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        main(["E4", "--metrics-out", str(out_path)])
        capsys.readouterr()
        assert main(["--report", str(out_path)]) == 0
        table = capsys.readouterr().out
        assert "experiment" in table and "E4" in table and "1/1 passed" in table

    def test_report_flag_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["--report", str(bad)]) == 2
        assert "invalid report" in capsys.readouterr().out

    def test_e15_report_includes_fault_counters_and_plan_seeds(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["E15", "--metrics-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        (record,) = payload["experiments"]
        assert record["counters"].get("faults.injected", 0) > 0
        assert record["fault_seeds"], "sampled fault-plan seeds must be recorded"

    def test_backend_flag_lands_in_summary(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        out_path = tmp_path / "report.json"
        assert main(["E4", "--backend", "fork:2", "--metrics-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        assert payload["summary"]["backend"] == {
            "name": "fork",
            "spec": "fork:2",
            "parallelism": 2,
        }

    def test_backend_defaults_to_environment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fork:3")
        out_path = tmp_path / "report.json"
        assert main(["E4", "--metrics-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["backend"]["spec"] == "fork:3"

    def test_invalid_backend_spec_exits_2_before_running(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert main(["E4", "--backend", "warp:9"]) == 2
        out = capsys.readouterr().out
        assert "invalid backend spec" in out
        assert "PASS" not in out  # nothing ran
