"""Shared toy automata for the test suite.

These are small, exactly-specified PSIOA used across unit and integration
tests.  The example *systems* shipped with the library live in
``repro.systems``; the helpers here are intentionally minimal so tests can
reason about exact probabilities.
"""

from fractions import Fraction

from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac


def coin_automaton(name, p, *, toss="toss", head="head", tail="tail"):
    """A coin that, on output ``toss``, lands heads with probability ``p`` and
    then announces the result as an output action.

    States: ``q0 --toss--> {qH w.p. p, qT w.p. 1-p}``; ``qH --head--> qF``;
    ``qT --tail--> qF``; ``qF`` has the empty signature (a destroyed-automaton
    sentinel for configuration tests).
    """
    signatures = {
        "q0": Signature(outputs={toss}),
        "qH": Signature(outputs={head}),
        "qT": Signature(outputs={tail}),
        "qF": Signature(),
    }
    if p == 0:
        outcome = dirac("qT")
    elif p == 1:
        outcome = dirac("qH")
    else:
        outcome = DiscreteMeasure({"qH": p, "qT": 1 - p})
    transitions = {
        ("q0", toss): outcome,
        ("qH", head): dirac("qF"),
        ("qT", tail): dirac("qF"),
    }
    return TablePSIOA(name, "q0", signatures, transitions)


def fair_coin(name="fair", **kw):
    return coin_automaton(name, Fraction(1, 2), **kw)


def biased_coin(name="biased", delta=Fraction(1, 8), **kw):
    return coin_automaton(name, Fraction(1, 2) + delta, **kw)


def relay(name, source, target):
    """Forwarder: input ``source`` then output ``target``, then idle."""
    signatures = {
        "wait": Signature(inputs={source}),
        "ready": Signature(outputs={target}),
        "done": Signature(inputs={source}),
    }
    transitions = {
        ("wait", source): dirac("ready"),
        ("ready", target): dirac("done"),
        ("done", source): dirac("done"),
    }
    return TablePSIOA(name, "wait", signatures, transitions)


def ticker(name, count, action="tick"):
    """Emits ``action`` exactly ``count`` times, then stops (empty signature)."""
    signatures = {}
    transitions = {}
    for i in range(count):
        signatures[i] = Signature(outputs={action})
        transitions[(i, action)] = dirac(i + 1)
    signatures[count] = Signature()
    return TablePSIOA(name, 0, signatures, transitions)


def listener(name, actions):
    """One-state automaton with the given input actions (a passive observer)."""
    sig = Signature(inputs=frozenset(actions))
    transitions = {("s", a): dirac("s") for a in actions}
    return TablePSIOA(name, "s", {"s": sig}, transitions)


def controlled_coin(name, p, *, go="go", head="head", tail="tail"):
    """A coin flipped on an external (adversary) input ``go``.

    States: ``w --go--> {qH w.p. p, qT w.p. 1-p}``; results are announced as
    outputs, then the coin idles on further ``go`` inputs.
    """
    signatures = {
        "w": Signature(inputs={go}),
        "qH": Signature(inputs={go}, outputs={head}),
        "qT": Signature(inputs={go}, outputs={tail}),
        "qF": Signature(inputs={go}),
    }
    if p == 0:
        outcome = dirac("qT")
    elif p == 1:
        outcome = dirac("qH")
    else:
        outcome = DiscreteMeasure({"qH": p, "qT": 1 - p})
    transitions = {
        ("w", go): outcome,
        ("qH", go): dirac("qH"),
        ("qT", go): dirac("qT"),
        ("qF", go): dirac("qF"),
        ("qH", head): dirac("qF"),
        ("qT", tail): dirac("qF"),
    }
    return TablePSIOA(name, "w", signatures, transitions)


def driver(name, actions):
    """Fires each of ``actions`` once, in order (an active adversary shell)."""
    actions = list(actions)
    signatures = {}
    transitions = {}
    for i, action in enumerate(actions):
        signatures[i] = Signature(outputs={action})
        transitions[(i, action)] = dirac(i + 1)
    signatures[len(actions)] = Signature(inputs={("idle", name)})
    transitions[(len(actions), ("idle", name))] = dirac(len(actions))
    return TablePSIOA(name, 0, signatures, transitions)
