"""Tests for schedulers (Defs 3.1, 4.6) and the execution measure epsilon_sigma."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.executions import Fragment
from repro.probability.measures import SubDiscreteMeasure
from repro.semantics.measure import (
    UnboundedUnfoldingError,
    cone_probability,
    execution_measure,
)
from repro.semantics.scheduler import (
    ActionSequenceScheduler,
    BoundedScheduler,
    DeterministicScheduler,
    FunctionScheduler,
    RandomizedScheduler,
    TaskScheduler,
    bound_scheduler,
)

from tests.helpers import coin_automaton, fair_coin, listener, ticker


def frag(*parts):
    return Fragment(tuple(parts[0::2]), tuple(parts[1::2]))


class TestSchedulers:
    def test_action_sequence_follows_script(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head"])
        d0 = sched.decide(coin, Fragment.initial("q0"))
        assert d0("toss") == 1
        d1 = sched.decide(coin, frag("q0", "toss", "qH"))
        assert d1("head") == 1

    def test_action_sequence_halts_when_disabled(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["head"])  # not enabled at q0
        decision = sched.decide(coin, Fragment.initial("q0"))
        assert decision.halting_mass == 1

    def test_action_sequence_halts_after_script(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss"])
        decision = sched.decide(coin, frag("q0", "toss", "qH"))
        assert decision.halting_mass == 1
        assert sched.step_bound() == 1

    def test_greedy_deterministic(self):
        coin = fair_coin()
        sched = DeterministicScheduler.greedy()
        assert sched.decide(coin, Fragment.initial("q0"))("toss") == 1
        assert sched.decide(coin, frag("q0", "toss", "qF")). halting_mass == 1

    def test_decide_checked_rejects_disabled_mass(self):
        coin = fair_coin()
        cheater = FunctionScheduler(lambda a, f: SubDiscreteMeasure({"head": 1}))
        with pytest.raises(ValueError, match="disabled"):
            cheater.decide_checked(coin, Fragment.initial("q0"))

    def test_bounded_scheduler_halts_at_bound(self):
        t = ticker("t", 10)
        sched = BoundedScheduler(DeterministicScheduler.greedy(), 3)
        assert sched.decide(t, frag(0, "tick", 1, "tick", 2, "tick", 3)).halting_mass == 1
        assert sched.step_bound() == 3

    def test_bound_scheduler_keeps_tighter_bound(self):
        inner = ActionSequenceScheduler(["toss"])
        assert bound_scheduler(inner, 5) is inner
        wrapped = bound_scheduler(DeterministicScheduler.greedy(), 5)
        assert wrapped.step_bound() == 5

    def test_randomized_scheduler_mixes(self):
        coin = fair_coin()
        sched = RandomizedScheduler(
            [
                (Fraction(1, 2), ActionSequenceScheduler(["toss"])),
                (Fraction(1, 2), ActionSequenceScheduler([])),
            ]
        )
        decision = sched.decide(coin, Fragment.initial("q0"))
        assert decision("toss") == Fraction(1, 2)
        assert decision.halting_mass == Fraction(1, 2)

    def test_randomized_scheduler_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RandomizedScheduler([(Fraction(1, 2), ActionSequenceScheduler([]))])

    def test_task_scheduler_resolves_among_enabled(self):
        coin = fair_coin()
        sched = TaskScheduler([lambda a: a in ("head", "tail")])
        # At qH only 'head' matches the task.
        assert sched.decide(coin, frag("q0", "toss", "qH"))("head") == 0  # index=1 past tasks
        fresh = TaskScheduler([lambda a: a == "toss", lambda a: a in ("head", "tail")])
        assert fresh.decide(coin, Fragment.initial("q0"))("toss") == 1
        assert fresh.decide(coin, frag("q0", "toss", "qT"))("tail") == 1

    def test_task_scheduler_skips_disabled_tasks(self):
        coin = fair_coin()
        sched = TaskScheduler([lambda a: a == "nonsense", lambda a: a == "toss"])
        assert sched.decide(coin, Fragment.initial("q0"))("toss") == 1


class TestExecutionMeasure:
    def test_fair_coin_measure(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head"])
        measure = execution_measure(coin, sched)
        heads = frag("q0", "toss", "qH", "head", "qF")
        tails_stuck = frag("q0", "toss", "qT")  # 'head' disabled at qT: halt
        assert measure(heads) == Fraction(1, 2)
        assert measure(tails_stuck) == Fraction(1, 2)
        assert measure.total_mass == 1

    def test_exact_probabilities_multiply_along_paths(self):
        coin = coin_automaton("c", Fraction(1, 3))
        sched = ActionSequenceScheduler(["toss", "tail"])
        measure = execution_measure(coin, sched)
        tails = frag("q0", "toss", "qT", "tail", "qF")
        assert measure(tails) == Fraction(2, 3)

    def test_randomized_scheduler_halting_mass(self):
        coin = fair_coin()
        sched = RandomizedScheduler(
            [
                (Fraction(1, 4), ActionSequenceScheduler(["toss"])),
                (Fraction(3, 4), ActionSequenceScheduler([])),
            ]
        )
        measure = execution_measure(coin, sched)
        assert measure(Fragment.initial("q0")) == Fraction(3, 4)

    def test_unbounded_scheduler_requires_depth(self):
        coin = fair_coin()
        with pytest.raises(UnboundedUnfoldingError):
            execution_measure(coin, DeterministicScheduler.greedy())

    def test_nonhalting_raises_without_truncate(self):
        t = ticker("t", 100)
        greedy = DeterministicScheduler.greedy()
        with pytest.raises(UnboundedUnfoldingError):
            execution_measure(t, greedy, max_depth=5)

    def test_truncate_attributes_residual_mass(self):
        t = ticker("t", 100)
        greedy = DeterministicScheduler.greedy()
        measure = execution_measure(t, greedy, max_depth=5, truncate=True)
        assert measure.total_mass == 1
        (execution,) = measure.support()
        assert len(execution) == 5

    def test_greedy_terminates_on_finite_run(self):
        t = ticker("t", 4)
        measure = execution_measure(t, DeterministicScheduler.greedy(), max_depth=10)
        (execution,) = measure.support()
        assert len(execution) == 4
        assert execution.lstate == 4

    def test_measure_over_composition(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        world = compose(coin, ear)
        sched = ActionSequenceScheduler(["toss", "head", "tail"])
        measure = execution_measure(world, sched)
        assert measure.total_mass == 1
        # Without local_only, the scheduler may inject unmatched inputs of
        # the composition (the listener keeps every input enabled), so both
        # branches run the full three-action script.
        lengths = sorted(len(e) for e in measure.support())
        assert lengths == [3, 3]

    def test_measure_over_composition_local_only(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        world = compose(coin, ear)
        sched = ActionSequenceScheduler(["toss", "head", "tail"], local_only=True)
        measure = execution_measure(world, sched)
        assert measure.total_mass == 1
        # Locally-controlled scheduling: heads branch fires toss+head then
        # halts ('tail' not an output); tails branch halts right after toss.
        lengths = sorted(len(e) for e in measure.support())
        assert lengths == [1, 2]


class TestConeProbability:
    def test_cone_of_empty_prefix_is_one(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss"])
        assert cone_probability(coin, sched, Fragment.initial("q0")) == 1

    def test_cone_probability_multiplies(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head"])
        assert cone_probability(coin, sched, frag("q0", "toss", "qH")) == Fraction(1, 2)
        assert cone_probability(coin, sched, frag("q0", "toss", "qH", "head", "qF")) == Fraction(1, 2)

    def test_cone_of_unscheduled_path_is_zero(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss"])
        assert cone_probability(coin, sched, frag("q0", "toss", "qH", "head", "qF")) == 0

    def test_cone_of_wrong_start_is_zero(self):
        coin = fair_coin()
        sched = ActionSequenceScheduler(["head"])
        assert cone_probability(coin, sched, frag("qH", "head", "qF")) == 0

    def test_cone_matches_unfolded_mass(self):
        # epsilon_sigma(C_alpha) must equal the sum of completed-execution
        # masses with alpha as prefix.
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head"])
        measure = execution_measure(coin, sched)
        prefix = frag("q0", "toss", "qH")
        from_cone = cone_probability(coin, sched, prefix)
        from_unfold = sum(w for e, w in measure.items() if prefix <= e)
        assert from_cone == from_unfold
