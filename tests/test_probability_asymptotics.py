"""Tests for polynomial/negligible envelope fitting (Definition 4.12 support)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability.asymptotics import (
    NegligibleFit,
    PolynomialBound,
    evaluate_bound,
    fit_negligible_envelope,
    fit_polynomial_envelope,
    is_negligible_fit,
)


class TestPolynomialBound:
    def test_evaluation(self):
        b = PolynomialBound(2.0, 3, offset=1.0)
        assert b(2) == 17.0

    def test_dominates(self):
        b = PolynomialBound(1.0, 2)
        assert b.dominates([(1, 1.0), (3, 9.0)])
        assert not b.dominates([(2, 5.0)])

    def test_compose_linear_matches_lemma_43_shape(self):
        # Lemma 4.3: composition of b1/b2-bounded automata is c*(b1+b2)-bounded.
        b1 = PolynomialBound(2.0, 1)
        b2 = PolynomialBound(3.0, 2)
        combined = b1.compose_linear(4.0, b2)
        assert combined.degree == 2
        for k in range(1, 10):
            assert combined(k) >= 4.0 * (b1(k) + b2(k)) - 1e9 * 0  # envelope by construction
            assert combined(k) >= b1(k)
            assert combined(k) >= b2(k)


class TestPolynomialFit:
    def test_linear_data_gets_degree_one(self):
        samples = [(k, 5.0 * k) for k in range(1, 20)]
        fit = fit_polynomial_envelope(samples)
        assert fit.degree == 1
        assert fit.dominates(samples)

    def test_quadratic_data_gets_degree_two(self):
        samples = [(k, 3.0 * k * k + k) for k in range(1, 20)]
        fit = fit_polynomial_envelope(samples)
        assert fit.degree == 2
        assert fit.dominates(samples)

    def test_constant_data_gets_degree_zero(self):
        samples = [(k, 7.0) for k in range(1, 10)]
        fit = fit_polynomial_envelope(samples)
        assert fit.degree == 0
        assert fit.dominates(samples)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial_envelope([])

    @given(st.integers(min_value=0, max_value=3), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_recovers_degree(self, degree, coefficient):
        samples = [(k, coefficient * k ** degree) for k in range(1, 25)]
        fit = fit_polynomial_envelope(samples)
        assert fit.degree == degree
        assert fit.dominates(samples)


class TestNegligibleFit:
    def test_geometric_series_is_negligible(self):
        samples = [(k, 2.0 ** -k) for k in range(1, 15)]
        assert is_negligible_fit(samples)
        fit = fit_negligible_envelope(samples)
        assert fit.ratio == pytest.approx(0.5, rel=1e-6)

    def test_zero_series_is_negligible(self):
        assert is_negligible_fit([(k, 0.0) for k in range(1, 10)])
        fit = fit_negligible_envelope([(k, 0.0) for k in range(1, 10)])
        assert fit.negligible

    def test_constant_series_not_negligible(self):
        assert not is_negligible_fit([(k, 0.25) for k in range(1, 15)])

    def test_inverse_polynomial_not_negligible(self):
        # 1/k decays but not geometrically; the fitted ratio approaches 1.
        samples = [(k, 1.0 / k) for k in range(1, 40)]
        fit = fit_negligible_envelope(samples)
        assert fit.ratio > 0.9

    def test_envelope_dominates_samples(self):
        samples = [(k, 3.0 * 0.7 ** k) for k in range(1, 12)]
        fit = fit_negligible_envelope(samples)
        for k, v in samples:
            assert fit(k) >= v - 1e-9

    def test_single_nonzero_sample(self):
        fit = fit_negligible_envelope([(3, 0.125)])
        assert fit(3) >= 0.125 - 1e-12

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            fit_negligible_envelope([(1, -0.1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_negligible_envelope([])

    @given(st.floats(min_value=0.1, max_value=0.9), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_recovers_ratio(self, ratio, coefficient):
        samples = [(k, coefficient * ratio ** k) for k in range(1, 15)]
        fit = fit_negligible_envelope(samples)
        assert math.isclose(fit.ratio, ratio, rel_tol=1e-6)
        assert fit.negligible


class TestEvaluateBound:
    def test_tabulation(self):
        table = evaluate_bound(lambda k: k * k, [1, 2, 3])
        assert table == ((1, 1.0), (2, 4.0), (3, 9.0))
