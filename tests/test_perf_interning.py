"""Property-based tests of the perf layer's interning and cache soundness.

The contract under test (see ``docs/performance.md``):

* interned Fragment / DiscreteMeasure twins are **the same object**, equal
  and hash-equal to their uninterned counterparts — interning is invisible
  to any equality- or hash-based consumer;
* interning is scoped per automaton: value-equal objects from *different*
  automata are never unified (automaton equality is name-based, so
  cross-automaton twins may differ semantically);
* float-weighted measures are never interned (their equality is
  tolerance-based);
* a mutated automaton plus :func:`repro.perf.cache.invalidate` never serves
  a stale transition;
* the bounded stores respect their entry caps and count evictions;
* ``REPRO_CACHE=off`` (via ``configure``) keeps every store empty.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executions import Fragment
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.obs import metrics
from repro.perf import cache as perf_cache
from repro.perf.cache import _BoundedStore
from repro.probability.measures import DiscreteMeasure, dirac
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import DeterministicScheduler, bound_scheduler
from repro.systems.factory import random_psioa

from tests.helpers import coin_automaton

SEEDS = st.integers(min_value=0, max_value=10_000)


def make(seed, name="X", **kw):
    rng = np.random.default_rng(seed)
    return random_psioa((name, seed), rng, **kw)


def _fresh_cache():
    perf_cache.configure(enabled=True)
    perf_cache.clear()


def _some_fragments(automaton, bound=4):
    scheduler = bound_scheduler(DeterministicScheduler.greedy(), bound)
    return sorted(execution_measure(automaton, scheduler).support(), key=repr)


class TestInternedTwins:
    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_fragment_twins_equal_and_hash_equal(self, seed):
        automaton = make(seed, n_states=5, n_actions=3)
        _fresh_cache()
        for fragment in _some_fragments(automaton):
            twin = Fragment(tuple(fragment.states), tuple(fragment.actions))
            assert twin is not fragment
            canonical = perf_cache.intern_fragment(automaton, fragment)
            canonical_twin = perf_cache.intern_fragment(automaton, twin)
            assert canonical_twin is canonical
            assert canonical == twin and canonical == fragment
            assert hash(canonical) == hash(twin) == hash(fragment)

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_measure_twins_equal_and_identical(self, seed):
        automaton = make(seed, n_states=4, n_actions=3)
        _fresh_cache()
        for state in automaton.states:
            for action in automaton.enabled(state):
                eta = automaton.transitions[(state, action)]
                twin = DiscreteMeasure(dict(eta.items()))
                canonical = perf_cache.intern_measure(automaton, eta)
                canonical_twin = perf_cache.intern_measure(automaton, twin)
                assert canonical_twin is canonical
                assert canonical == twin and hash(canonical) == hash(twin)

    def test_interning_is_scoped_per_automaton(self):
        # Name-based automaton equality means value-equal objects from two
        # automata may be semantically different — they must not unify.
        first = coin_automaton("same-name", Fraction(1, 2))
        second = coin_automaton("same-name", Fraction(1, 3))
        _fresh_cache()
        fragment = Fragment.initial("q0")
        twin = Fragment.initial("q0")
        c1 = perf_cache.intern_fragment(first, fragment)
        c2 = perf_cache.intern_fragment(second, twin)
        assert c1 is fragment and c2 is twin and c1 is not c2

    def test_float_measures_are_never_interned(self):
        automaton = coin_automaton("float", Fraction(1, 2))
        _fresh_cache()
        m1 = DiscreteMeasure({"a": 0.5, "b": 0.5})
        m2 = DiscreteMeasure({"a": 0.5, "b": 0.5})
        assert perf_cache.intern_measure(automaton, m1) is m1
        assert perf_cache.intern_measure(automaton, m2) is m2
        assert perf_cache.CACHE.measure_interner.size() == 0

    def test_repeat_interning_counts_hits(self):
        automaton = coin_automaton("hits", Fraction(1, 2))
        _fresh_cache()
        before = metrics.counter("perf.intern.fragment.hits").value
        fragment = Fragment.initial("q0")
        perf_cache.intern_fragment(automaton, fragment)
        perf_cache.intern_fragment(automaton, Fragment.initial("q0"))
        assert metrics.counter("perf.intern.fragment.hits").value == before + 1


class TestCacheSoundness:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_cached_transitions_match_uncached(self, seed):
        automaton = make(seed, n_states=5, n_actions=3)
        _fresh_cache()
        for state in automaton.states:
            for action in automaton.enabled(state):
                cached = automaton.transition(state, action)
                again = automaton.transition(state, action)
                assert again is cached  # identity: served from the cache
                perf_cache.configure(enabled=False)
                raw = automaton.transition(state, action)
                perf_cache.configure(enabled=True)
                assert cached == raw and dict(cached.items()) == dict(raw.items())

    def test_mutation_plus_invalidate_never_serves_stale(self):
        automaton = TablePSIOA(
            "mut",
            "q0",
            {"q0": Signature(outputs={"go"}), "q1": Signature(), "q2": Signature()},
            {("q0", "go"): dirac("q1")},
        )
        _fresh_cache()
        first = automaton.transition("q0", "go")
        assert first("q1") == 1
        # In-place mutation: retarget the transition, then invalidate.
        automaton.transitions[("q0", "go")] = dirac("q2")
        dropped = perf_cache.invalidate(automaton)
        assert dropped >= 1
        fresh = automaton.transition("q0", "go")
        assert fresh("q2") == 1 and fresh("q1") == 0

    def test_invalidate_drops_decisions_and_measures_of_the_object(self):
        automaton = coin_automaton("inv", Fraction(1, 2))
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 3)
        _fresh_cache()
        execution_measure(automaton, scheduler)
        assert perf_cache.CACHE.measures.size() == 1
        assert perf_cache.CACHE.decisions.size() > 0
        perf_cache.invalidate(automaton)
        assert perf_cache.CACHE.measures.size() == 0
        assert perf_cache.CACHE.decisions.size() == 0
        assert perf_cache.CACHE.transitions.size() == 0

    def test_disabled_cache_stays_empty(self):
        automaton = coin_automaton("off", Fraction(1, 2))
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 3)
        perf_cache.configure(enabled=False)
        perf_cache.clear()
        execution_measure(automaton, scheduler)
        automaton.transition("q0", "toss")
        stats = perf_cache.stats()
        assert all(block["size"] == 0 for block in stats.values())

    def test_bounded_store_respects_entry_cap(self):
        store = _BoundedStore("test-cap", max_owners=4, max_entries=3)
        owner_obj = object()
        for i in range(10):
            store.put(id(owner_obj), owner_obj, ("key", i), i)
        assert store.size() == 3
        assert store.evictions.value == 7
        # The survivors are the most recently inserted keys.
        assert store.get(id(owner_obj), ("key", 9)) == 9
        assert store.get(id(owner_obj), ("key", 0)) is None

    def test_bounded_store_respects_owner_cap(self):
        store = _BoundedStore("test-owners", max_owners=2, max_entries=8)
        keep = [object() for _ in range(3)]
        for obj in keep:
            store.put(id(obj), obj, "k", "v")
        # Third owner evicted the least-recently-used first owner wholesale.
        assert store.get(id(keep[0]), "k") is None
        assert store.get(id(keep[1]), "k") == "v"
        assert store.get(id(keep[2]), "k") == "v"

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_unfolding_identical_with_and_without_cache(self, seed):
        automaton = make(seed, n_states=5, n_actions=3)
        scheduler = bound_scheduler(DeterministicScheduler.greedy(), 5)
        _fresh_cache()
        cached = execution_measure(automaton, scheduler)
        memoized = execution_measure(automaton, scheduler)
        assert memoized is cached
        perf_cache.configure(enabled=False)
        uncached = execution_measure(automaton, scheduler)
        perf_cache.configure(enabled=True)
        assert dict(cached.items()) == dict(uncached.items())
