"""Tests for PSIOA construction and validation (paper Definition 2.1)."""

from fractions import Fraction

import pytest

from repro.core.psioa import PSIOA, PsioaError, TablePSIOA, reachable_states, validate_psioa
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac

from tests.helpers import coin_automaton, fair_coin, listener, ticker


class TestTablePsioa:
    def test_signature_lookup(self):
        coin = fair_coin()
        assert coin.signature("q0").outputs == {"toss"}
        assert coin.signature("qF").is_empty

    def test_transition_lookup(self):
        coin = fair_coin()
        eta = coin.transition("q0", "toss")
        assert eta("qH") == Fraction(1, 2)
        assert eta("qT") == Fraction(1, 2)

    def test_unknown_state_raises(self):
        with pytest.raises(PsioaError):
            fair_coin().signature("nope")

    def test_unknown_transition_raises(self):
        with pytest.raises(PsioaError):
            fair_coin().transition("q0", "head")

    def test_start_state_must_exist(self):
        with pytest.raises(PsioaError):
            TablePSIOA("bad", "missing", {"s": Signature()}, {})

    def test_enabled_equals_signature_actions(self):
        coin = fair_coin()
        assert coin.enabled("qH") == {"head"}
        assert coin.enabled("qF") == frozenset()

    def test_try_transition_outside_signature_is_none(self):
        assert fair_coin().try_transition("qH", "tail") is None

    def test_steps_from(self):
        coin = fair_coin()
        steps = coin.steps_from("q0", "toss")
        assert steps == {("q0", "toss", "qH"), ("q0", "toss", "qT")}

    def test_acts_universal_set(self):
        coin = fair_coin()
        assert coin.acts() == {"toss", "head", "tail"}

    def test_identity_by_name(self):
        assert fair_coin("x") == fair_coin("x")
        assert fair_coin("x") != fair_coin("y")
        assert len({fair_coin("x"), fair_coin("x")}) == 1


class TestReachability:
    def test_coin_reachable_states(self):
        assert set(reachable_states(fair_coin())) == {"q0", "qH", "qT", "qF"}

    def test_deterministic_coin_skips_branch(self):
        coin = coin_automaton("det", 1)
        assert set(reachable_states(coin)) == {"q0", "qH", "qF"}

    def test_ticker_chain(self):
        assert reachable_states(ticker("t", 3)) == [0, 1, 2, 3]

    def test_exploration_bound(self):
        # An infinite-state automaton must trip the guard, not hang.
        def sig(q):
            return Signature(outputs={"step"})

        def trans(q, a):
            return dirac(q + 1)

        infinite = PSIOA("inf", 0, sig, trans)
        with pytest.raises(PsioaError):
            reachable_states(infinite, max_states=50)


class TestValidation:
    def test_valid_automaton_passes(self):
        validate_psioa(fair_coin())
        validate_psioa(ticker("t", 5))
        validate_psioa(listener("l", {"a", "b"}))

    def test_missing_transition_detected(self):
        signatures = {"s": Signature(outputs={"go"})}
        bad = TablePSIOA("bad", "s", signatures, {})
        with pytest.raises(PsioaError, match="no transition"):
            validate_psioa(bad)

    def test_subprobability_transition_detected(self):
        signatures = {"s": Signature(outputs={"go"}), "t": Signature()}
        transitions = {("s", "go"): DiscreteMeasure({"t": Fraction(1, 2)}, require_probability=False)}
        bad = TablePSIOA("bad", "s", signatures, transitions)
        with pytest.raises(PsioaError, match="mass"):
            validate_psioa(bad)

    def test_transition_outside_signature_detected(self):
        signatures = {"s": Signature(outputs={"go"}), "t": Signature()}
        transitions = {
            ("s", "go"): dirac("t"),
            ("s", "sneaky"): dirac("t"),
        }
        bad = TablePSIOA("bad", "s", signatures, transitions)
        with pytest.raises(PsioaError, match="outside the signature"):
            validate_psioa(bad)

    def test_stray_target_detected_with_declared_states(self):
        signatures = {"s": Signature(outputs={"go"})}
        transitions = {("s", "go"): dirac("elsewhere")}
        bad = TablePSIOA("bad", "s", signatures, transitions)
        with pytest.raises(PsioaError, match="outside the declared set"):
            validate_psioa(bad, states=["s"])

    def test_lazy_psioa_validation(self):
        # A functionally-defined automaton over a finite orbit validates too.
        def sig(q):
            return Signature(outputs={"inc"}) if q < 3 else Signature()

        def trans(q, a):
            if a != "inc" or q >= 3:
                raise KeyError(a)
            return dirac(q + 1)

        validate_psioa(PSIOA("lazy", 0, sig, trans))
