"""The ``repro.api`` facade: RunConfig resolution, precedence, wrappers.

The resolver's contract is one documented precedence — explicit overrides
> environment gates > defaults — applied in exactly one place.  The tests
pin that order, the normalizations (spec canonicalization, abspath,
``profile_dir`` implies ``profile``), the historic precedence bug it
fixes (``REPRO_CACHE=off`` used to be clobbered by the CLI flag default),
and the facade wrappers + deprecation shims the CLI/service build on.
"""

import json
import os
import warnings

import pytest

from repro import api
from repro.api import ConfigError, RunConfig, resolve_config
from repro.obs.report import ReportSchemaError, validate_report


class TestResolverPrecedence:
    def test_defaults_without_env_or_flags(self):
        config = resolve_config(env={})
        assert config == RunConfig()
        assert config.cache == "on" and config.backend is None
        assert not config.supervise and not config.profile

    def test_env_gates_fill_unspecified_fields(self, tmp_path):
        env = {
            "REPRO_CACHE": "off",
            "REPRO_CACHE_DIR": str(tmp_path / "store"),
            "REPRO_BACKEND": "fork:2",
            "REPRO_SUPERVISE": "on",
            "REPRO_CHUNK_DEADLINE": "30",
            "REPRO_PROFILE": "on",
            "REPRO_TRACE": "on",
            "REPRO_PROGRESS": "on",
        }
        config = resolve_config(env=env)
        assert config.cache == "off"
        assert config.cache_dir == os.path.abspath(str(tmp_path / "store"))
        assert config.backend == "fork:2"
        assert config.supervise and config.profile and config.trace
        assert config.progress
        assert config.chunk_deadline == 30.0

    def test_explicit_overrides_beat_env(self, tmp_path):
        env = {"REPRO_CACHE": "off", "REPRO_BACKEND": "fork:2"}
        config = resolve_config(env=env, cache="on", backend="serial")
        assert config.cache == "on"
        assert config.backend == "serial"

    def test_switch_false_falls_through_to_env(self):
        # A store_true flag the user did not pass must not force-disable
        # a feature the environment asked for.
        config = resolve_config(env={"REPRO_SUPERVISE": "on"}, supervise=False)
        assert config.supervise

    def test_backend_spec_is_canonicalized(self):
        config = resolve_config(env={}, backend="fork")
        assert config.backend and config.backend.startswith("fork:")
        assert config.backend != "fork"

    def test_invalid_backend_spec_is_config_error(self):
        with pytest.raises(ConfigError, match="backend"):
            resolve_config(env={}, backend="warp:9")

    def test_zero_timeout_means_unbounded(self):
        assert resolve_config(env={}, timeout=0).timeout is None
        assert resolve_config(env={}, timeout=12.5).timeout == 12.5

    def test_profile_dir_implies_profile(self, tmp_path):
        config = resolve_config(env={}, profile_dir=str(tmp_path))
        assert config.profile

    def test_parallel_without_isolation_rejected(self):
        with pytest.raises(ConfigError, match="isolation"):
            resolve_config(env={}, parallel=2, isolated=False)

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            resolve_config(env={}, warp_factor=9)

    def test_env_chunk_deadline_must_be_numeric(self):
        with pytest.raises(ConfigError, match="REPRO_CHUNK_DEADLINE"):
            resolve_config(env={"REPRO_CHUNK_DEADLINE": "soon"})


class TestRunConfigShape:
    def test_describe_round_trips_through_from_dict(self):
        config = resolve_config(env={}, parallel=2, cache="stats", seed=7)
        assert RunConfig.from_dict(config.describe()) == config

    def test_describe_is_json_safe(self):
        payload = json.dumps(resolve_config(env={}).describe())
        assert "parallel" in json.loads(payload)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            RunConfig.from_dict({"cache": "on", "bogus": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(cache="sideways")
        with pytest.raises(ConfigError):
            RunConfig(parallel=0)
        with pytest.raises(ConfigError):
            RunConfig(retries=-1)
        with pytest.raises(ConfigError):
            RunConfig(seed="lucky")

    def test_apply_exports_the_resolved_gates(self, tmp_path, monkeypatch):
        # apply() honors a pre-set seed (chaos CI pins one); clear it with
        # restore registered so the assertion sees apply()'s own export.
        monkeypatch.setenv("REPRO_SUPERVISE_SEED", "placeholder")
        monkeypatch.delenv("REPRO_SUPERVISE_SEED")
        store = str(tmp_path / "store")
        config = resolve_config(
            env={}, cache="off", cache_dir=store, backend="fork:2",
            supervise=True, seed=11, chunk_deadline=45.0,
        )
        config.apply()
        assert os.environ["REPRO_CACHE"] == "off"
        assert os.environ["REPRO_CACHE_DIR"] == os.path.abspath(store)
        assert os.environ["REPRO_BACKEND"] == "fork:2"
        assert os.environ["REPRO_SUPERVISE"] == "on"
        assert os.environ["REPRO_SUPERVISE_SEED"] == "11"
        assert os.environ["REPRO_CHUNK_DEADLINE"] == "45.0"
        # A default config clears what it does not ask for, so children
        # never inherit a stale gate from a previous apply.
        resolve_config(env={}).apply()
        assert os.environ["REPRO_CACHE"] == "on"
        assert "REPRO_BACKEND" not in os.environ
        assert "REPRO_SUPERVISE" not in os.environ


class TestCacheEnvPrecedenceFix:
    """``REPRO_CACHE=off`` with no ``--cache`` flag must actually turn the
    cache off — historically the flag's default silently clobbered it."""

    def test_env_off_reaches_the_report(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE", "off")
        out = tmp_path / "report.json"
        assert runner.main(["E1", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["cache"]["enabled"] is False
        assert payload["summary"]["config"]["cache"] == "off"

    def test_explicit_flag_still_wins_over_env(self, tmp_path, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setenv("REPRO_CACHE", "off")
        out = tmp_path / "report.json"
        assert runner.main(["E1", "--cache", "on", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["cache"]["enabled"] is True
        assert payload["summary"]["config"]["cache"] == "on"


class TestFacade:
    def test_run_experiment_returns_outcome(self):
        outcome = api.run_experiment("E1")
        assert outcome.ok and outcome.experiment == "E1"

    def test_run_experiment_unknown_id(self):
        with pytest.raises(api.UnknownExperimentError):
            api.run_experiment("E99")

    def test_run_sweep_returns_validated_report(self, tmp_path):
        out = tmp_path / "report.json"
        payload = api.run_sweep(["E1"], metrics_out=str(out))
        validate_report(payload)
        assert payload["summary"]["config"]["parallel"] == 1
        assert json.loads(out.read_text())["summary"] == payload["summary"]

    def test_run_suite_reports_failures_in_exit_code(self, monkeypatch):
        from repro.experiments import common

        monkeypatch.setitem(
            common.ALL_EXPERIMENTS, "EX-CRASH",
            ("tests.faultyexp.crashing", "always raises"),
        )
        result = api.run_suite(["EX-CRASH", "E1"])
        assert result.exit_code == 1 and not result.ok
        assert [r["status"] for r in result.records] == ["error", "pass"]
        validate_report(result.report)

    def test_unknown_experiments_raise_before_running(self):
        with pytest.raises(api.UnknownExperimentError) as excinfo:
            api.run_suite(["E1", "E98", "E99"])
        assert excinfo.value.unknown == ["E98", "E99"]

    def test_load_report_round_trip(self, tmp_path):
        out = tmp_path / "report.json"
        payload = api.run_sweep(["E1"], metrics_out=str(out))
        assert api.load_report(str(out)) == json.loads(json.dumps(payload))

    def test_load_report_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        with pytest.raises(ReportSchemaError):
            api.load_report(str(bad))

    def test_list_experiments_matches_registry(self):
        from repro.experiments.common import ALL_EXPERIMENTS

        listed = api.list_experiments()
        assert list(listed) == list(ALL_EXPERIMENTS)
        assert listed["E1"] == ALL_EXPERIMENTS["E1"][1]


class TestDeprecationShims:
    def test_runner_deep_imports_warn_but_resolve(self):
        from repro.experiments import runner
        from repro.obs import report as obs_report

        with pytest.warns(DeprecationWarning, match="repro.obs.report"):
            shimmed = runner.build_report
        assert shimmed is obs_report.build_report
        with pytest.warns(DeprecationWarning):
            assert runner.ALL_EXPERIMENTS is not None
        with pytest.warns(DeprecationWarning):
            assert runner.SupervisionPolicy is not None

    def test_unknown_runner_attribute_still_raises(self):
        from repro.experiments import runner

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AttributeError):
                runner.definitely_not_a_thing
