"""The self-healing supervision layer: policy, backoff, breakers, pool.

Unit-tests the pure mechanisms (policy resolution, seeded backoff, the
circuit-breaker state machine) and then the ``pool:N`` backend end to end
against real worker subprocesses: lazy spawn (no leaked processes from
spec validation), respawn of a killed worker, poison-chunk quarantine,
heartbeat keep-alive of slow chunks, and the determinism bar — every
backoff delay the supervisor logged must be recomputable from the policy
seed alone.
"""

import os
import signal
import time

import pytest

from repro.obs import metrics
from repro.perf.backends import BackendSpecError, make_backend, normalize_spec
from repro.perf.parallel import parallel_map
from repro.perf.supervise import (
    CircuitBreaker,
    LocalPoolBackend,
    SupervisionLog,
    SupervisionPolicy,
    backoff_delay,
)


# -- policy resolution ----------------------------------------------------------


class TestSupervisionPolicy:
    def test_defaults_are_safe(self):
        policy = SupervisionPolicy()
        assert policy.enabled is False
        assert policy.chunk_deadline_s == 600.0  # the settimeout(None) fix
        assert policy.connect_timeout_s == 10.0

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISE", "on")
        monkeypatch.setenv("REPRO_SUPERVISE_SEED", "42")
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "12.5")
        monkeypatch.setenv("REPRO_SOCKET_TIMEOUT", "3")
        policy = SupervisionPolicy.from_env()
        assert policy.enabled and policy.seed == 42
        assert policy.chunk_deadline_s == 12.5
        assert policy.connect_timeout_s == 3.0

    def test_deadline_env_off_means_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "off")
        assert SupervisionPolicy.from_env().chunk_deadline_s is None
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "0")
        assert SupervisionPolicy.from_env().chunk_deadline_s is None

    def test_spec_options_win_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISE", "off")
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "600")
        policy = SupervisionPolicy.from_env(
            {"supervise": "on", "deadline": "7", "timeout": "2", "heartbeat": "0.5"}
        )
        assert policy.enabled
        assert policy.chunk_deadline_s == 7.0
        assert policy.connect_timeout_s == 2.0
        assert policy.heartbeat_s == 0.5

    def test_any_policy_field_is_an_option(self):
        policy = SupervisionPolicy().with_options(
            {"breaker_threshold": "5", "backoff_max_s": "1.25"}
        )
        assert policy.breaker_threshold == 5
        assert policy.backoff_max_s == 1.25

    def test_unknown_option_raises(self):
        with pytest.raises(BackendSpecError, match="unknown supervision option"):
            SupervisionPolicy().with_options({"warp_factor": "9"})

    def test_non_numeric_option_raises(self):
        with pytest.raises(BackendSpecError):
            SupervisionPolicy().with_options({"breaker_threshold": "many"})

    def test_frame_timeout_heartbeats_only_when_supervised_v3(self):
        supervised = SupervisionPolicy(enabled=True, heartbeat_s=1.0, heartbeat_grace=5.0)
        assert supervised.frame_timeout_s(3) == 5.0
        assert supervised.frame_timeout_s(2) == supervised.chunk_deadline_s
        unsupervised = SupervisionPolicy(enabled=False)
        assert unsupervised.frame_timeout_s(3) == unsupervised.chunk_deadline_s


# -- seeded backoff -------------------------------------------------------------


class TestBackoffDelay:
    def test_pure_function_of_seed_worker_attempt(self):
        policy = SupervisionPolicy(seed=7)
        schedule = [backoff_delay(policy, "worker0", a) for a in range(5)]
        assert schedule == [backoff_delay(policy, "worker0", a) for a in range(5)]

    def test_bounded_and_roughly_exponential(self):
        policy = SupervisionPolicy(seed=1)
        for attempt in range(10):
            delay = backoff_delay(policy, "w", attempt)
            cap = policy.backoff_max_s * (1 + policy.backoff_jitter)
            assert 0.0 <= delay <= cap
        # Without jitter the sequence is exactly base * factor**attempt, capped.
        plain = SupervisionPolicy(backoff_jitter=0.0)
        assert [backoff_delay(plain, "w", a) for a in range(4)] == [
            0.05, 0.1, 0.2, 0.4
        ]
        assert backoff_delay(plain, "w", 30) == plain.backoff_max_s

    def test_seed_and_worker_shape_the_jitter(self):
        a = [backoff_delay(SupervisionPolicy(seed=1), "w", n) for n in range(4)]
        b = [backoff_delay(SupervisionPolicy(seed=2), "w", n) for n in range(4)]
        c = [backoff_delay(SupervisionPolicy(seed=1), "x", n) for n in range(4)]
        assert a != b and a != c


# -- the breaker state machine --------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold_exactly_once(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=60)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.record_failure() is True  # this one opened it
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.record_failure() is False  # already open: no re-announcement

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.08)
        assert breaker.state == "half-open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_failed_half_open_trial_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        time.sleep(0.08)
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"


class TestSupervisionLog:
    def test_ordered_and_copy_safe(self):
        log = SupervisionLog()
        log.record("retry", worker="w0")
        log.record("backoff", worker="w0", delay_s=0.1)
        events = log.events
        assert [e["event"] for e in events] == ["retry", "backoff"]
        events.clear()  # mutating the copy must not touch the log
        assert len(log) == 2


# -- the pool backend, end to end -----------------------------------------------


def _square(x):
    return x * x


def _poison(x):
    # Kills its hosting *worker* process (the chunk runs in a fork child,
    # so the worker is our parent); harmless in the caller, where the
    # quarantine fallback recomputes it safely.
    if x == 3 and os.environ.get("REPRO_PERF_WORKER"):
        os.kill(os.getppid(), signal.SIGKILL)
        time.sleep(5)  # the orphaned child must not answer either
    return x * 2


def _slow_identity(x):
    time.sleep(0.6)
    return x


class TestLocalPoolBackend:
    def test_spec_normalizes_with_supervision_on(self):
        assert normalize_spec("pool:2") == "pool:2;supervise=on"
        assert (
            normalize_spec("pool:2;supervise=off") == "pool:2;supervise=off"
        )

    def test_bad_specs_raise(self):
        for bad in ("pool", "pool:", "pool:x", "pool:0"):
            with pytest.raises(BackendSpecError):
                normalize_spec(bad)

    def test_validation_and_describe_spawn_nothing(self):
        normalize_spec("pool:2")
        backend = make_backend("pool:2")
        try:
            info = backend.describe()
            assert info["supervised"] is True
            assert all(p.process is None for p in backend.worker_processes)
        finally:
            backend.close()

    def test_sweep_matches_serial(self):
        backend = make_backend("pool:2")
        try:
            items = list(range(11))
            assert parallel_map(_square, items, backend=backend) == [
                x * x for x in items
            ]
            assert all(p.alive for p in backend.worker_processes)
        finally:
            backend.close()

    def test_killed_worker_is_respawned(self):
        respawns = metrics.counter("perf.supervise.respawns")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        respawns_before, fallbacks_before = respawns.value, fallbacks.value
        backend = make_backend("pool:1;backoff_base_s=0.01;backoff_max_s=0.05")
        try:
            assert parallel_map(_square, [1, 2], backend=backend) == [1, 4]
            victim = backend.worker_processes[0]
            victim.process.send_signal(signal.SIGKILL)
            victim.process.wait()
            assert parallel_map(_square, [3, 4], backend=backend) == [9, 16]
            replacement = backend.worker_processes[0]
            assert replacement is not victim and replacement.alive
        finally:
            backend.close()
        assert respawns.value == respawns_before + 1
        assert fallbacks.value == fallbacks_before  # healed, not fallen back

    def test_respawn_budget_exhausted_falls_back_to_caller(self):
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        backend = make_backend(
            "pool:1;max_respawns=0;max_reconnect_attempts=1;"
            "backoff_base_s=0.01;backoff_max_s=0.05;breaker_cooldown_s=0.05"
        )
        try:
            assert parallel_map(_square, [1, 2], backend=backend) == [1, 4]
            victim = backend.worker_processes[0]
            victim.process.send_signal(signal.SIGKILL)
            victim.process.wait()
            assert parallel_map(_square, [3, 4], backend=backend) == [9, 16]
        finally:
            backend.close()
        assert fallbacks.value > before

    def test_poison_chunk_quarantined_not_retried_forever(self):
        quarantined = metrics.counter("perf.supervise.quarantined_chunks")
        before = quarantined.value
        backend = make_backend(
            "pool:2;poison_threshold=1;backoff_base_s=0.01;backoff_max_s=0.05"
        )
        try:
            items = list(range(6))  # item 3 kills whichever worker runs it
            assert parallel_map(_poison, items, backend=backend) == [
                x * 2 for x in items
            ]
        finally:
            backend.close()
        assert quarantined.value == before + 1
        events = [e["event"] for e in backend.supervision_log.events]
        assert "quarantine" in events

    def test_heartbeats_keep_slow_chunks_alive(self):
        heartbeats = metrics.counter("perf.supervise.heartbeats")
        before = heartbeats.value
        # Frame timeout = heartbeat_s * grace = 0.3s, far below the 0.6s
        # the chunk takes: without heartbeats this sweep would be declared
        # dead and fall back; with them it completes remotely.
        backend = make_backend("pool:1;heartbeat=0.1;heartbeat_grace=3")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        fallbacks_before = fallbacks.value
        try:
            assert parallel_map(_slow_identity, [5], backend=backend) == [5]
        finally:
            backend.close()
        assert heartbeats.value > before
        assert fallbacks.value == fallbacks_before

    def test_supervision_log_is_replayable_from_the_seed(self):
        backend = make_backend(
            "pool:1;seed=11;backoff_base_s=0.01;backoff_max_s=0.05"
        )
        try:
            parallel_map(_square, [1], backend=backend)
            victim = backend.worker_processes[0]
            victim.process.send_signal(signal.SIGKILL)
            victim.process.wait()
            parallel_map(_square, [2], backend=backend)
            policy = backend.policy
            backoffs = [
                e for e in backend.supervision_log.events if e["event"] == "backoff"
            ]
            assert backoffs, "the killed worker must have logged backoff decisions"
            for event in backoffs:
                expected = backoff_delay(policy, event["worker"], event["attempt"])
                assert event["delay_s"] == round(expected, 9)
        finally:
            backend.close()
