"""Tests for strong probabilistic simulation relations (Segala lineage)."""

from fractions import Fraction

import pytest

from repro.analysis.simulation import (
    is_strong_simulation,
    lifting_feasible,
    simulation_counterexample,
)
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac, uniform
from repro.semantics.balance import perception_distance
from repro.semantics.insight import trace_insight
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin

from tests.helpers import fair_coin


class TestLifting:
    def test_identical_measures_identity_relation(self):
        eta = uniform(["a", "b"])
        assert lifting_feasible(eta, eta, lambda x, y: x == y)

    def test_full_relation_always_feasible(self):
        eta = uniform(["a", "b"])
        theta = DiscreteMeasure({"x": Fraction(1, 3), "y": Fraction(2, 3)})
        assert lifting_feasible(eta, theta, lambda x, y: True)

    def test_empty_relation_infeasible(self):
        eta = dirac("a")
        theta = dirac("x")
        assert not lifting_feasible(eta, theta, lambda x, y: False)

    def test_split_state_coupling(self):
        # eta splits one outcome of theta into two halves.
        eta = DiscreteMeasure({"h1": Fraction(1, 4), "h2": Fraction(1, 4), "t": Fraction(1, 2)})
        theta = DiscreteMeasure({"H": Fraction(1, 2), "T": Fraction(1, 2)})
        related = lambda x, y: (x in ("h1", "h2") and y == "H") or (x == "t" and y == "T")
        assert lifting_feasible(eta, theta, related)

    def test_weight_mismatch_infeasible(self):
        eta = DiscreteMeasure({"h": Fraction(3, 4), "t": Fraction(1, 4)})
        theta = DiscreteMeasure({"H": Fraction(1, 2), "T": Fraction(1, 2)})
        related = lambda x, y: (x, y) in {("h", "H"), ("t", "T")}
        assert not lifting_feasible(eta, theta, related)

    def test_partial_bipartite_needs_enough_capacity(self):
        # h can map to H only; t to H or T: feasible iff weights fit.
        eta = DiscreteMeasure({"h": Fraction(1, 4), "t": Fraction(3, 4)})
        theta = DiscreteMeasure({"H": Fraction(1, 2), "T": Fraction(1, 2)})
        related = lambda x, y: (x, y) in {("h", "H"), ("t", "H"), ("t", "T")}
        assert lifting_feasible(eta, theta, related)
        related_tight = lambda x, y: (x, y) in {("h", "H"), ("t", "T")}
        assert not lifting_feasible(eta, theta, related_tight)


def split_coin(name="split"):
    """A fair coin whose heads branch passes through two intermediate
    states — a refinement of the plain coin."""
    signatures = {
        "q0": Signature(outputs={"toss"}),
        "qH1": Signature(outputs={"head"}),
        "qH2": Signature(outputs={"head"}),
        "qT": Signature(outputs={"tail"}),
        "qF": Signature(),
    }
    transitions = {
        ("q0", "toss"): DiscreteMeasure(
            {"qH1": Fraction(1, 4), "qH2": Fraction(1, 4), "qT": Fraction(1, 2)}
        ),
        ("qH1", "head"): dirac("qF"),
        ("qH2", "head"): dirac("qF"),
        ("qT", "tail"): dirac("qF"),
    }
    return TablePSIOA(name, "q0", signatures, transitions)


REFINEMENT = {
    ("q0", "q0"),
    ("qH1", "qH"),
    ("qH2", "qH"),
    ("qT", "qT"),
    ("qF", "qF"),
}


class TestStrongSimulation:
    def test_identity_is_a_simulation(self):
        a = fair_coin("a")
        b = fair_coin("b")
        assert is_strong_simulation(a, b, lambda x, y: x == y)

    def test_refinement_simulation(self):
        assert is_strong_simulation(split_coin(), fair_coin(), REFINEMENT)

    def test_wrong_weights_rejected(self):
        biased = coin("biased", Fraction(3, 4))
        fair = fair_coin()
        witness = simulation_counterexample(
            biased, fair, lambda x, y: x == y
        )
        assert witness is not None
        assert "coupling" in witness

    def test_missing_action_rejected(self):
        fair = fair_coin()
        mute = TablePSIOA("mute", "q0", {"q0": Signature()}, {})
        witness = simulation_counterexample(fair, mute, lambda x, y: True)
        assert "enabled in A but not in B" in witness

    def test_unrelated_starts_rejected(self):
        a = fair_coin("a")
        b = fair_coin("b")
        witness = simulation_counterexample(a, b, lambda x, y: False)
        assert "start states" in witness

    def test_explicit_pairs_to_check(self):
        assert is_strong_simulation(
            split_coin(),
            fair_coin(),
            REFINEMENT,
            pairs_to_check=list(REFINEMENT),
        )

    def test_soundness_simulation_implies_equal_perception(self):
        """Related systems are indistinguishable: the observational reading
        of a simulation relation, checked via the exact semantics."""
        from tests.test_semantics_insight_balance import observer

        refined = split_coin()
        abstract = fair_coin()
        assert is_strong_simulation(refined, abstract, REFINEMENT)
        env = observer()
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        assert (
            perception_distance(
                trace_insight(), env, refined, sched, abstract, sched
            )
            == 0
        )
