"""Tests for hiding, renaming (Defs 2.7, 2.8, Lemma A.1) and PSIOA
composition (Defs 2.5, 2.18)."""

from fractions import Fraction

import pytest

from repro.core.composition import (
    check_partial_compatibility,
    compatible_at_state,
    compose,
    joint_transition,
    project,
)
from repro.core.psioa import PsioaError, validate_psioa, reachable_states
from repro.core.renaming import StateActionRenaming, hide_psioa, rename_psioa
from repro.core.signature import Signature
from repro.probability.measures import dirac

from tests.helpers import coin_automaton, fair_coin, listener, relay, ticker


class TestHiding:
    def test_hide_moves_output_to_internal(self):
        coin = fair_coin()
        hidden = hide_psioa(coin, lambda q: {"toss"})
        assert "toss" in hidden.signature("q0").internals
        assert hidden.signature("qH").outputs == {"head"}  # untouched elsewhere

    def test_hide_preserves_transitions(self):
        coin = fair_coin()
        hidden = hide_psioa(coin, lambda q: {"toss"})
        assert hidden.transition("q0", "toss") == coin.transition("q0", "toss")

    def test_hide_state_dependent(self):
        t = ticker("t", 2)
        hidden = hide_psioa(t, lambda q: {"tick"} if q == 0 else set())
        assert hidden.signature(0).internals == {"tick"}
        assert hidden.signature(1).outputs == {"tick"}

    def test_hidden_automaton_still_valid(self):
        validate_psioa(hide_psioa(fair_coin(), lambda q: {"toss", "head", "tail"}))

    def test_hide_derived_name(self):
        assert hide_psioa(fair_coin(), lambda q: set()).name == ("hide", "fair")


class TestRenaming:
    def test_uniform_rename(self):
        coin = fair_coin()
        renamed = rename_psioa(coin, lambda a: ("r", a))
        assert renamed.signature("q0").outputs == {("r", "toss")}
        eta = renamed.transition("q0", ("r", "toss"))
        assert eta == coin.transition("q0", "toss")

    def test_lemma_a1_renamed_automaton_is_valid_psioa(self):
        validate_psioa(rename_psioa(fair_coin(), lambda a: ("r", a)))

    def test_unknown_renamed_action_raises(self):
        renamed = rename_psioa(fair_coin(), lambda a: ("r", a))
        with pytest.raises(PsioaError):
            renamed.transition("q0", "toss")  # original name no longer in signature

    def test_state_dependent_rename(self):
        t = ticker("t", 2)
        renaming = StateActionRenaming(lambda q, a: (a, q))
        renamed = rename_psioa(t, renaming)
        assert renamed.signature(0).outputs == {("tick", 0)}
        assert renamed.signature(1).outputs == {("tick", 1)}
        assert renamed.transition(0, ("tick", 0)) == dirac(1)

    def test_non_injective_rename_detected(self):
        sigs = {"s": Signature(outputs={"a", "b"}), "t": Signature()}
        from repro.core.psioa import TablePSIOA

        base = TablePSIOA("base", "s", sigs, {("s", "a"): dirac("t"), ("s", "b"): dirac("t")})
        renamed = rename_psioa(base, lambda a: "same")
        with pytest.raises(Exception):
            renamed.transition("s", "same")

    def test_rename_roundtrip(self):
        coin = fair_coin()
        there = rename_psioa(coin, lambda a: ("r", a))
        back = rename_psioa(there, lambda a: a[1], name="back")
        assert back.signature("q0") == coin.signature("q0")
        assert back.transition("q0", "toss") == coin.transition("q0", "toss")


class TestComposition:
    def test_joint_state_and_signature(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        system = compose(coin, ear)
        assert system.start == ("q0", "s")
        sig = system.signature(system.start)
        assert sig.outputs == {"toss"}
        # Definition 2.4 is per-state: only the currently-matched input
        # ("toss") leaves the input set; "head"/"tail" are not outputs of the
        # coin *at this state*, so they stay inputs of the composition.
        assert sig.inputs == {"head", "tail"}

    def test_joint_transition_moves_both(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        system = compose(coin, ear)
        eta = system.transition(("q0", "s"), "toss")
        assert eta(("qH", "s")) == Fraction(1, 2)
        assert eta(("qT", "s")) == Fraction(1, 2)

    def test_nonparticipant_stays_put(self):
        t1 = ticker("t1", 1, action="a")
        t2 = ticker("t2", 1, action="b")
        system = compose(t1, t2)
        eta = system.transition((0, 0), "a")
        assert eta((1, 0)) == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(PsioaError):
            compose(fair_coin("x"), fair_coin("x"))

    def test_empty_composition_rejected(self):
        with pytest.raises(PsioaError):
            compose()

    def test_action_not_enabled_raises(self):
        system = compose(fair_coin(), listener("ear", {"toss"}))
        with pytest.raises(PsioaError):
            system.transition(system.start, "head")

    def test_output_clash_detected_on_access(self):
        a = ticker("a", 1, action="x")
        b = ticker("b", 1, action="x")
        system = compose(a, b)
        with pytest.raises(PsioaError, match="incompatible"):
            system.signature(system.start)

    def test_projection(self):
        coin = fair_coin()
        ear = listener("ear", {"toss", "head", "tail"})
        system = compose(coin, ear)
        assert project(("qH", "s"), system, "fair") == "qH"
        assert project(("qH", "s"), system, "ear") == "s"
        with pytest.raises(KeyError):
            project(("qH", "s"), system, "nope")

    def test_composed_automaton_validates(self):
        system = compose(fair_coin(), listener("ear", {"toss", "head", "tail"}))
        validate_psioa(system)

    def test_relay_pipeline_reaches_end(self):
        # coin announces; relay forwards 'head' to 'cheer'.
        coin = coin_automaton("det", 1)
        fwd = relay("fwd", "head", "cheer")
        system = compose(coin, fwd)
        states = set(reachable_states(system))
        assert ("qF", "done") in states

    def test_compatible_at_state_helper(self):
        a = ticker("a", 1, action="x")
        b = ticker("b", 1, action="x")
        assert not compatible_at_state([a, b], (0, 0))
        assert compatible_at_state([a, b], (1, 1))

    def test_joint_transition_helper(self):
        coin = fair_coin()
        ear = listener("ear", {"toss"})
        eta = joint_transition([coin, ear], ("q0", "s"), "toss")
        assert eta(("qH", "s")) == Fraction(1, 2)


class TestPartialCompatibility:
    def test_compatible_system(self):
        assert check_partial_compatibility([fair_coin(), listener("ear", {"toss", "head", "tail"})])

    def test_incompatible_at_start(self):
        assert not check_partial_compatibility([ticker("a", 1, action="x"), ticker("b", 1, action="x")])

    def test_incompatible_only_later(self):
        # Two tickers over distinct actions but whose *second* action clashes.
        from repro.core.psioa import TablePSIOA

        def two_phase(name, first, second):
            sigs = {
                0: Signature(outputs={first}),
                1: Signature(outputs={second}),
                2: Signature(),
            }
            trans = {(0, first): dirac(1), (1, second): dirac(2)}
            return TablePSIOA(name, 0, sigs, trans)

        a = two_phase("a", "a1", "clash")
        b = two_phase("b", "b1", "clash")
        assert not check_partial_compatibility([a, b])

    def test_exploration_guard(self):
        from repro.core.psioa import PSIOA

        def sig(q):
            return Signature(outputs={("step", q % 2)})

        def trans(q, a):
            return dirac(q + 1)

        infinite_a = PSIOA("ia", 0, sig, trans)
        quiet = listener("quiet", set())
        with pytest.raises(PsioaError):
            check_partial_compatibility([infinite_a, quiet], max_states=32)
