"""Integration tests: the experiment harness itself.

Each experiment is exercised end-to-end (fast sweeps) and its theorem-shape
assertion checked; the heavier experiments run in benchmarks/ only, the
cheap ones are also part of the regular test suite so a regression in any
layer surfaces here immediately.
"""

import pytest

from repro.experiments.common import ALL_EXPERIMENTS, run_experiment

CHEAP = ["E3", "E4", "E5", "E7", "E8", "E9", "E12", "E14", "E15"]


@pytest.mark.parametrize("experiment_id", CHEAP)
def test_experiment_passes(experiment_id):
    report = run_experiment(experiment_id)
    assert report.passed, report.table
    assert report.table.startswith("==")
    assert report.experiment == experiment_id


def test_registry_is_complete():
    assert list(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 16)]


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("E99")


def test_runner_cli_selected(capsys):
    from repro.experiments.runner import main

    assert main(["E4"]) == 0
    out = capsys.readouterr().out
    assert "E4" in out and "PASS" in out


def test_runner_cli_unknown(capsys):
    from repro.experiments.runner import main

    assert main(["E99"]) == 2


class TestReportShape:
    def test_e9_reports_exact_zero(self):
        report = run_experiment("E9")
        assert report.passed
        # The table must show integer-zero distances, not floats.
        assert " 0 " in report.table or "0            True" in report.table

    def test_e4_uses_exact_rationals(self):
        report = run_experiment("E4")
        assert "1/8" in report.table

    def test_e12_reports_all_three_schemas(self):
        report = run_experiment("E12")
        for name in ("singleton", "oblivious", "adaptive"):
            assert name in report.table
        assert len(set(report.data["advantages"])) == 1
