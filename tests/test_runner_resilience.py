"""Integration tests: the hardened experiment runner.

A crashing experiment must surface as ``[ERROR]`` (with its traceback) and
the suite must keep going; a hanging experiment must hit the wall-clock
timeout; a flaky experiment must recover through retry-with-seed-rotation.
The misbehaving experiments live in :mod:`tests.faultyexp` and are injected
into the registry through its dotted-module escape hatch.
"""

import pytest

from repro.experiments import common
from repro.experiments.common import run_experiment_guarded
from repro.experiments.runner import main

_FIXTURES = {
    "EX-CRASH": ("tests.faultyexp.crashing", "always raises"),
    "EX-HANG": ("tests.faultyexp.hanging", "never returns"),
    "EX-FAIL": ("tests.faultyexp.failing", "report.passed is False"),
    "EX-FLAKY": ("tests.faultyexp.flaky", "passes only under odd seeds"),
}


@pytest.fixture(autouse=True)
def _inject_fixture_experiments(monkeypatch):
    for experiment_id, entry in _FIXTURES.items():
        monkeypatch.setitem(common.ALL_EXPERIMENTS, experiment_id, entry)


class TestGuardedRunner:
    def test_crash_is_captured_with_traceback(self):
        outcome = run_experiment_guarded("EX-CRASH")
        assert outcome.status == "error"
        assert not outcome.ok
        assert "RuntimeError: deliberate experiment crash" in outcome.error
        assert outcome.report is None

    def test_crash_is_captured_inline_too(self):
        outcome = run_experiment_guarded("EX-CRASH", isolated=False)
        assert outcome.status == "error"
        assert "deliberate experiment crash" in outcome.error

    def test_hang_times_out(self):
        outcome = run_experiment_guarded("EX-HANG", timeout=1.0)
        assert outcome.status == "timeout"
        assert "1.0s" in outcome.error
        assert outcome.elapsed >= 1.0

    def test_failing_report_is_distinguished_from_error(self):
        outcome = run_experiment_guarded("EX-FAIL")
        assert outcome.status == "fail"
        assert outcome.report is not None and not outcome.report.passed

    def test_retry_rotates_seed_until_pass(self):
        # Seed 2 crashes, seed 3 passes: one retry suffices.
        outcome = run_experiment_guarded("EX-FLAKY", retries=2, seed=2)
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.seed == 3
        assert outcome.report.data["seed"] == 3

    def test_no_retries_keeps_first_failure(self):
        outcome = run_experiment_guarded("EX-FLAKY", retries=0, seed=2)
        assert outcome.status == "error"
        assert outcome.attempts == 1

    def test_passing_experiment_unaffected(self):
        outcome = run_experiment_guarded("E4")
        assert outcome.ok and outcome.status == "pass"
        assert outcome.report.passed


class TestRunnerCli:
    def test_crash_prints_fail_and_suite_continues(self, capsys):
        assert main(["EX-CRASH", "E4"]) == 1
        out = capsys.readouterr().out
        assert "[ERROR] EX-CRASH" in out
        assert "RuntimeError" in out
        assert "[PASS] E4" in out  # the suite kept going
        assert "FAILED" in out and "EX-CRASH [ERROR]" in out

    def test_fail_fast_stops_the_suite(self, capsys):
        assert main(["EX-CRASH", "E4", "--fail-fast"]) == 1
        out = capsys.readouterr().out
        assert "[ERROR] EX-CRASH" in out
        assert "[PASS] E4" not in out

    def test_hang_reports_timeout(self, capsys):
        assert main(["EX-HANG", "--timeout", "1"]) == 1
        out = capsys.readouterr().out
        assert "[TIMEOUT] EX-HANG" in out

    def test_retries_and_seed_flags(self, capsys):
        assert main(["EX-FLAKY", "--retries", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] EX-FLAKY" in out
        assert "2 attempts" in out

    def test_no_isolation_still_captures_errors(self, capsys):
        assert main(["EX-CRASH", "E4", "--no-isolation"]) == 1
        out = capsys.readouterr().out
        assert "[ERROR] EX-CRASH" in out and "[PASS] E4" in out

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out and "E1" in out
