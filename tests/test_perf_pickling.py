"""Unit tests of the closure-capable pickling behind the socket backend.

Lambdas, local closures, defaults/kwdefaults, referenced globals (including
through nested lambdas), recursive closures with empty cells, captured
modules, and the by-reference path for importable functions.  Every
round-trip is checked *in a fresh subprocess* where it matters: the whole
point is that the receiving process never saw the sending process's
definitions.
"""

import pickle
import subprocess
import sys
import textwrap
from fractions import Fraction

import pytest

from repro.perf import pickling

_GLOBAL_FACTOR = Fraction(3, 7)


def _module_level(x):
    return x + 1


def _roundtrip(obj):
    return pickling.loads(pickling.dumps(obj))


def _roundtrip_in_subprocess(blob_producer, call_arg):
    """Dump ``blob_producer``'s function here, call it in a fresh interpreter."""
    blob = pickling.dumps(blob_producer)
    script = textwrap.dedent(
        """
        import pickle, sys
        from fractions import Fraction
        fn = pickle.loads(sys.stdin.buffer.read())
        sys.stdout.buffer.write(pickle.dumps(fn({arg!r})))
        """
    ).format(arg=call_arg)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=blob,
        capture_output=True,
        check=False,
        env={"PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return pickle.loads(proc.stdout)


class TestByValue:
    def test_lambda_roundtrips(self):
        fn = _roundtrip(lambda x: x * 2)
        assert fn(21) == 42

    def test_local_closure_captures_values(self):
        bound = Fraction(1, 8)

        def check(x):
            return x <= bound

        fn = _roundtrip(check)
        assert fn(Fraction(1, 16)) is True
        assert fn(Fraction(1, 4)) is False

    def test_defaults_and_kwdefaults_survive(self):
        def fn(x, scale=Fraction(1, 2), *, offset=3):
            return x * scale + offset

        rebuilt = _roundtrip(fn)
        assert rebuilt(4) == Fraction(1, 2) * 4 + 3
        assert rebuilt(4, Fraction(1, 4), offset=0) == 1

    def test_referenced_global_is_captured(self):
        fn = _roundtrip(lambda x: x * _GLOBAL_FACTOR)
        assert fn(7) == 3

    def test_global_referenced_only_by_nested_lambda_is_captured(self):
        def outer(x):
            inner = lambda y: y * _GLOBAL_FACTOR  # noqa: E731
            return inner(x)

        assert _roundtrip(outer)(7) == 3

    def test_recursive_local_function_empty_cell(self):
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)

        # `fact` captures itself through a closure cell; at dump time the
        # cell is filled, but the rebuild path must also tolerate the
        # empty-cell sentinel.
        assert _roundtrip(fact)(5) == 120
        assert pickling.loads(pickling.dumps(pickling._EmptyCell())) is not None

    def test_captured_module_goes_by_name(self):
        import math

        fn = _roundtrip(lambda x: math.sqrt(x))
        assert fn(9) == 3.0

    def test_closure_in_container_roundtrips(self):
        factor = 5
        payload = {"fns": [lambda x: x * factor, lambda x: x + factor]}
        rebuilt = _roundtrip(payload)
        assert [f(3) for f in rebuilt["fns"]] == [15, 8]


class TestByReference:
    def test_importable_function_stays_by_reference(self):
        blob = pickling.dumps(_module_level)
        # Standard pickle can read it: no by-value rebuild involved.
        assert pickle.loads(blob) is _module_level

    def test_stdlib_function_stays_by_reference(self):
        from math import gcd

        assert pickle.loads(pickling.dumps(gcd)) is gcd


class TestFreshInterpreter:
    def test_closure_evaluates_in_process_that_never_saw_it(self):
        bound = Fraction(3, 32)

        def within(eps):
            return eps <= bound

        assert _roundtrip_in_subprocess(within, Fraction(1, 16)) is True

    def test_lambda_with_global_in_fresh_interpreter(self):
        result = _roundtrip_in_subprocess(lambda x: x * _GLOBAL_FACTOR, 14)
        assert result == 6


class TestMetricsHandles:
    def test_counter_unpickles_as_registry_handle(self):
        from repro.obs import metrics

        c = metrics.counter("test.pickling.handle")
        c.inc(5)
        rebuilt = pickling.loads(pickling.dumps(c))
        assert rebuilt is c  # same process: get-or-create returns the instrument
        # The value rides in the registry, not the pickle: a fresh process
        # starts its handle at zero (asserted via __reduce__'s shape).
        fn, args = c.__reduce__()
        assert fn is metrics.counter and args == ("test.pickling.handle",)
