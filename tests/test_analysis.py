"""Tests for the analysis tooling (exploration, Monte-Carlo, distinguishers,
reporting) and the top-level public API."""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.distinguish import DistinguisherResult, best_distinguisher
from repro.analysis.explore import execution_tree_size, state_space_summary
from repro.analysis.montecarlo import (
    crosscheck_f_dist,
    empirical_f_dist,
    hoeffding_radius,
    sample_execution,
)
from repro.analysis.report import render_profile, render_table
from repro.semantics.insight import accept_insight, compose_world, f_dist
from repro.semantics.schema import SchedulerSchema
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin, coin_observer

from tests.helpers import fair_coin, listener, ticker


SCRIPT = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)


def small_schema():
    def members(automaton, bound):
        yield SCRIPT

    return SchedulerSchema("one", members)


class TestExplore:
    def test_state_space_summary_of_coin(self):
        summary = state_space_summary(fair_coin())
        assert summary.states == 4
        assert summary.actions == 3
        assert summary.transitions == 3
        assert summary.max_branching == 2

    def test_execution_tree_size(self):
        coin_auto = fair_coin()
        sizes = execution_tree_size(coin_auto, ActionSequenceScheduler(["toss", "head"]))
        assert sizes["executions"] == 2
        assert sizes["total_steps"] == 3  # len-2 heads branch + len-1 tails branch


class TestMonteCarlo:
    def test_sample_execution_is_valid(self):
        rng = np.random.default_rng(0)
        coin_auto = fair_coin()
        execution = sample_execution(coin_auto, ActionSequenceScheduler(["toss", "head"]), rng)
        assert execution.is_execution_of(coin_auto)

    def test_empirical_matches_exact_within_hoeffding(self):
        env = coin_observer()
        biased = coin("biased", Fraction(2, 3))
        world = compose_world(env, biased)
        exact = f_dist(accept_insight(), env, biased, SCRIPT, world=world)

        def value_of(execution):
            return accept_insight()(env, world, execution)

        assert crosscheck_f_dist(world, SCRIPT, value_of, exact, samples=4000, seed=1)

    def test_hoeffding_radius_shrinks(self):
        assert hoeffding_radius(10_000) < hoeffding_radius(100)

    def test_empirical_f_dist_mass_one(self):
        rng = np.random.default_rng(2)
        env = coin_observer()
        world = compose_world(env, fair_coin())
        dist = empirical_f_dist(
            world, SCRIPT, lambda e: len(e), samples=200, rng=rng
        )
        assert abs(dist.total_mass - 1.0) < 1e-9


class TestDistinguish:
    def test_identical_systems_zero_advantage(self):
        env = coin_observer()
        result = best_distinguisher(
            coin("a", Fraction(1, 2)),
            coin("b", Fraction(1, 2)),
            schema=small_schema(),
            insight=accept_insight(),
            environments=[env],
            bound=3,
        )
        assert result.advantage == 0

    def test_biased_systems_found(self):
        env = coin_observer()
        result = best_distinguisher(
            coin("a", Fraction(1, 2)),
            coin("b", Fraction(7, 8)),
            schema=small_schema(),
            insight=accept_insight(),
            environments=[env],
            bound=3,
        )
        assert result.advantage == Fraction(3, 8)
        assert result.environment == "E"

    def test_unpaired_takes_min_over_candidates(self):
        env = coin_observer()
        result = best_distinguisher(
            coin("a", Fraction(1, 2)),
            coin("b", Fraction(1, 2)),
            schema=small_schema(),
            insight=accept_insight(),
            environments=[env],
            bound=3,
            paired=False,
        )
        assert result.advantage == 0

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            best_distinguisher(
                fair_coin("a"),
                fair_coin("b"),
                schema=small_schema(),
                insight=accept_insight(),
                environments=[],
                bound=3,
            )


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            "demo", ["k", "value"], [(1, 0.5), (10, 0.25)], note="a note"
        )
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "k" in lines[1] and "value" in lines[1]
        assert "a note" in lines[-1]

    def test_render_profile_ratios(self):
        text = render_profile("p", [(1, 0.5), (2, 0.25), (3, 0.125)])
        assert "0.5000" in text  # decay ratio columns
        assert "epsilon(k)" in text

    def test_floats_formatted(self):
        text = render_table("t", ["x"], [(0.123456789,)])
        assert "0.123457" in text


class TestPublicApi:
    def test_quickstart_from_docstring(self):
        import repro

        fair = repro.coin("fair", Fraction(1, 2))
        biased = repro.coin("biased", Fraction(3, 4))
        sched = repro.ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        advantage = repro.perception_distance(
            repro.accept_insight(), repro.coin_observer(), fair, sched, biased, sched
        )
        assert advantage == Fraction(1, 4)

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
