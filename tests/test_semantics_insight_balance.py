"""Tests for insight functions, f-dist and balanced schedulers (Defs 3.3-3.7)."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import dirac
from repro.semantics.balance import balanced, perception_distance
from repro.semantics.environment import environments_of_both, is_environment
from repro.semantics.insight import (
    accept_insight,
    check_stability_by_composition,
    compose_world,
    f_dist,
    print_insight,
    trace_insight,
)
from repro.semantics.scheduler import ActionSequenceScheduler

from tests.helpers import coin_automaton, fair_coin, listener, ticker


def observer(name="env", watched=("toss", "head", "tail"), accept_on="head"):
    """An environment that observes coin actions and outputs 'acc' after
    seeing `accept_on` — the classic distinguisher shape."""
    signatures = {
        "watch": Signature(inputs=frozenset(watched)),
        "happy": Signature(inputs=frozenset(watched), outputs={"acc"}),
        "done": Signature(inputs=frozenset(watched)),
    }
    transitions = {}
    for w in watched:
        transitions[("watch", w)] = dirac("happy" if w == accept_on else "watch")
        transitions[("happy", w)] = dirac("happy")
        transitions[("done", w)] = dirac("done")
    transitions[("happy", "acc")] = dirac("done")
    return TablePSIOA(name, "watch", signatures, transitions)


class TestEnvironment:
    def test_observer_is_environment_of_coin(self):
        assert is_environment(observer(), fair_coin())

    def test_same_name_not_environment(self):
        assert not is_environment(fair_coin("x"), fair_coin("x"))

    def test_output_clash_not_environment(self):
        noisy = ticker("noisy", 1, action="toss")  # clashes with the coin's output
        assert not is_environment(noisy, fair_coin())

    def test_environments_of_both_filters(self):
        candidates = [observer(), ticker("noisy", 1, action="toss")]
        both = environments_of_both(candidates, fair_coin("a"), coin_automaton("b", 1))
        assert [e.name for e in both] == ["env"]


class TestInsightFunctions:
    def test_trace_insight_projects_external(self):
        env = observer()
        coin = fair_coin()
        world = compose_world(env, coin)
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        dist = f_dist(trace_insight(), env, coin, sched)
        assert dist(("toss", "head", "acc")) == Fraction(1, 2)
        assert dist(("toss",)) == Fraction(1, 2)  # tails branch halts early

    def test_accept_insight_flags_distinguisher_bit(self):
        env = observer()
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        dist = f_dist(accept_insight(), env, coin, sched)
        assert dist(1) == Fraction(1, 2)
        assert dist(0) == Fraction(1, 2)

    def test_accept_insight_zero_without_acc(self):
        env = observer()
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss"])
        dist = f_dist(accept_insight(), env, coin, sched)
        assert dist(0) == 1

    def test_print_insight_sees_env_actions_only(self):
        env = observer(watched=("toss",))
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head"])
        dist = f_dist(print_insight(), env, coin, sched)
        # 'head'/'tail' are not in the environment's signature: invisible.
        assert dist(("toss",)) == 1

    def test_fdist_total_mass_one(self):
        env = observer()
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        dist = f_dist(trace_insight(), env, fair_coin(), sched)
        assert dist.total_mass == 1


class TestBalance:
    def test_same_system_schedulers_are_zero_balanced(self):
        env = observer()
        coin = fair_coin()
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        assert perception_distance(accept_insight(), env, coin, sched, coin, sched) == 0
        assert balanced(accept_insight(), env, coin, sched, coin, sched, 0)

    def test_biased_vs_fair_distance_is_bias(self):
        env = observer()
        fair = fair_coin("fair")
        biased = coin_automaton("biased", Fraction(3, 4))
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        distance = perception_distance(accept_insight(), env, fair, sched, biased, sched)
        assert distance == Fraction(1, 4)
        assert balanced(accept_insight(), env, fair, sched, biased, sched, Fraction(1, 4))
        assert not balanced(accept_insight(), env, fair, sched, biased, sched, Fraction(1, 5))

    def test_trace_insight_at_least_as_sharp_as_accept(self):
        env = observer()
        fair = fair_coin("fair")
        biased = coin_automaton("biased", Fraction(2, 3))
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        d_trace = perception_distance(trace_insight(), env, fair, sched, biased, sched)
        d_accept = perception_distance(accept_insight(), env, fair, sched, biased, sched)
        # accept is a function of the trace: data processing inequality.
        assert d_accept <= d_trace

    def test_deterministic_coins_fully_distinguishable(self):
        env = observer()
        heads = coin_automaton("h", 1)
        tails = coin_automaton("t", 0)
        sched = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        assert perception_distance(accept_insight(), env, heads, sched, tails, sched) == 1

    def test_different_schedulers_can_balance_different_systems(self):
        # The quantifier structure of Def 4.12: a *different* sigma' may be
        # needed on the B side.  Here B renames head/tail order in its script.
        env = observer(watched=("toss", "head", "tail"))
        coin = fair_coin("fair")
        sched1 = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        sched2 = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        assert balanced(accept_insight(), env, coin, sched1, coin, sched2, 0)


class TestStability:
    def test_standard_insights_stable_on_concrete_quintuple(self):
        env = observer(watched=("tick",), accept_on="tick")
        context = listener("ctx", {"toss", "head", "tail"})
        fair = fair_coin("fair")
        biased = coin_automaton("biased", Fraction(3, 4))
        sched = ActionSequenceScheduler(["toss", "head", "tail"])
        assert check_stability_by_composition(
            print_insight(), env, context, fair, biased, sched, sched
        )
