"""Structured JSONL logging and Prometheus exposition (repro.obs.log / .expo).

The logger is process-global and env-exported, so these tests lean on the
suite-wide ``_clean_observability`` fixture (conftest) that clears the
sink, the correlation id, and the ``REPRO_LOG``/``REPRO_JOB_ID``
environment around every test.
"""

import json
import os
import threading

import pytest

from repro.obs import expo, metrics
from repro.obs import log as obs_log


def read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestLogger:
    def test_disabled_by_default_and_noop(self, tmp_path):
        assert not obs_log.enabled()
        obs_log.log("info", "nobody.listening", payload=1)  # must not raise
        obs_log.get_logger("x").error("still.nobody")

    def test_record_shape_and_levels(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "events.jsonl"))
        logger = obs_log.get_logger("unit.test")
        logger.debug("dropped.below.threshold")
        logger.info("kept", answer=42, skipped=None)
        logger.warning("warned")
        records = read_records(path)
        assert [r["event"] for r in records] == ["kept", "warned"]
        first = records[0]
        assert first["level"] == "info"
        assert first["logger"] == "unit.test"
        assert first["pid"] == os.getpid()
        assert first["answer"] == 42
        assert "skipped" not in first  # None-valued fields are dropped
        assert isinstance(first["ts"], float)

    def test_directory_sink_and_env_export(self, tmp_path):
        path = obs_log.configure(str(tmp_path))
        assert path == str(tmp_path / obs_log.DEFAULT_BASENAME)
        assert os.environ["REPRO_LOG"] == path  # children inherit the sink
        obs_log.configure(None)
        assert "REPRO_LOG" not in os.environ

    def test_debug_threshold_is_configurable(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "all.jsonl"), level="debug")
        obs_log.get_logger("x").debug("now.kept")
        assert [r["event"] for r in read_records(path)] == ["now.kept"]
        with pytest.raises(ValueError):
            obs_log.configure(str(tmp_path / "bad.jsonl"), level="loud")

    def test_configure_from_env_gate(self, tmp_path, monkeypatch):
        target = tmp_path / "from-env.jsonl"
        monkeypatch.setenv("REPRO_LOG", str(target))
        assert obs_log.configure_from_env() == str(target)
        obs_log.get_logger("x").info("via.env")
        assert [r["event"] for r in read_records(str(target))] == ["via.env"]

    def test_correlation_tags_records_and_exports_env(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "jobs.jsonl"))
        obs_log.set_correlation("job-9-abc123")
        assert os.environ["REPRO_JOB_ID"] == "job-9-abc123"
        obs_log.get_logger("x").info("ambient")
        obs_log.get_logger("x").info("explicit", job="job-other")
        obs_log.get_logger("x").info("opted.out", job=None)
        obs_log.set_correlation(None)
        assert "REPRO_JOB_ID" not in os.environ
        obs_log.get_logger("x").info("after.clear")
        records = {r["event"]: r for r in read_records(path)}
        assert records["ambient"]["job"] == "job-9-abc123"
        assert records["explicit"]["job"] == "job-other"  # explicit wins
        assert "job" not in records["opted.out"]  # job=None disclaims the ambient id
        assert "job" not in records["after.clear"]

    def test_correlation_falls_back_to_inherited_env(self, monkeypatch):
        # A fork child inherits REPRO_JOB_ID; with no process-local value the
        # environment is authoritative (that is the whole propagation trick).
        monkeypatch.setenv("REPRO_JOB_ID", "job-from-parent")
        assert obs_log.correlation() == "job-from-parent"

    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "threads.jsonl"))
        logger = obs_log.get_logger("stress")

        def hammer(worker):
            for i in range(200):
                logger.info("hammer", worker=worker, i=i, pad="x" * 100)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = read_records(path)  # raises if any line was torn
        assert len(records) == 800

    def test_bound_fields_ride_every_record(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "bound.jsonl"))
        bound = obs_log.get_logger("svc").bind(tenant="acme")
        bound.info("one")
        bound.info("two", extra=1)
        assert [r["tenant"] for r in read_records(path)] == ["acme", "acme"]


class TestExposition:
    def test_render_and_parse_roundtrip(self):
        metrics.counter("unit.requests.total").inc(7)
        metrics.gauge("unit.queue.depth").set(3)
        histogram = metrics.histogram("unit.latency_s")
        for value in (0.1, 0.2, 0.4):
            histogram.observe(value)
        text = expo.render()
        families = expo.parse(text)
        assert families["unit_requests_total"] == {"type": "counter", "value": 7.0}
        assert families["unit_queue_depth"] == {"type": "gauge", "value": 3.0}
        summary = families["unit_latency_s"]
        assert summary["type"] == "summary"
        assert summary["count"] == 3.0
        assert summary["sum"] == pytest.approx(0.7)
        assert summary["quantiles"]["0.5"] == pytest.approx(0.2)
        assert set(summary["quantiles"]) == {"0.5", "0.9", "0.99"}

    def test_every_sample_has_a_type_line(self):
        metrics.counter("unit.a").inc()
        metrics.histogram("unit.b").observe(1.0)
        lines = expo.render().splitlines()
        names = set()
        for line in lines:
            if line.startswith("# TYPE"):
                names.add(line.split()[2])
            else:
                sample = line.split("{")[0].split()[0]
                base = sample
                for suffix in ("_sum", "_count"):
                    if sample.endswith(suffix):
                        base = sample[: -len(suffix)]
                assert base in names, line

    def test_name_sanitization(self):
        assert expo.sanitize_name("service.jobs.completed") == "service_jobs_completed"
        assert expo.sanitize_name("weird-name@2") == "weird_name_2"
        assert expo.sanitize_name("0leading").startswith("_")

    def test_non_numeric_values_are_skipped(self):
        metrics.gauge("unit.textual").set("not-a-number")
        metrics.gauge("unit.flag").set(True)  # bools are not scrapeable numbers
        metrics.counter("unit.fine").inc()
        families = expo.parse(expo.render())
        assert "unit_textual" not in families
        assert "unit_flag" not in families
        assert "unit_fine" in families

    def test_parse_rejects_malformed_exposition(self):
        with pytest.raises(expo.ExpositionError):
            expo.parse("orphan_sample 1\n")  # no TYPE line
        with pytest.raises(expo.ExpositionError):
            expo.parse("# TYPE x counter\nx notanumber\n")
        with pytest.raises(expo.ExpositionError):
            expo.parse("# TYPE x wat\nx 1\n")
        with pytest.raises(expo.ExpositionError):
            expo.parse('# TYPE x summary\nx{wrong="0.5"} 1\n')

    def test_render_accepts_explicit_snapshot(self):
        snapshot = {
            "counters": {"c.a": 2},
            "gauges": {"g.b": 1.5},
            "histograms": {
                "h.c": {"count": 1, "sum": 0.5, "p50": 0.5, "p90": 0.5, "p99": 0.5}
            },
        }
        families = expo.parse(expo.render(snapshot))
        assert set(families) == {"c_a", "g_b", "h_c"}
