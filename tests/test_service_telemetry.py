"""Service telemetry: structured logs, /v1/metrics, job↔trace correlation.

Everything here drives a real in-process service over HTTP (the
``serve``/fixture idiom of tests/test_service.py) and asserts the
observability surface PR 10 added: the Prometheus exposition endpoint,
the structured JSONL access/lifecycle log, correlation ids riding into
worker trace lanes, the merged-trace endpoint feeding
``python -m repro.obs analyze``, registry TTL/eviction, the SSE
subscriber gauge surviving mid-stream disconnects, and ``/v1/health``
gauges across a pool respawn.
"""

import json
import os
import socket
import time

import pytest

from repro.obs import expo
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.analyze import main_analyze
from repro.obs.distributed import check_trace
from repro.service import JobService, ServiceClient, ServiceClientError
from repro.service.jobs import JobRegistry
from repro.service.top import render_frame


def serve(service):
    service.start()
    host, port = service.serve_http("127.0.0.1", 0)
    return ServiceClient(f"http://{host}:{port}")


@pytest.fixture
def live():
    service = JobService()
    client = serve(service)
    yield service, client
    service.stop()


def read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestMetricsEndpoint:
    def test_exposition_parses_with_job_counters(self, live):
        _, client = live
        job = client.submit(["E1"])
        assert client.wait(job["id"], timeout=120)["state"] == "done"
        text = client.metrics_text()
        families = expo.parse(text)  # raises on malformed exposition
        assert families["service_jobs_completed"]["value"] >= 1
        assert families["service_admission_admitted"]["value"] >= 1
        assert families["service_admission_admitted_default"]["value"] >= 1
        # The SLO histograms ship as summaries with quantiles.
        for name in ("service_jobs_queue_wait_s", "service_jobs_e2e_latency_s"):
            assert families[name]["type"] == "summary"
            assert families[name]["count"] >= 1
            assert set(families[name]["quantiles"]) == {"0.5", "0.9", "0.99"}

    def test_scrape_refreshes_point_in_time_gauges(self, live):
        service, client = live
        families = expo.parse(client.metrics_text())
        assert families["service_jobs_queue_depth"]["value"] == 0
        assert families["service_pool_workers"]["value"] == 0
        assert families["service_sse_subscribers"]["value"] == 0
        assert families["service_uptime_s"]["value"] >= 0

    def test_json_format_matches_registry_snapshot_shape(self, live):
        _, client = live
        snapshot = client.metrics()
        assert set(snapshot) >= {"counters", "gauges", "histograms"}
        assert "service.jobs.queue_depth" in snapshot["gauges"]


class TestStructuredLog:
    def test_requests_and_lifecycle_flow_into_jsonl(self, live, tmp_path):
        service, client = live
        path = obs_log.configure(str(tmp_path / "service.jsonl"))
        client.health()
        with pytest.raises(ServiceClientError):
            client.status("job-nope")
        job = client.submit(["E1"])
        assert client.wait(job["id"], timeout=120)["state"] == "done"
        obs_log.configure(None)

        records = read_records(path)
        events = [r["event"] for r in records]
        # The old log_message black hole is gone: every request is a record.
        http = [r for r in records if r["event"] == "http.request"]
        assert {(r["method"], r["path"].split("?")[0]) for r in http} >= {
            ("GET", "/v1/health"),
            ("POST", "/v1/jobs"),
        }
        assert all("status" in r and "duration_ms" in r for r in http)
        missed = [r for r in http if r["path"] == "/v1/jobs/job-nope"]
        assert missed and missed[0]["status"] == 404
        # Job-addressed requests are correlation-tagged; /v1/health is not.
        tagged = [r for r in http if r["path"].startswith(f"/v1/jobs/{job['id']}")]
        assert tagged and all(r["job"] == job["id"] for r in tagged)
        health = [r for r in http if r["path"] == "/v1/health"]
        assert health and all("job" not in r for r in health)
        # Admission and the full lifecycle appear, each carrying the job id.
        assert "service.admission.admitted" in events
        lifecycle = [r for r in records if r["event"].startswith("service.job")]
        assert {r["event"] for r in lifecycle} >= {
            "service.job.state", "service.job.dispatch", "service.job.experiment",
        }
        assert all(r["job"] == job["id"] for r in lifecycle)

    def test_rejection_is_logged_with_reason(self, tmp_path):
        from repro.service import AdmissionPolicy

        service = JobService(
            auto_dispatch=False,
            policy=AdmissionPolicy(max_active=1, retry_after_s=0.5),
        )
        client = serve(service)
        try:
            path = obs_log.configure(str(tmp_path / "admission.jsonl"))
            client.submit(["E1"])
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(["E4"])
            assert excinfo.value.status == 429
            obs_log.configure(None)
            rejected = [
                r for r in read_records(path)
                if r["event"] == "service.admission.rejected"
            ]
            assert rejected and rejected[0]["reason"] and rejected[0]["tenant"]
            assert (
                obs_metrics.counter("service.admission.rejected").value == 1
            )
        finally:
            service.stop()


class TestJobTraceEndpoint:
    def test_trace_is_409_until_terminal_and_404_untraced(self):
        service = JobService(auto_dispatch=False)
        client = serve(service)
        try:
            queued = client.submit(["E1"])
            with pytest.raises(ServiceClientError) as excinfo:
                client.trace(queued["id"])
            assert excinfo.value.status == 409
        finally:
            service.stop()

    def test_untraced_done_job_is_404(self, live):
        _, client = live
        job = client.submit(["E1"])
        assert client.wait(job["id"], timeout=120)["state"] == "done"
        with pytest.raises(ServiceClientError) as excinfo:
            client.trace(job["id"])
        assert excinfo.value.status == 404
        assert "trace" in excinfo.value.body["error"]


class TestEndToEndCorrelation:
    """The issue's acceptance criterion, against a live 2-worker pool."""

    def test_traced_pool_job_yields_correlated_trace_and_metrics(self, tmp_path):
        # The sink is configured before the pool spawns (as __main__ does),
        # so the workers inherit REPRO_LOG and append to the same file.
        log_path = obs_log.configure(str(tmp_path / "service.jsonl"))
        service = JobService(pool=2, log_dir=str(tmp_path))
        client = serve(service)
        try:
            job = client.submit(["E15"], config={"trace": True})
            assert client.wait(job["id"], timeout=300)["state"] == "done"

            # (a) the exposition parses and shows nonzero completions.
            families = expo.parse(client.metrics_text())
            assert families["service_jobs_completed"]["value"] >= 1

            # (b) the merged trace has >= 3 pid lanes, every lane stamped
            # with the job id, and analyze consumes it without error.
            payload = client.trace(job["id"])
            assert payload["job"] == job["id"]
            events = payload["traceEvents"]
            assert not check_trace(events, min_lanes=3)
            lanes = [
                e for e in events
                if e.get("ph") == "M" and e.get("name") == "process_name"
            ]
            assert len(lanes) >= 3
            assert all(e["args"]["job"] == job["id"] for e in lanes)
            # Worker lanes specifically made it back (socket transport).
            assert any("worker" in e["args"]["name"] for e in lanes)

            trace_file = tmp_path / "job.trace.json"
            trace_file.write_text(json.dumps(payload))
            assert main_analyze([str(trace_file)]) == 0

            # Every job-scoped log record carries the correlation id —
            # including worker.chunk records appended by the pool workers
            # (they inherit the sink via REPRO_LOG, the id via the ctx).
            obs_log.configure(None)
            records = read_records(log_path)
            job_scoped = [
                r for r in records
                if r["event"].startswith(("service.job", "worker.chunk"))
            ]
            assert job_scoped
            assert all(r["job"] == job["id"] for r in job_scoped)
            assert any(r["event"] == "worker.chunk" for r in records)
        finally:
            obs_log.configure(None)
            service.stop()


class TestHealthAcrossRespawn:
    def test_health_gauges_track_a_pool_respawn(self):
        service = JobService(pool=1, auto_dispatch=False)
        client = serve(service)
        try:
            assert client.health()["pool"] == {"workers": 1, "alive": 1}
            service._pool[0].process.kill()
            deadline = time.monotonic() + 10
            while service._pool[0].alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert client.health()["pool"] == {"workers": 1, "alive": 0}
            families = expo.parse(client.metrics_text())
            assert families["service_pool_alive"]["value"] == 0
            assert "service_pool_respawns" not in families
            assert service.ensure_workers() == 1
            assert client.health()["pool"] == {"workers": 1, "alive": 1}
            families = expo.parse(client.metrics_text())
            assert families["service_pool_alive"]["value"] == 1
            assert families["service_pool_respawns"]["value"] == 1
        finally:
            service.stop()


class TestSSECleanup:
    def test_mid_stream_disconnect_releases_the_subscriber_slot(self):
        # Parked service: the job stays queued and emits no events, so only
        # the keepalive probe can notice the vanished client.
        service = JobService(auto_dispatch=False, sse_keepalive_s=0.1)
        client = serve(service)
        try:
            job = client.submit(["E1"])
            host, port = service._httpd.server_address[:2]
            raw = socket.create_connection((host, port), timeout=10)
            raw.sendall(
                f"GET /v1/jobs/{job['id']}/events HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\nAccept: text/event-stream\r\n\r\n".encode()
            )
            raw.recv(1024)  # the stream is live (headers + replay frame)
            deadline = time.monotonic() + 10
            while service.sse_subscribers() != 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.sse_subscribers() == 1
            assert obs_metrics.gauge("service.sse.subscribers").value == 1
            raw.close()  # mid-stream disconnect, job still queued
            deadline = time.monotonic() + 10
            while service.sse_subscribers() != 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.sse_subscribers() == 0
            assert obs_metrics.gauge("service.sse.subscribers").value == 0
        finally:
            service.stop()

    def test_normal_stream_completion_releases_the_slot_too(self, live):
        service, client = live
        job = client.submit(["E1"])
        client.wait(job["id"], timeout=120)
        events = list(client.stream_events(job["id"], timeout=30))
        assert events and events[-1]["state"] == "done"
        assert service.sse_subscribers() == 0


class TestEviction:
    def _finished_registry(self, count):
        registry = JobRegistry(max_done=None)
        for _ in range(count):
            job = registry.create(tenant="t", experiments=["E1"], config=FakeConfig())
            registry.mark_running(job)
            registry.finish(job, report={"ok": True}, exit_code=0)
        return registry

    def test_max_done_keeps_newest_terminal_jobs(self):
        registry = self._finished_registry(3)
        ids = list(registry._order)
        registry.max_done = 2
        assert registry.evict() == 1
        assert [j.id for j in registry.jobs()] == ids[1:]  # oldest went first
        assert obs_metrics.counter("service.jobs.evicted").value == 1

    def test_ttl_evicts_only_aged_out_jobs(self):
        registry = self._finished_registry(2)
        newest = registry.jobs()[-1]
        newest.finished_unix = time.time() + 100  # artificially fresh
        registry.ttl_s = 0.0
        assert registry.evict() == 1
        assert [j.id for j in registry.jobs()] == [newest.id]

    def test_active_jobs_are_never_evicted(self):
        registry = JobRegistry(ttl_s=0.0, max_done=0)
        active = registry.create(tenant="t", experiments=["E1"], config=FakeConfig())
        registry.mark_running(active)
        assert registry.evict() == 0
        assert registry.get(active.id) is active

    def test_submissions_trigger_the_sweep_and_log_the_event(self, tmp_path):
        path = obs_log.configure(str(tmp_path / "evict.jsonl"))
        registry = JobRegistry(max_done=0)
        first = registry.create(tenant="t", experiments=["E1"], config=FakeConfig())
        registry.mark_running(first)
        registry.finish(first, report={}, exit_code=0)
        registry.create(tenant="t", experiments=["E1"], config=FakeConfig())
        obs_log.configure(None)
        assert registry.get(first.id) is None  # create() swept the finished job
        evicted = [
            r for r in read_records(path) if r["event"] == "service.jobs.evicted"
        ]
        assert evicted and evicted[0]["job"] == first.id
        assert evicted[0]["state"] == "done"

    def test_service_wires_retention_flags_through(self):
        service = JobService(job_ttl_s=7.0, max_done=3)
        assert service.registry.ttl_s == 7.0
        assert service.registry.max_done == 3


class FakeConfig:
    def describe(self):
        return {"fake": True}


class TestTopDashboard:
    def test_render_frame_is_pure_and_complete(self):
        health = {
            "started_unix": time.time() - 5,
            "jobs": {"queued": 1, "running": 1, "done": 3},
            "pool": {"workers": 2, "alive": 2},
            "limits": {"max_active": 16, "max_active_per_tenant": 4},
        }
        metrics = {
            "counters": {
                "service.jobs.failed": 1,
                "service.admission.admitted": 6,
                "service.admission.rejected": 2,
                "service.pool.respawns": 1,
            },
            "gauges": {"service.sse.subscribers": 1},
            "histograms": {
                "service.jobs.e2e_latency_s": {
                    "count": 3, "p50": 0.2, "p90": 0.4, "p99": 0.4
                }
            },
        }
        frame = render_frame(health, metrics, url="http://x:1")
        assert "queued 1" in frame and "running 1" in frame and "done 3" in frame
        assert "alive 2/2" in frame and "respawns 1" in frame
        assert "admitted 6" in frame and "rejected 2" in frame
        assert "p50 0.200s" in frame and "p99 0.400s" in frame
        assert "queue-wait  -" in frame  # empty histogram renders as a dash

    def test_one_frame_against_a_live_service(self, live, capsys):
        from repro.service.top import main as top_main

        _, client = live
        job = client.submit(["E1"])
        client.wait(job["id"], timeout=120)
        assert top_main(["--url", client.base_url, "--frames", "1", "--plain"]) == 0
        out = capsys.readouterr().out
        assert "repro-service" in out and "done 1" in out

    def test_module_entrypoint_routes_top(self, live, capsys):
        from repro.service.__main__ import main as service_main

        _, client = live
        assert service_main(["top", "--url", client.base_url, "--frames", "1",
                             "--plain"]) == 0
        assert "repro-service" in capsys.readouterr().out

    def test_unreachable_service_fails_cleanly(self, capsys):
        from repro.service.top import main as top_main

        assert top_main(["--url", "http://127.0.0.1:1", "--frames", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().out
