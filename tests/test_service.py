"""Sweep-as-a-service: job lifecycle, admission, reuse layers, E2E parity.

The service runs in-process (``serve_http`` on port 0) and is driven
through :class:`repro.service.ServiceClient` — the same stdlib HTTP path
CI's smoke uses — so these tests cover the wire format, not just the
Python objects.  The acceptance pair rides at the bottom: a sweep
submitted through the service must match the same RunConfig run through
the CLI byte-for-byte (modulo the usual volatile blocks), and an
immediate warm resubmission must be answered from the shared persistent
store rather than recomputed.
"""

import json
import time

import pytest

from repro import api
from repro.obs import metrics as obs_metrics
from repro.obs.report import validate_report
from repro.service import (
    AdmissionPolicy,
    JobService,
    ServiceClient,
    ServiceClientError,
)

#: Same volatility contract as tests/test_perf_persistent.py — timing,
#: process identity, and the perf counters whose change is the feature.
#: ``summary.config`` stays *unscrubbed* on purpose: CLI/service parity
#: must include the resolved RunConfig.
VOLATILE_REPORT_KEYS = {"created_unix", "argv"}
VOLATILE_SUMMARY_KEYS = {
    "wall_time_s", "cache", "backend", "trace", "profile", "analysis",
    "resilience",
}
VOLATILE_RECORD_KEYS = {
    "elapsed_s", "peak_rss_bytes", "trace_file", "counters", "histograms",
}


def scrub(payload):
    payload = {k: v for k, v in payload.items() if k not in VOLATILE_REPORT_KEYS}
    payload["summary"] = {
        k: v for k, v in payload["summary"].items()
        if k not in VOLATILE_SUMMARY_KEYS
    }
    experiments = []
    for record in payload["experiments"]:
        record = {k: v for k, v in record.items() if k not in VOLATILE_RECORD_KEYS}
        record["attempt_history"] = [
            {k: v for k, v in entry.items() if k != "elapsed_s"}
            for entry in record.get("attempt_history", [])
        ]
        experiments.append(record)
    payload["experiments"] = experiments
    return json.dumps(payload, sort_keys=True)


def serve(service):
    service.start()
    host, port = service.serve_http("127.0.0.1", 0)
    return ServiceClient(f"http://{host}:{port}")


@pytest.fixture
def live():
    """A dispatching service plus a client bound to it."""
    service = JobService()
    client = serve(service)
    yield service, client
    service.stop()


@pytest.fixture
def parked():
    """A service whose dispatcher never runs — jobs stay queued, so
    admission, coalescing and cancellation are deterministic."""
    service = JobService(auto_dispatch=False)
    client = serve(service)
    yield service, client
    service.stop()


class TestLifecycle:
    def test_health_and_experiments(self, live):
        _, client = live
        health = client.health()
        assert health["status"] == "ok" and health["version"] == "v1"
        assert health["pool"] == {"workers": 0, "alive": 0}
        assert client.experiments() == api.list_experiments()

    def test_submit_to_done_with_progress_and_report(self, live):
        _, client = live
        job = client.submit(["E1", "E4"])
        assert job["state"] in ("queued", "running")
        assert job["experiments"] == ["E1", "E4"]
        assert job["config"]["progress"] is False  # forced server-side

        states = []
        final = client.wait(
            job["id"], timeout=120, on_status=lambda s: states.append(s["state"])
        )
        assert final["state"] == "done" and final["exit_code"] == 0
        assert final["progress"] == {"done": 2, "total": 2}
        assert final["started_unix"] <= final["finished_unix"]

        report = client.report(job["id"])
        validate_report(report)
        assert report["summary"]["passed"] == 2
        assert report["summary"]["config"] == final["config"]
        assert report["argv"] == ["service", "E1", "E4"]

    def test_event_stream_replays_whole_lifecycle(self, live):
        _, client = live
        job = client.submit(["E1"])
        client.wait(job["id"], timeout=120)
        events = list(client.stream_events(job["id"], timeout=30))
        kinds = [(e["event"], e.get("state")) for e in events]
        assert kinds[0] == ("state", "queued")
        assert ("state", "running") in kinds
        assert kinds[-1] == ("state", "done")
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        experiment_events = [e for e in events if e["event"] == "experiment"]
        assert [(e["experiment"], e["ok"]) for e in experiment_events] == [("E1", True)]

    def test_jobs_listing_filters_by_tenant(self, parked):
        service, client = parked
        ours = ServiceClient(client.base_url, tenant="us")
        theirs = ServiceClient(client.base_url, tenant="them")
        mine = ours.submit(["E1"])
        theirs.submit(["E4"])
        assert [j["id"] for j in ours.jobs()] == [mine["id"]]
        assert len(client.jobs()) == 2


class TestErrorPaths:
    def test_unknown_experiment_rejected(self, live):
        _, client = live
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(["E1", "E99", "E98"])
        assert excinfo.value.status == 400
        assert "unknown experiment(s): E98, E99" in str(excinfo.value)
        assert "E1" in excinfo.value.body["known"]

    def test_malformed_config_rejected(self, live):
        _, client = live
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(["E1"], config={"cache": "sideways"})
        assert excinfo.value.status == 400
        assert "invalid config" in str(excinfo.value)
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(["E1"], config={"warp_factor": 9})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/jobs", {"config": "not-an-object"})
        assert excinfo.value.status == 400

    def test_unknown_submission_field_rejected(self, live):
        _, client = live
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/jobs", {"experiment": ["E1"]})
        assert excinfo.value.status == 400
        assert "unknown submission field" in str(excinfo.value)

    def test_missing_job_is_404(self, live):
        _, client = live
        for probe in (client.status, client.report, client.cancel):
            with pytest.raises(ServiceClientError) as excinfo:
                probe("job-999-cafe00")
            assert excinfo.value.status == 404

    def test_report_before_done_is_409(self, parked):
        _, client = parked
        job = client.submit(["E1"])
        with pytest.raises(ServiceClientError) as excinfo:
            client.report(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.body["state"] == "queued"

    def test_crashing_experiment_degrades_to_failure_record(self, live, monkeypatch):
        from repro.experiments import common

        monkeypatch.setitem(
            common.ALL_EXPERIMENTS, "EX-CRASH",
            ("tests.faultyexp.crashing", "always raises"),
        )
        _, client = live
        job = client.submit(["EX-CRASH", "E1"])
        final = client.wait(job["id"], timeout=120)
        # The *suite* completed: a crashing experiment is a result, not a
        # service failure — the report records it and the exit code says so.
        assert final["state"] == "done" and final["exit_code"] == 1
        report = client.report(job["id"])
        assert [r["status"] for r in report["experiments"]] == ["error", "pass"]

    def test_service_level_failure_marks_job_failed(self, parked, monkeypatch):
        service, client = parked
        job_id = client.submit(["E1"])["id"]

        def explode(*_args, **_kwargs):
            raise RuntimeError("the floor is lava")

        monkeypatch.setattr(api, "run_suite", explode)
        job = service.registry.get(job_id)
        service.registry.mark_running(job)
        service.execute(job)
        final = client.status(job_id)
        assert final["state"] == "failed"
        assert "the floor is lava" in final["error"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.report(job_id)
        assert excinfo.value.status == 409
        assert obs_metrics.counter("service.jobs.failed").value == 1


class TestAdmission:
    def test_tenant_quota_rejects_with_retry_after(self):
        service = JobService(
            auto_dispatch=False,
            policy=AdmissionPolicy(max_active_per_tenant=1, retry_after_s=3.0),
        )
        client = serve(service)
        try:
            crowded = ServiceClient(client.base_url, tenant="crowded")
            crowded.submit(["E1"])
            with pytest.raises(ServiceClientError) as excinfo:
                crowded.submit(["E4"])
            assert excinfo.value.status == 429
            assert excinfo.value.body["reason"] == "tenant_quota"
            assert excinfo.value.retry_after_s == 3.0
            # Another tenant is not starved by the noisy one.
            other = ServiceClient(client.base_url, tenant="calm")
            assert other.submit(["E4"])["state"] == "queued"
        finally:
            service.stop()

    def test_global_bound_rejects_regardless_of_tenant(self):
        service = JobService(
            auto_dispatch=False, policy=AdmissionPolicy(max_active=1)
        )
        client = serve(service)
        try:
            ServiceClient(client.base_url, tenant="a").submit(["E1"])
            with pytest.raises(ServiceClientError) as excinfo:
                ServiceClient(client.base_url, tenant="b").submit(["E4"])
            assert excinfo.value.status == 429
            assert excinfo.value.body["reason"] == "queue_full"
        finally:
            service.stop()


class TestReuseLayers:
    def test_identical_active_submissions_coalesce(self, parked):
        service, client = parked
        first = client.submit(["E1", "E4"])
        second = client.submit(["E1", "E4"])
        different = client.submit(["E4"])
        assert second["leader"] == first["id"]
        assert different["leader"] is None

        leader = service.registry.get(first["id"])
        service.registry.mark_running(leader)
        service.execute(leader)

        done_first = client.status(first["id"])
        done_second = client.status(second["id"])
        assert done_first["state"] == done_second["state"] == "done"
        assert done_second["served_from"] == first["id"]
        assert done_second["progress"] == done_first["progress"]
        assert client.report(second["id"]) == client.report(first["id"])
        # One execution for the pair: only the different job remains queued.
        assert obs_metrics.counter("service.jobs.started").value == 1

    def test_cancelling_a_leader_cascades_to_queued_followers(self, parked):
        _, client = parked
        first = client.submit(["E1"])
        second = client.submit(["E1"])
        cancelled = client.cancel(first["id"])
        assert cancelled["state"] == "cancelled"
        assert client.status(second["id"])["state"] == "cancelled"
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel(first["id"])  # only queued jobs are cancellable
        assert excinfo.value.status == 409

    def test_reuse_serves_a_finished_identical_job(self, live):
        _, client = live
        first = client.submit(["E1"])
        client.wait(first["id"], timeout=120)
        started = obs_metrics.counter("service.jobs.started").value

        again = client.submit(["E1"], reuse=True)
        assert again["state"] == "done"
        assert again["served_from"] == first["id"]
        assert client.report(again["id"]) == client.report(first["id"])
        assert obs_metrics.counter("service.jobs.started").value == started

    def test_reuse_without_a_finished_match_runs_normally(self, live):
        _, client = live
        job = client.submit(["E4"], reuse=True)
        assert job["served_from"] is None
        assert client.wait(job["id"], timeout=120)["state"] == "done"


class TestWarmPool:
    def test_dead_workers_are_respawned_between_jobs(self):
        service = JobService(pool=1, auto_dispatch=False)
        service.start()
        try:
            assert service.pool_alive() == 1
            old_spec = service.pool_spec()
            service._pool[0].process.kill()
            deadline = time.monotonic() + 10
            while service._pool[0].alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.pool_alive() == 0
            assert service.ensure_workers() == 1
            assert service.pool_alive() == 1
            # The respawn bound a fresh port: execution-time resolution is
            # what keeps jobs off the dead address.
            assert service.pool_spec() != old_spec
            assert obs_metrics.counter("service.pool.respawns").value == 1
        finally:
            service.stop()

    def test_worker_death_mid_job_degrades_gracefully(self):
        service = JobService(pool=1)
        client = serve(service)
        try:
            job = client.submit(["E15"], config={"cache": "off"})
            deadline = time.monotonic() + 60
            while (
                client.status(job["id"])["state"] == "queued"
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            service._pool[0].process.kill()  # mid-job: sweeps fall back
            final = client.wait(job["id"], timeout=300)
            assert final["state"] == "done" and final["exit_code"] == 0
            validate_report(client.report(job["id"]))
            # The next job finds a respawned worker, not a dead socket.
            follow_up = client.submit(["E1"])
            assert client.wait(follow_up["id"], timeout=120)["state"] == "done"
            assert service.pool_alive() == 1
        finally:
            service.stop()


class TestAcceptance:
    """The issue's E2E criteria, in-process over real HTTP."""

    def test_service_report_matches_cli_for_same_runconfig(self, tmp_path, live):
        from repro.experiments import runner

        _, client = live
        store = str(tmp_path / "store")
        flags = ["--cache", "on", "--cache-dir", store]
        # Populate the store once, then compare warm CLI vs warm service:
        # both runs resolve the *same* RunConfig and read the same store.
        assert runner.main(["E15", *flags]) == 0
        out = tmp_path / "cli.json"
        assert runner.main(["E15", *flags, "--metrics-out", str(out)]) == 0
        cli_report = json.loads(out.read_text())

        job = client.submit(["E15"], config={"cache": "on", "cache_dir": store})
        assert client.wait(job["id"], timeout=300)["state"] == "done"
        service_report = client.report(job["id"])

        assert scrub(service_report) == scrub(cli_report)
        assert service_report["summary"]["config"] == cli_report["summary"]["config"]

    def test_warm_resubmission_is_served_from_the_shared_store(self, tmp_path):
        service = JobService(cache_dir=str(tmp_path / "store"))
        client = serve(service)
        try:
            config = {"cache": "on"}
            cold = client.submit(["E12"], config=config)
            assert client.wait(cold["id"], timeout=300)["state"] == "done"
            cold_counters = client.report(cold["id"])["summary"]["cache"]["counters"]
            assert cold_counters.get("perf.cache.persistent.writes", 0) > 0

            warm = client.submit(["E12"], config=config)
            assert warm["leader"] is None and warm["served_from"] is None
            assert client.wait(warm["id"], timeout=300)["state"] == "done"
            warm_report = client.report(warm["id"])
            warm_counters = warm_report["summary"]["cache"]["counters"]
            # Re-run, not replayed — but every sweep answered from the store.
            assert warm_counters.get("perf.cache.sweep.hits", 0) > 0
            assert warm_counters.get("perf.cache.persistent.hits", 0) > 0
            assert warm_report["summary"]["cache"]["persistent"]["dir"] == str(
                tmp_path / "store"
            )
        finally:
            service.stop()
