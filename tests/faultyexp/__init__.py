"""Deliberately misbehaving experiment modules for the runner-resilience
tests: each submodule exposes the ``run(fast=...)`` surface the harness
expects and then crashes, hangs, fails, or passes only under a lucky seed.
"""
