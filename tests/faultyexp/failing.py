"""An experiment that completes but whose theorem-shape check fails."""

from repro.experiments.common import ExperimentReport


def run(*, fast: bool = True):
    return ExperimentReport(
        "EX-FAIL", "a claim that does not hold", "== EX-FAIL ==\nno rows", False
    )
