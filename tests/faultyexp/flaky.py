"""An experiment that passes only under an odd seed — exercises the guarded
runner's retry-with-seed-rotation loop."""

from repro.experiments.common import ExperimentReport, experiment_seed


def run(*, fast: bool = True):
    seed = experiment_seed()
    if seed % 2 == 0:
        raise RuntimeError(f"unlucky seed {seed}")
    return ExperimentReport(
        "EX-FLAKY", "passes under odd seeds", "== EX-FLAKY ==\nlucky", True,
        data={"seed": seed},
    )
