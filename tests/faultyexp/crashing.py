"""An experiment that always raises."""


def run(*, fast: bool = True):
    raise RuntimeError("deliberate experiment crash")
