"""An experiment that does real, metered work and then crashes — exercises
the guarded runner's partial-metrics capture across the fork boundary."""

from fractions import Fraction

from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import coin


def run(*, fast: bool = True):
    automaton = coin("doomed", Fraction(1, 2))
    scheduler = ActionSequenceScheduler(("toss", "head"), local_only=True)
    execution_measure(automaton, scheduler)  # bumps the unfolding counters
    raise RuntimeError("deliberate crash after metered work")
