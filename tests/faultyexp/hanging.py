"""An experiment that never returns (within any reasonable timeout)."""

import time


def run(*, fast: bool = True):
    time.sleep(600)
