"""Tests for the computational-bounds layer (Defs 4.1-4.11, Lemmas 4.3/4.5)."""

from fractions import Fraction

import pytest

from repro.bounded.bounds import (
    composition_constant,
    hiding_constant,
    is_time_bounded,
    measure_pca_time_bound,
    measure_time_bound,
    recognizer_bound,
)
from repro.bounded.costmodel import CostMeter, ReferenceDecoders
from repro.bounded.encoding import (
    SEPARATOR,
    configuration_length,
    encode_action,
    encode_bits,
    encode_configuration,
    encode_pair,
    encode_state,
    encode_transition,
    encoded_length,
    transition_length,
)
from repro.bounded.families import (
    PSIOAFamily,
    SchedulerFamily,
    bound_profile,
    compose_families,
    polynomial_bound_profile,
)
from repro.config.configuration import Configuration
from repro.config.pca import CanonicalPCA
from repro.core.composition import compose
from repro.core.renaming import hide_psioa
from repro.semantics.scheduler import ActionSequenceScheduler

from tests.helpers import coin_automaton, fair_coin, listener, ticker


class TestEncoding:
    def test_bit_stuffing_excludes_separator(self):
        # Atoms are padded with 0 after every data bit, so '11' never occurs.
        assert SEPARATOR not in encode_bits("anything at all")
        assert SEPARATOR not in encode_state(("q", 17))

    def test_length_matches_encoding(self):
        for obj in ["q0", ("state", 3), frozenset({"a", "b"}), Fraction(1, 2)]:
            assert encoded_length(obj) == len(encode_bits(obj))

    def test_canonical_frozenset_order(self):
        assert encode_bits(frozenset({"b", "a"})) == encode_bits(frozenset({"a", "b"}))

    def test_transition_length_matches(self):
        coin = fair_coin()
        eta = coin.transition("q0", "toss")
        assert transition_length("q0", "toss", eta) == len(encode_transition("q0", "toss", eta))

    def test_configuration_length_matches(self):
        config = Configuration.initial([fair_coin(), listener("ear", {"toss"})])
        assert configuration_length(config) == len(encode_configuration(config))

    def test_encode_pair_is_linear(self):
        left = encode_state("q0")
        right = encode_state("q1")
        joined, length = encode_pair(left, right)
        assert length == len(left) + len(right) + len(SEPARATOR)
        assert joined.count(SEPARATOR) >= 1


class TestReferenceDecoders:
    def test_m_start_decides(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        assert dec.m_start("q0", CostMeter())
        assert not dec.m_start("qH", CostMeter())

    def test_m_sig_classifies(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        assert dec.m_sig("q0", "toss", CostMeter()) == "out"
        assert dec.m_sig("q0", "head", CostMeter()) is None

    def test_m_trans_accepts_true_transition(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        eta = coin.transition("q0", "toss")
        assert dec.m_trans("q0", "toss", eta, CostMeter())

    def test_m_trans_rejects_wrong_measure(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        wrong = coin_automaton("w", Fraction(1, 3)).transition("q0", "toss")
        assert not dec.m_trans("q0", "toss", wrong, CostMeter())

    def test_m_step_decides_support(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        assert dec.m_step("q0", "toss", "qH", CostMeter())
        assert not dec.m_step("q0", "toss", "qF", CostMeter())

    def test_m_state_charges_for_distribution(self):
        coin = fair_coin()
        dec = ReferenceDecoders(coin)
        meter = CostMeter()
        eta = dec.m_state("q0", "toss", meter)
        assert eta == coin.transition("q0", "toss")
        assert meter.operations > 0

    def test_costs_grow_with_encoding_size(self):
        small = ticker("t", 1)
        large = ticker("a-much-longer-ticker-name-with-padding", 1)
        cost_small = ReferenceDecoders(small).worst_case(0, "tick")
        cost_large = ReferenceDecoders(large).worst_case(0, "tick")
        # Same structure, same costs (names do not enter state/action encodings).
        assert cost_small == cost_large
        wide = ticker("t", 1, action="tick-with-a-much-longer-action-name")
        assert ReferenceDecoders(wide).worst_case(0, "tick-with-a-much-longer-action-name") > cost_small


class TestBounds:
    def test_measured_bound_is_positive_and_tight(self):
        coin = fair_coin()
        b = measure_time_bound(coin)
        assert b > 0
        assert is_time_bounded(coin, b)
        assert not is_time_bounded(coin, b - 1)

    def test_lemma_43_composition_linear(self):
        a = fair_coin("a")
        b = listener("ear", {"toss", "head", "tail"})
        ba = measure_time_bound(a)
        bb = measure_time_bound(b)
        bc = measure_time_bound(compose(a, b))
        c = composition_constant([ba, bb], bc)
        assert c <= 8.0  # universal constant: encodings/decoders are linear

    def test_lemma_45_hiding_linear(self):
        coin = fair_coin()
        b = measure_time_bound(coin)
        hidden_set = ["toss", "head", "tail"]
        b_prime = recognizer_bound(hidden_set)
        hidden = hide_psioa(coin, lambda q: set(hidden_set))
        bh = measure_time_bound(hidden)
        c = hiding_constant(b, b_prime, bh)
        assert c <= 2.0

    def test_pca_bound_includes_configuration_encoding(self):
        pca = CanonicalPCA("p", [fair_coin()])
        b_pca = measure_pca_time_bound(pca)
        b_psioa = measure_time_bound(pca)
        assert b_pca >= b_psioa

    def test_recognizer_bound_additive(self):
        assert recognizer_bound(["a", "b"]) == encoded_length("a") + encoded_length("b") + 1
        assert recognizer_bound([]) == 1

    def test_constants_reject_degenerate_inputs(self):
        with pytest.raises(ValueError):
            composition_constant([0], 10)
        with pytest.raises(ValueError):
            hiding_constant(0, 0, 10)


class TestFamilies:
    def ticker_family(self):
        return PSIOAFamily("tickers", lambda k: ticker(("t", k), k + 1))

    def test_family_memoizes(self):
        fam = self.ticker_family()
        assert fam[3] is fam[3]

    def test_compose_families_pointwise(self):
        left = PSIOAFamily("L", lambda k: ticker(("l", k), 1, action=("a", k)))
        right = PSIOAFamily("R", lambda k: ticker(("r", k), 1, action=("b", k)))
        both = compose_families(left, right)
        member = both[2]
        assert member.start == (0, 0)

    def test_compose_pca_families_yield_pca(self):
        from repro.config.pca import PCA

        left = PSIOAFamily("L", lambda k: CanonicalPCA(("pl", k), [ticker(("l", k), 1, action=("a", k))]))
        right = PSIOAFamily("R", lambda k: CanonicalPCA(("pr", k), [ticker(("r", k), 1, action=("b", k))]))
        member = compose_families(left, right)[1]
        assert isinstance(member, PCA)

    def test_bound_profile_monotone_for_growing_automata(self):
        fam = self.ticker_family()
        profile = bound_profile(fam, range(1, 6))
        bounds = [b for _, b in profile]
        assert bounds == sorted(bounds)

    def test_polynomial_fit_over_profile(self):
        fam = self.ticker_family()
        fit = polynomial_bound_profile(fam, range(1, 10))
        assert fit.degree <= 2
        assert fit.dominates([(k, float(b)) for k, b in bound_profile(fam, range(1, 10))])

    def test_scheduler_family_bounds(self):
        fam = SchedulerFamily("seqs", lambda k: ActionSequenceScheduler(["tick"] * k))
        assert fam.is_time_bounded(lambda k: k, range(1, 8))
        assert not fam.is_time_bounded(lambda k: k - 1, range(1, 8))

    def test_family_map_derives(self):
        fam = self.ticker_family()
        hidden = fam.map(lambda k, a: hide_psioa(a, lambda q: {"tick"}))
        assert "tick" in hidden[2].signature(0).internals
