"""Unit tests for the observability substrate (:mod:`repro.obs`).

Covers the tentpole API surface: span nesting and timing monotonicity,
disabled-mode no-op behaviour, in-place registry reset (test isolation is
provided by the suite-wide autouse fixture in ``tests/conftest.py``), the
run-report schema round-trip, and the benchmark trajectory merger.
"""

import importlib.util
import json
import pathlib
import time
from types import SimpleNamespace

import pytest

from repro.obs import metrics, trace
from repro.obs.procinfo import peak_rss_bytes
from repro.obs.report import (
    REPORT_SCHEMA,
    ReportSchemaError,
    build_report,
    format_record,
    format_suite_summary,
    format_summary_table,
    outcome_record,
    validate_report,
)
from repro.obs.trace import Tracer, span, traced


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", kind="unit"):
            time.sleep(0.001)
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["args"]["kind"] == "unit"
        assert event["dur"] >= 1000.0  # microseconds
        assert event["ts"] >= 0

    def test_nesting_depth_and_containment(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = tracer.events()  # children close (and record) first
        assert child["name"] == "child" and parent["name"] == "parent"
        assert child["args"]["depth"] == parent["args"]["depth"] + 1
        # The child's interval lies within the parent's.
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_sequential_spans_have_monotonic_timestamps(self):
        tracer = Tracer()
        tracer.enable()
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        events = tracer.events()
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)
        assert all(e["dur"] >= 0 for e in events)

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second  # the shared null span: no allocation
        with first:
            pass
        assert tracer.events() == []
        # Module-level shorthand honours the global switch the same way.
        assert trace.is_enabled() is False
        assert span("x") is span("y")

    def test_traced_decorator_disabled_passthrough_and_enabled_event(self):
        calls = []

        @traced("my.op")
        def operation(value):
            calls.append(value)
            return value * 2

        assert operation(21) == 42  # disabled: plain call, no event
        assert trace.TRACER.events() == []
        trace.enable()
        try:
            assert operation(2) == 4
        finally:
            trace.disable()
        (event,) = trace.TRACER.events()
        assert event["name"] == "my.op"
        assert calls == [21, 2]

    def test_span_annotates_exceptions(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["args"]["exception"] == "ValueError"

    def test_instant_events_and_save(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        tracer.instant("mark", step=3)
        with tracer.span("w"):
            pass
        target = tmp_path / "nested" / "out.trace.json"
        tracer.save(target)
        payload = json.loads(target.read_text())
        assert payload["displayTimeUnit"] == "ms"
        phases = sorted(e["ph"] for e in payload["traceEvents"])
        assert phases == ["X", "i"]

    def test_clear_discards_events(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("w"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestMetrics:
    def test_counter_binding_survives_reset(self):
        bound = metrics.counter("test.bound")
        bound.inc(3)
        metrics.reset()
        assert bound.value == 0
        assert metrics.counter("test.bound") is bound  # identity preserved
        bound.inc()
        assert metrics.snapshot()["counters"]["test.bound"] == 1

    def test_snapshot_omits_untouched_instruments(self):
        metrics.counter("test.zero")
        metrics.counter("test.hot").inc(5)
        snap = metrics.snapshot()
        assert "test.zero" not in snap["counters"]
        assert snap["counters"]["test.hot"] == 5
        full = metrics.snapshot(include_zero=True)
        assert full["counters"]["test.zero"] == 0

    def test_gauge_and_histogram(self):
        metrics.gauge("test.g").set(7)
        hist = metrics.histogram("test.h")
        for value in (3, 1, 2):
            hist.observe(value)
        snap = metrics.snapshot()
        assert snap["gauges"]["test.g"] == 7
        stats = snap["histograms"]["test.h"]
        assert stats == {
            "count": 3,
            "sum": 6,
            "min": 1,
            "max": 3,
            "p50": 2,
            "p90": 3,
            "p99": 3,
            "mean": 2.0,
            "samples": [3, 1, 2],
        }

    def test_histogram_percentiles_nearest_rank(self):
        hist = metrics.histogram("test.pct")
        for value in range(1, 11):  # 1..10
            hist.observe(value)
        stats = hist.as_dict()
        assert stats["p50"] == 5  # ceil(0.5 * 10) = rank 5
        assert stats["p90"] == 9  # ceil(0.9 * 10) = rank 9
        assert stats["p99"] == 10  # ceil(0.99 * 10) = rank 10
        assert stats["mean"] == pytest.approx(5.5)
        assert stats["max"] == 10
        single = metrics.histogram("test.pct.single")
        single.observe(41)
        stats = single.as_dict()
        assert stats["p50"] == 41 and stats["p90"] == 41
        assert stats["p99"] == 41 and stats["mean"] == 41
        empty = metrics.histogram("test.pct.empty")
        stats = empty.as_dict()
        assert stats["p50"] is None and stats["p90"] is None
        assert stats["p99"] is None and stats["mean"] is None

    def test_histogram_sample_cap(self):
        hist = metrics.histogram("test.capped")
        for value in range(200):
            hist.observe(value)
        assert hist.count == 200
        assert len(hist.samples) == metrics.HISTOGRAM_SAMPLE_CAP
        assert hist.samples == list(range(metrics.HISTOGRAM_SAMPLE_CAP))

    def test_subtract_counters(self):
        after = {"a": 5, "b": 2, "c": 1}
        before = {"a": 3, "b": 2}
        assert metrics.subtract_counters(after, before) == {"a": 2, "c": 1}

    # The two tests below verify the suite-wide autouse reset fixture: the
    # first leaks a counter bump on purpose, the second (running later in
    # file order) must start from a clean registry regardless.
    def test_registry_isolation_leak(self):
        assert metrics.snapshot().get("counters", {}).get("test.leak") is None
        metrics.counter("test.leak").inc(99)

    def test_registry_isolation_clean_slate(self):
        assert "test.leak" not in metrics.snapshot()["counters"]


class TestProcinfo:
    def test_peak_rss_is_positive_on_posix(self):
        peak = peak_rss_bytes()
        assert peak is None or peak > 1024 * 1024  # >1MB for any live python


def _outcome(**overrides):
    base = dict(
        experiment="E1",
        status="pass",
        ok=True,
        elapsed=0.25,
        attempts=1,
        seed=None,
        report=SimpleNamespace(table="col a  col b\n1      2"),
        error=None,
        metrics={
            "counters": {"scheduler.steps": 42, "measure.compose.calls": 7},
            "gauges": {},
            "histograms": {
                "faults.plan.seed": {
                    "count": 1, "sum": 9, "min": 9, "max": 9,
                    "p50": 9, "p90": 9, "samples": [9],
                }
            },
        },
        peak_rss_bytes=48 * 1024 * 1024,
        trace_path=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestReportSchema:
    def test_round_trip_and_validation(self):
        records = [
            outcome_record(_outcome(), "claim one", default_seed=123),
            outcome_record(
                _outcome(
                    experiment="E2",
                    status="error",
                    ok=False,
                    report=None,
                    error="Traceback: boom",
                    seed=5,
                ),
                "claim two",
                default_seed=123,
                trace_file="traces/E2.trace.json",
            ),
        ]
        payload = build_report(records, argv=["E1", "E2"], fast=True, wall_time_s=1.5)
        restored = json.loads(json.dumps(payload))
        validate_report(restored)  # raises on violation
        assert restored["summary"] == {
            "total": 2,
            "passed": 1,
            "failures": [{"experiment": "E2", "status": "error"}],
            "wall_time_s": 1.5,
        }
        assert restored["experiments"][0]["fault_seeds"] == [9]
        assert restored["experiments"][1]["seed"] == 5
        assert restored["experiments"][1]["default_seed"] == 123

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.update(schema="wrong/schema"),
            lambda p: p["experiments"][0].pop("counters"),
            lambda p: p["experiments"][0].update(status="exploded"),
            lambda p: p["experiments"][0].update(ok=False),  # inconsistent with pass
            lambda p: p["summary"].update(total=99),
            lambda p: p["experiments"][0]["counters"].update({"bad": "str"}),
        ],
    )
    def test_validation_rejects_corruption(self, mutate):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        corrupted = json.loads(json.dumps(payload))
        mutate(corrupted)
        with pytest.raises(ReportSchemaError):
            validate_report(corrupted)

    def test_schema_constant_is_versioned(self):
        assert REPORT_SCHEMA.endswith("/4")

    def test_legacy_v3_report_still_validates(self):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        legacy = json.loads(json.dumps(payload))
        legacy["schema"] = "repro.obs.run-report/3"
        validate_report(legacy)  # raises on violation

    def test_histogram_p99_and_mean_are_optional(self):
        # /4 exports carry p99/mean; older artifacts without them (and the
        # committed /3-era fixtures) must keep validating unchanged.
        record = outcome_record(_outcome(), "claim", default_seed=1)
        payload = build_report([record], fast=True)
        with_stats = json.loads(json.dumps(payload))
        with_stats["experiments"][0]["histograms"]["faults.plan.seed"].update(
            p99=9, mean=9.0
        )
        validate_report(with_stats)
        rendered = format_summary_table(with_stats)
        assert "p99=9" in rendered and "mean=9" in rendered
        without = json.loads(json.dumps(payload))
        without["experiments"][0]["histograms"]["faults.plan.seed"].pop("p99", None)
        without["experiments"][0]["histograms"]["faults.plan.seed"].pop("mean", None)
        validate_report(without)
        bad = json.loads(json.dumps(with_stats))
        bad["experiments"][0]["histograms"]["faults.plan.seed"]["p99"] = "fast"
        with pytest.raises(ReportSchemaError):
            validate_report(bad)

    def test_legacy_v1_report_without_histograms_validates(self):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        legacy = json.loads(json.dumps(payload))
        legacy["schema"] = "repro.obs.run-report/1"
        for record in legacy["experiments"]:
            record.pop("histograms")  # /1 records predate the field
        validate_report(legacy)  # raises on violation
        # ... but a /2 report may not drop it.
        current = json.loads(json.dumps(payload))
        current["experiments"][0].pop("histograms")
        with pytest.raises(ReportSchemaError):
            validate_report(current)

    def test_record_histograms_carry_percentiles(self):
        record = outcome_record(_outcome(), "claim", default_seed=1)
        stats = record["histograms"]["faults.plan.seed"]
        assert stats["p50"] == 9 and stats["p90"] == 9
        payload = build_report([record], fast=True)
        broken = json.loads(json.dumps(payload))
        broken["experiments"][0]["histograms"]["faults.plan.seed"].pop("p50")
        with pytest.raises(ReportSchemaError):
            validate_report(broken)

    def test_trace_block_round_trips_and_is_validated(self):
        trace_block = {
            "events": 12,
            "files": ["traces/E15.trace.json"],
            "processes": [
                {"pid": 1, "name": "caller (pid 1)", "spans": 4, "instants": 2,
                 "busy_us": 100.0, "idle_us": 0.0, "wall_us": 100.0},
                {"pid": 2, "name": "fork (pid 2)", "spans": 8, "instants": 0,
                 "busy_us": 80.0, "idle_us": 5.0, "wall_us": 85.0},
            ],
            "slowest_spans": [{"name": "parallel.map", "pid": 1, "dur_us": 90.0}],
        }
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)],
            fast=True,
            trace=trace_block,
        )
        restored = json.loads(json.dumps(payload))
        validate_report(restored)
        assert restored["summary"]["trace"]["events"] == 12
        rendered = format_summary_table(restored)
        assert "trace: 12 events across 2 process lane(s)" in rendered

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda t: t.update(events=-1),
            lambda t: t.update(events="12"),
            lambda t: t.update(files="not-a-list"),
            lambda t: t["processes"][0].pop("busy_us"),
            lambda t: t["processes"][0].update(spans=-2),
            lambda t: t["slowest_spans"][0].update(dur_us=None),
        ],
    )
    def test_validation_rejects_bad_trace_block(self, mutate):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)],
            fast=True,
            trace={
                "events": 1,
                "files": [],
                "processes": [
                    {"pid": 1, "name": None, "spans": 1, "instants": 0,
                     "busy_us": 1.0, "idle_us": 0.0, "wall_us": 1.0}
                ],
                "slowest_spans": [{"name": "s", "pid": 1, "dur_us": 1.0}],
            },
        )
        corrupted = json.loads(json.dumps(payload))
        mutate(corrupted["summary"]["trace"])
        with pytest.raises(ReportSchemaError):
            validate_report(corrupted)

    def test_backend_block_round_trips(self):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)],
            fast=True,
            backend={"name": "fork", "spec": "fork:4", "parallelism": 4},
        )
        restored = json.loads(json.dumps(payload))
        validate_report(restored)
        assert restored["summary"]["backend"] == {
            "name": "fork",
            "spec": "fork:4",
            "parallelism": 4,
        }

    @pytest.mark.parametrize(
        "backend",
        [
            "fork:4",  # not an object
            {"name": "fork", "spec": "fork:4"},  # parallelism missing
            {"name": "fork", "spec": "fork:4", "parallelism": 0},
            {"name": "fork", "spec": "fork:4", "parallelism": True},
            {"name": 7, "spec": "fork:4", "parallelism": 4},
            {"name": "fork", "spec": None, "parallelism": 4},
        ],
    )
    def test_validation_rejects_bad_backend_block(self, backend):
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        corrupted = json.loads(json.dumps(payload, default=repr))
        corrupted["summary"]["backend"] = backend
        with pytest.raises(ReportSchemaError):
            validate_report(corrupted)


class TestReportFormatting:
    def test_format_record_pass_renders_table_and_timing(self):
        record = outcome_record(_outcome(), "the claim", default_seed=1)
        text = format_record(record)
        assert text.startswith("[PASS] E1 — the claim")
        assert "col a  col b" in text
        assert "(0.25s)" in text

    def test_format_record_error_renders_detail_attempts_seed(self):
        record = outcome_record(
            _outcome(
                status="error", ok=False, report=None, error="boom\nline2",
                attempts=3, seed=7,
            ),
            "the claim",
        )
        text = format_record(record)
        assert text.startswith("[ERROR] E1 — the claim")
        assert "   boom\n   line2" in text
        assert "3 attempts" in text and "seed 7" in text

    def test_suite_summary_lines(self):
        passing = outcome_record(_outcome(), "c", default_seed=1)
        failing = outcome_record(
            _outcome(experiment="E9", status="timeout", ok=False, report=None,
                     error="slow"),
            "c",
        )
        assert format_suite_summary([passing]) == "all 1 experiments passed"
        summary = format_suite_summary([passing, failing])
        assert summary.startswith("FAILED (1/2 run)") and "E9 [TIMEOUT]" in summary

    def test_summary_table_has_counter_columns(self):
        payload = build_report(
            [outcome_record(_outcome(), "c", default_seed=1)], fast=True
        )
        table = format_summary_table(payload)
        assert "steps" in table and "42" in table
        assert "1/1 passed" in table

    def test_summary_table_renders_histogram_percentiles(self):
        payload = build_report(
            [outcome_record(_outcome(), "c", default_seed=1)], fast=True
        )
        table = format_summary_table(payload)
        assert "E1 faults.plan.seed: n=1 p50=9 p90=9 max=9" in table


def _load_trajectory_tool():
    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "report_trajectory.py"
    spec = importlib.util.spec_from_file_location("report_trajectory", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchTrajectory:
    def test_merge_and_format(self, tmp_path):
        tool = _load_trajectory_tool()
        for index, steps in enumerate((100, 80)):
            payload = {
                "schema": tool.TRAJECTORY_SCHEMA,
                "created_unix": 0.0,
                "runs": {
                    "bench::test_a": {
                        "elapsed_s": 0.5,
                        "counters": {"scheduler.steps": steps},
                    }
                },
            }
            (tmp_path / f"run{index}.json").write_text(json.dumps(payload))
        merged = tool.merge(
            [str(tmp_path / "run0.json"), str(tmp_path / "run1.json")],
            "scheduler.steps",
        )
        assert merged["rows"]["bench::test_a"] == [100, 80]
        table = tool.format_table(merged)
        assert "bench::test_a" in table and "100" in table and "80" in table

    def test_rejects_foreign_schema(self, tmp_path):
        tool = _load_trajectory_tool()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else", "runs": {}}))
        with pytest.raises(ValueError):
            tool.load_trajectory(str(bad))

    def test_main_exits_nonzero_on_schema_invalid_inputs(self, tmp_path, capsys):
        tool = _load_trajectory_tool()
        good = tmp_path / "good.json"
        good.write_text(
            json.dumps({"schema": tool.TRAJECTORY_SCHEMA, "runs": {}})
        )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else", "runs": {}}))
        # A bad file anywhere in the input list is an error, never skipped.
        assert tool.main([str(good), str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
        assert tool.main([str(tmp_path / "missing.json")]) == 1
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert tool.main([str(broken)]) == 1

    def test_main_delegates_run_reports_to_compare(self, tmp_path, capsys):
        tool = _load_trajectory_tool()
        payload = build_report(
            [outcome_record(_outcome(), "claim", default_seed=1)], fast=True
        )
        for stem in ("a", "b"):
            (tmp_path / f"{stem}.json").write_text(json.dumps(payload))
        code = tool.main([str(tmp_path / "a.json"), str(tmp_path / "b.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out
        # A lone run report is not a comparable pair.
        assert tool.main([str(tmp_path / "a.json")]) == 1
        assert "exactly two" in capsys.readouterr().err
