"""Tests for the compositional (two-automata) consensus protocol."""

from fractions import Fraction

import pytest

from repro.core.composition import check_partial_compatibility, compose
from repro.core.psioa import validate_psioa
from repro.secure.implementation import implementation_distance, neg_pt_implements
from repro.semantics.insight import accept_insight, f_dist
from repro.systems.consensus import consensus_environment, ideal_consensus
from repro.systems.consensus_compositional import (
    consensus_pair,
    consensus_pair_schema,
    consensus_process,
)

INSIGHT = accept_insight()
SCHEMA = consensus_pair_schema()
Q = 40


def violation_probability(system, v1, v2):
    env = consensus_environment(v1, v2)
    scheduler = next(iter(SCHEMA(compose(env, system), Q)))
    return f_dist(INSIGHT, env, system, scheduler)(1)


class TestProcessAutomaton:
    def test_single_process_validates(self):
        validate_psioa(consensus_process(1, 2, 2), max_states=20_000)

    def test_pair_partially_compatible(self):
        p1 = consensus_process(1, 2, 1)
        p2 = consensus_process(2, 1, 1)
        assert check_partial_compatibility([p1, p2], max_states=100_000)

    def test_composed_pair_validates(self):
        validate_psioa(consensus_pair(1), max_states=100_000)

    def test_vote_actions_wire_outputs_to_inputs(self):
        p1 = consensus_process(1, 2, 1)
        sig = p1.signature(("send", 0, 1))
        assert ("vote", 1, 0, 1) in sig.outputs
        assert ("vote", 2, 0, 0) in sig.inputs


class TestProtocolBehaviour:
    def test_agreement_on_common_proposal(self):
        assert violation_probability(consensus_pair(1), 1, 1) == 0
        assert violation_probability(consensus_pair(1), 0, 0) == 0

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_disagreement_probability_matches_monolithic(self, k):
        # The emergent behaviour of the composition equals the monolithic
        # model: residual disagreement exactly 2^-k.
        assert violation_probability(consensus_pair(k), 0, 1) == Fraction(1, 2 ** k)

    def test_symmetric_conflict(self):
        assert violation_probability(consensus_pair(2), 1, 0) == Fraction(1, 4)

    def test_decisions_are_valid_values(self):
        # With agreeing proposals the decision is the proposed value.
        from repro.semantics.measure import execution_measure

        env = consensus_environment(1, 1)
        world = compose(env, consensus_pair(1))
        scheduler = next(iter(SCHEMA(world, Q)))
        measure = execution_measure(world, scheduler)
        for execution in measure.support():
            decisions = [a for a in execution.actions if a[0] == "decide"]
            assert decisions == [("decide", 1, 1), ("decide", 2, 1)]


class TestImplementsIdeal:
    def test_profile_negligible(self):
        envs = [consensus_environment(v1, v2) for v1 in (0, 1) for v2 in (0, 1)]
        profile = []
        for k in (1, 2, 3):
            d = implementation_distance(
                consensus_pair(k),
                ideal_consensus(("ideal", k)),
                schema=SCHEMA,
                insight=INSIGHT,
                environments=envs,
                q1=Q,
                q2=Q,
            )
            profile.append((k, float(d)))
            assert d == Fraction(1, 2 ** k)
        assert neg_pt_implements(profile)
