"""Tests for the Theorem 4.30 simulator-composition machinery
(`composed_simulator`, `compose_emulation_instances`)."""

from fractions import Fraction

import pytest

from repro.bounded.families import PSIOAFamily
from repro.core.composition import compose
from repro.secure.adversary import is_adversary
from repro.secure.dummy import adversary_rename, dummy_adversary
from repro.secure.emulation import (
    EmulationInstance,
    compose_emulation_instances,
    composed_simulator,
    hidden_world,
)
from repro.secure.structured import compose_structured
from repro.systems.channels import (
    channel_emulation_instance,
    channel_simulator,
    guessing_adversary,
    ideal_channel,
    real_channel,
)
from repro.systems.commitment import (
    commitment_emulation_instance,
    commitment_simulator,
    ideal_commitment,
    posting_adversary,
    real_commitment,
)


class TestComposedSimulator:
    def test_shape_hides_renamed_channel(self):
        # Sim = hide(DSim || g(Adv), g(AAct)): the g-named channel between
        # the dummy simulators and the renamed adversary must be internal.
        real = real_channel("r", 1)
        g = adversary_rename(real)
        dummy, _ = dummy_adversary(real, g)
        dsim = channel_simulator(dummy, name="DSim")
        adv = guessing_adversary()
        sim = composed_simulator([dsim], adv, g, frozenset(g.values()), name="Sim")
        sig = sim.signature(sim.start)
        for renamed_action in g.values():
            assert renamed_action not in sig.outputs

    def test_composed_instance_builds(self):
        chan = channel_emulation_instance(leaky=True, name="chan")
        com = commitment_emulation_instance(leaky=True, name="com")

        def merged_g_for(k):
            real = compose_structured(chan.real[k], com.real[k])
            return adversary_rename(real)

        def dummy_simulator_for(i, k):
            instance = [chan, com][i]
            real = instance.real[k]
            g = adversary_rename(real)
            dummy, _ = dummy_adversary(real, g)
            return instance.simulator_for(k, dummy)

        composite = compose_emulation_instances(
            [chan, com],
            merged_g_for=merged_g_for,
            dummy_simulator_for=dummy_simulator_for,
        )
        real_member = composite.real[1]
        ideal_member = composite.ideal[1]
        assert real_member.global_aact() == {
            ("leak", 0), ("leak", 1), ("post", 0), ("post", 1)
        }
        assert ideal_member.global_aact() == {("sent",), ("posted",)}

        adv = compose(
            guessing_adversary("chan-adv"),
            posting_adversary("com-adv", guess_kind="cguess"),
            name="Adv",
        )
        sim = composite.simulator_for(1, adv)
        # The composed simulator exposes no renamed adversary channel.
        g = merged_g_for(1)
        sig = sim.signature(sim.start)
        for renamed_action in g.values():
            assert renamed_action not in sig.outputs

    def test_per_component_simulators_are_adversaries_for_ideal(self):
        chan_sim = channel_simulator(guessing_adversary())
        assert is_adversary(chan_sim, ideal_channel())
        com_sim = commitment_simulator(posting_adversary(guess_kind="cguess"))
        assert is_adversary(com_sim, ideal_commitment())

    def test_hidden_world_internalizes_adversary_channel(self):
        real = real_channel("hr", 2)
        world = hidden_world(real, guessing_adversary())
        sig = world.signature(world.start)
        assert ("leak", 0) not in sig.outputs
        # Environment-facing actions survive.
        assert ("send", 0) in sig.inputs
