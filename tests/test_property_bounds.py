"""Property-based checks of the bounds lemmas over random automata.

Generalizes E1/E3 from a size sweep to hypothesis-driven random workloads:
the composition and hiding constants must stay below the universal
ceilings for *every* generated automaton pair, not just the benchmarked
sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounded.bounds import (
    composition_constant,
    hiding_constant,
    measure_time_bound,
    recognizer_bound,
)
from repro.core.composition import compose
from repro.core.renaming import hide_psioa
from repro.systems.factory import random_psioa

SEEDS = st.integers(min_value=0, max_value=5_000)


def pair(seed, n=4):
    rng = np.random.default_rng(seed)
    left = random_psioa(("bL", seed), rng, n_states=n, n_actions=3)
    right = random_psioa(("bR", seed), rng, n_states=n, n_actions=3)
    return left, right


class TestLemma43Property:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_composition_constant_universally_bounded(self, seed):
        left, right = pair(seed)
        b1 = measure_time_bound(left, states=range(4))
        b2 = measure_time_bound(right, states=range(4))
        states = [(a, b) for a in range(4) for b in range(4)]
        b12 = measure_time_bound(compose(left, right), states=states)
        assert composition_constant([b1, b2], b12) <= 8.0

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_composed_bound_at_least_max_component(self, seed):
        left, right = pair(seed)
        b1 = measure_time_bound(left, states=range(4))
        b2 = measure_time_bound(right, states=range(4))
        states = [(a, b) for a in range(4) for b in range(4)]
        b12 = measure_time_bound(compose(left, right), states=states)
        assert b12 >= max(b1, b2)


class TestLemma45Property:
    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_hiding_constant_universally_bounded(self, seed):
        rng = np.random.default_rng(seed)
        automaton = random_psioa(("bh", seed), rng, n_states=4, n_actions=3)
        outputs = sorted(
            {a for sig in automaton.signatures.values() for a in sig.outputs}, key=repr
        )
        b = measure_time_bound(automaton, states=range(4))
        b_prime = recognizer_bound(outputs)
        hidden = hide_psioa(automaton, lambda q: set(outputs))
        bh = measure_time_bound(hidden, states=range(4))
        assert hiding_constant(b, b_prime, bh) <= 2.0

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_hiding_preserves_part_encodings(self, seed):
        # Hiding only moves signature components; the *automaton parts*
        # (Definition 4.1 item 1 — state/action/transition encodings) are
        # untouched.  Decoder costs may shift slightly (the signature scan
        # order changes), which is exactly why the lemma states a ratio
        # bound rather than equality.
        from repro.bounded.encoding import encoded_length, transition_length

        rng = np.random.default_rng(seed)
        automaton = random_psioa(("bi", seed), rng, n_states=4, n_actions=3)
        outputs = {a for sig in automaton.signatures.values() for a in sig.outputs}
        hidden = hide_psioa(automaton, lambda q: outputs)
        for state in range(4):
            assert encoded_length(state) == encoded_length(state)
            for action in automaton.signature(state).all_actions:
                assert action in hidden.signature(state).all_actions
                assert transition_length(
                    state, action, automaton.transition(state, action)
                ) == transition_length(state, action, hidden.transition(state, action))
