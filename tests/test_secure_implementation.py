"""Tests for the approximate implementation relation (Def 4.12) and its
composability/transitivity (Lemmas 4.13-4.14, Theorems 4.15-4.16)."""

from fractions import Fraction

import pytest

from repro.bounded.families import PSIOAFamily, compose_families
from repro.core.composition import compose
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import dirac
from repro.secure.implementation import (
    ImplementationResult,
    family_implementation_profile,
    implementation_distance,
    implements,
    neg_pt_implements,
)
from repro.semantics.insight import accept_insight, trace_insight
from repro.semantics.schema import SchedulerSchema, oblivious_schema
from repro.semantics.scheduler import ActionSequenceScheduler

from tests.helpers import coin_automaton, listener, ticker


def observer(name="E", accept_on="head"):
    signatures = {
        "watch": Signature(inputs={"head", "tail"}),
        "happy": Signature(inputs={"head", "tail"}, outputs={"acc"}),
        "done": Signature(inputs={"head", "tail"}),
    }
    transitions = {
        ("watch", "head"): dirac("happy" if accept_on == "head" else "watch"),
        ("watch", "tail"): dirac("happy" if accept_on == "tail" else "watch"),
        ("happy", "head"): dirac("happy"),
        ("happy", "tail"): dirac("happy"),
        ("happy", "acc"): dirac("done"),
        ("done", "head"): dirac("done"),
        ("done", "tail"): dirac("done"),
    }
    return TablePSIOA(name, "watch", signatures, transitions)


def coin_schema():
    """Oblivious schedulers over the coin alphabet, locally controlled."""

    def members(automaton, bound):
        base = ["toss", "head", "tail", "acc"]
        import itertools

        for length in range(bound + 1):
            for seq in itertools.product(base, repeat=length):
                yield ActionSequenceScheduler(seq, local_only=True)

    return SchedulerSchema("coin-oblivious", members)


ENVS = [observer()]
SCHEMA = coin_schema()
INSIGHT = accept_insight()


class TestImplements:
    def test_reflexive_at_zero(self):
        coin = coin_automaton("c", Fraction(1, 2))
        result = implements(
            coin,
            coin,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=3,
            q2=3,
            epsilon=0,
        )
        assert result.holds
        assert result.distance == 0
        assert bool(result)

    def test_biased_coin_implements_fair_up_to_bias(self):
        fair = coin_automaton("fair", Fraction(1, 2))
        biased = coin_automaton("biased", Fraction(1, 2) + Fraction(1, 8))
        result = implements(
            biased,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=3,
            q2=3,
            epsilon=Fraction(1, 8),
        )
        assert result.holds

    def test_fails_below_true_distance(self):
        fair = coin_automaton("fair", Fraction(1, 2))
        biased = coin_automaton("biased", Fraction(3, 4))
        result = implements(
            biased,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=3,
            q2=3,
            epsilon=Fraction(1, 8),
        )
        assert not result.holds
        assert result.counterexample is not None

    def test_p_filter_excludes_large_environments(self):
        # With every environment filtered out, the relation holds vacuously.
        fair = coin_automaton("fair", Fraction(1, 2))
        det = coin_automaton("det", 1)
        result = implements(
            det,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=3,
            q2=3,
            epsilon=0,
            p=1,  # far below the observer's measured bound
        )
        assert result.holds

    def test_witness_shortcircuits_search(self):
        coin = coin_automaton("c", Fraction(1, 2))
        calls = []

        def witness(env, scheduler):
            calls.append(scheduler)
            return scheduler  # identity works for A == B

        result = implements(
            coin,
            coin,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=2,
            q2=2,
            epsilon=0,
            witness=witness,
        )
        assert result.holds
        assert calls


class TestImplementationDistance:
    def test_distance_equals_bias(self):
        fair = coin_automaton("fair", Fraction(1, 2))
        biased = coin_automaton("biased", Fraction(3, 4))
        d = implementation_distance(
            biased,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environments=ENVS,
            q1=3,
            q2=3,
        )
        assert d == Fraction(1, 4)

    def test_theorem_416_transitivity(self):
        # d(A1,A3) <= d(A1,A2) + d(A2,A3) with matched bounds.
        a1 = coin_automaton("a1", Fraction(1, 2))
        a2 = coin_automaton("a2", Fraction(5, 8))
        a3 = coin_automaton("a3", Fraction(3, 4))
        kw = dict(schema=SCHEMA, insight=INSIGHT, environments=ENVS, q1=3, q2=3)
        d12 = implementation_distance(a1, a2, **kw)
        d23 = implementation_distance(a2, a3, **kw)
        d13 = implementation_distance(a1, a3, **kw)
        assert d13 <= d12 + d23

    def test_lemma_413_composability(self):
        # Composing a context A3 cannot increase the distance.
        fair = coin_automaton("fair", Fraction(1, 2))
        biased = coin_automaton("biased", Fraction(5, 8))
        context = ticker("ctx", 2, action="ctx-tick")
        kw = dict(schema=SCHEMA, insight=INSIGHT, environments=ENVS, q1=3, q2=3)
        d_bare = implementation_distance(biased, fair, **kw)
        d_composed = implementation_distance(
            compose(context, biased, name="cb"),
            compose(context, fair, name="cf"),
            **kw,
        )
        assert d_composed <= d_bare


class TestFamilies:
    def xor_coin_family(self, name, delta_exponent_offset=0):
        """Coin family with bias 2^-(k+offset): epsilon(k) negligible."""

        def build(k):
            bias = Fraction(1, 2 ** (k + delta_exponent_offset))
            return coin_automaton((name, k), Fraction(1, 2) + bias)

        return PSIOAFamily(name, build)

    def test_profile_decays_geometrically(self):
        fair = PSIOAFamily("fair", lambda k: coin_automaton(("fair", k), Fraction(1, 2)))
        biased = self.xor_coin_family("biased", 1)
        profile = family_implementation_profile(
            biased,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: 3,
            q2=lambda k: 3,
            ks=range(1, 6),
        )
        values = [v for _, v in profile]
        assert values == sorted(values, reverse=True)
        assert neg_pt_implements(profile)

    def test_constant_error_profile_not_negligible(self):
        fair = PSIOAFamily("fair", lambda k: coin_automaton(("fair", k), Fraction(1, 2)))
        skewed = PSIOAFamily("skewed", lambda k: coin_automaton(("skewed", k), Fraction(3, 4)))
        profile = family_implementation_profile(
            skewed,
            fair,
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: 3,
            q2=lambda k: 3,
            ks=range(1, 6),
        )
        assert not neg_pt_implements(profile)

    def test_theorem_415_family_composability(self):
        # Composing a polynomially-bounded context family preserves neg,pt.
        fair = PSIOAFamily("fair", lambda k: coin_automaton(("fair", k), Fraction(1, 2)))
        biased = self.xor_coin_family("biased", 1)
        context = PSIOAFamily("ctx", lambda k: ticker(("ctx", k), 1, action="ctx-tick"))
        profile = family_implementation_profile(
            compose_families(context, biased),
            compose_families(context, fair),
            schema=SCHEMA,
            insight=INSIGHT,
            environment_family=lambda k: ENVS,
            q1=lambda k: 3,
            q2=lambda k: 3,
            ks=range(1, 6),
        )
        assert neg_pt_implements(profile)
