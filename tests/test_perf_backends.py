"""The execution-backend registry, the socket transport, and the runner glue.

Covers spec parsing and normalization, default-backend resolution order,
the ``repro.perf`` public surface, per-backend ``submit_chunks`` semantics,
and — against two real loopback workers — the socket backend end to end:
result equality with serial, boundary metrics merging, remote error
propagation, retry on a dead worker, caller fallback when the whole pool is
gone, and the acceptance bar itself: E12/E15 runner reports byte-identical
across ``serial``, ``fork:4`` and ``socket:`` (modulo wall-clock fields and
cache-warmth-dependent counters), including with a worker killed mid-sweep.
"""

import json
import os
import random
import signal
import socket as socket_module
import subprocess
import sys
import threading
from fractions import Fraction
from pathlib import Path

import pytest

from repro import perf
from repro.obs import metrics
from repro.perf.backends import (
    BackendSpecError,
    ChunkOutcome,
    ExecutionBackend,
    ForkBackend,
    SerialBackend,
    SocketBackend,
    configure_backend,
    current_spec,
    get_backend,
    make_backend,
    normalize_spec,
    register_backend,
)
from repro.perf.backends.sockets import (
    BackendProtocolError,
    parse_addresses,
    recv_frame,
    send_frame,
    worker_info,
)
from repro.perf.parallel import ParallelWorkerError, parallel_map

_SRC = str(Path(__file__).resolve().parents[1] / "src")


# -- spec parsing and the registry ---------------------------------------------


class TestSpecs:
    def test_normalization(self):
        assert normalize_spec("serial") == "serial"
        assert normalize_spec("fork:3") == "fork:3"
        assert normalize_spec("fork") == f"fork:{os.cpu_count() or 1}"
        assert normalize_spec(" Fork:3 ") == "fork:3"
        assert (
            normalize_spec("socket:127.0.0.1:9001,10.0.0.2:9001")
            == "socket:127.0.0.1:9001,10.0.0.2:9001"
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "bogus", "serial:2", "fork:x", "fork:0x4", "socket:", "socket:hostonly", "socket:h:12x"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(BackendSpecError):
            normalize_spec(bad)

    def test_parse_addresses(self):
        assert parse_addresses("h1:1, h2:2") == [("h1", 1), ("h2", 2)]
        with pytest.raises(BackendSpecError):
            parse_addresses(None)

    def test_custom_backend_registration(self):
        class EchoBackend(ExecutionBackend):
            name = "test-echo"

            @property
            def spec(self):
                return "test-echo"

            @property
            def parallelism(self):
                return 1

            def submit_chunks(self, fn, chunks):
                return [
                    ChunkOutcome(results=[(i, None, fn(x)) for i, x in chunk])
                    for chunk in chunks
                ]

        register_backend("test-echo", lambda rest: EchoBackend())
        assert isinstance(make_backend("test-echo"), EchoBackend)


class TestResolution:
    def test_configure_spec_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fork:7")
        configure_backend("fork:3")
        assert current_spec() == "fork:3"
        assert get_backend().parallelism == 3
        configure_backend(None)
        assert current_spec() == "fork:7"
        assert get_backend().parallelism == 7

    def test_configure_instance_used_directly(self):
        instance = SerialBackend()
        configure_backend(instance)
        assert get_backend() is instance

    def test_invalid_spec_rejected_at_configure_time(self):
        with pytest.raises(BackendSpecError):
            configure_backend("warp:9")

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert current_spec() == "serial"

    def test_describe_shape(self):
        info = make_backend("fork:2").describe()
        assert info == {"name": "fork", "spec": "fork:2", "parallelism": 2}
        info = make_backend("socket:127.0.0.1:9001").describe()
        assert info["addresses"] == ["127.0.0.1:9001"]


class TestPublicSurface:
    def test_stable_api_reexported_from_repro_perf(self):
        for name in (
            "parallel_map",
            "configure_backend",
            "get_backend",
            "make_backend",
            "register_backend",
            "current_spec",
            "ExecutionBackend",
            "SerialBackend",
            "ForkBackend",
            "SocketBackend",
            "ParallelWorkerError",
            "BackendSpecError",
            "fingerprint",
            "try_fingerprint",
            "owner_key",
            "active_store",
        ):
            assert hasattr(perf, name), name


# -- per-backend submit_chunks semantics ---------------------------------------


class TestSerialBackend:
    def test_runs_in_process_with_caller_metrics(self):
        backend = SerialBackend()
        c = metrics.counter("test.backends.serial")

        def bump(x):
            c.inc()
            return x * 2

        outcomes = backend.submit_chunks(bump, [[(0, 1), (2, 3)], [(1, 2)]])
        assert [o.results for o in outcomes] == [[(0, None, 2), (2, None, 6)], [(1, None, 4)]]
        # Work already ran in the caller's registry: no snapshot to merge.
        assert all(o.metrics is None for o in outcomes)
        assert c.value == 3

    def test_item_error_carries_traceback(self):
        def boom(x):
            raise ValueError("serial boom")

        (outcome,) = SerialBackend().submit_chunks(boom, [[(0, 1)]])
        index, error, _value = outcome.results[0]
        assert index == 0 and "serial boom" in error


class TestForkBackend:
    def test_chunks_run_in_children(self):
        parent = os.getpid()
        outcomes = ForkBackend(workers=2).submit_chunks(
            lambda x: (x, os.getpid()), [[(0, "a")], [(1, "b")]]
        )
        pids = {outcome.results[0][2][1] for outcome in outcomes}
        assert parent not in pids and len(pids) == 2
        assert all(outcome.metrics is not None for outcome in outcomes)

    def test_hard_death_reports_lost_chunk(self):
        (outcome,) = ForkBackend(workers=1).submit_chunks(
            lambda x: os._exit(3), [[(0, None)]]
        )
        assert outcome.lost


# -- the socket transport, against real loopback workers -----------------------


@pytest.fixture
def spawn_worker():
    procs = []

    def spawn():
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.strip().rsplit(":", 1)[1])
        procs.append(proc)
        return proc, port

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


class TestSocketBackend:
    def test_sweep_matches_serial_exactly(self, spawn_worker):
        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        backend = f"socket:127.0.0.1:{p1},127.0.0.1:{p2}"

        def draw(seed):
            return (random.Random(seed).random(), Fraction(seed, 7))

        items = list(range(19))
        assert parallel_map(draw, items, backend=backend) == [draw(i) for i in items]

    def test_worker_counters_merge_back(self, spawn_worker):
        _, port = spawn_worker()
        c = metrics.counter("test.backends.socket_increments")
        before = c.value

        def bump(x):
            c.inc()
            return x

        parallel_map(bump, list(range(9)), backend=f"socket:127.0.0.1:{port}")
        assert c.value == before + 9

    def test_remote_error_propagates_with_traceback(self, spawn_worker):
        _, port = spawn_worker()

        def maybe_boom(x):
            if x == 3:
                raise ValueError("socket boom")
            return x

        with pytest.raises(ParallelWorkerError) as excinfo:
            parallel_map(maybe_boom, list(range(6)), backend=f"socket:127.0.0.1:{port}")
        assert excinfo.value.index == 3
        assert "socket boom" in str(excinfo.value)

    def test_dead_worker_chunk_retries_on_survivor(self, spawn_worker):
        _, p1 = spawn_worker()
        victim, p2 = spawn_worker()
        backend = make_backend(f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        backend._ensure_connected()
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        retries = metrics.counter("perf.parallel.socket.retries")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        retries_before, fallbacks_before = retries.value, fallbacks.value
        try:
            items = list(range(8))
            assert parallel_map(lambda x: x * x, items, backend=backend) == [
                x * x for x in items
            ]
        finally:
            backend.close()
        assert retries.value > retries_before
        assert fallbacks.value == fallbacks_before

    def test_whole_pool_dead_falls_back_to_caller(self, spawn_worker):
        w1, p1 = spawn_worker()
        w2, p2 = spawn_worker()
        backend = make_backend(f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        backend._ensure_connected()
        for worker in (w1, w2):
            worker.send_signal(signal.SIGKILL)
            worker.wait()
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        try:
            items = list(range(8))
            assert parallel_map(lambda x: x + 1, items, backend=backend) == [
                x + 1 for x in items
            ]
        finally:
            backend.close()
        assert fallbacks.value == before + 2  # both chunks recomputed here

    def test_incompatible_worker_fails_loudly(self):
        server = socket_module.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def impostor():
            conn, _peer = server.accept()
            recv_frame(conn)  # the ping
            send_frame(conn, ("pong", {"protocol": 999, "python": "0.0"}))
            conn.close()

        threading.Thread(target=impostor, daemon=True).start()
        backend = make_backend(f"socket:127.0.0.1:{port}")
        try:
            with pytest.raises(BackendProtocolError, match="protocol 999"):
                backend.submit_chunks(lambda x: x, [[(0, 1)]])
        finally:
            backend.close()
            server.close()

    def test_shutdown_request_stops_worker(self, spawn_worker):
        proc, port = spawn_worker()
        sock = socket_module.create_connection(("127.0.0.1", port), timeout=10)
        send_frame(sock, ("shutdown",))
        assert recv_frame(sock)[0] == "bye"
        sock.close()
        assert proc.wait(timeout=10) == 0


@pytest.fixture
def fake_worker():
    """A loopback server driven by a per-connection handler — lets tests
    play a hung or byzantine worker without subclassing the real one."""
    servers = []

    def start(handler):
        server = socket_module.create_server(("127.0.0.1", 0))
        server.settimeout(30)
        servers.append(server)
        port = server.getsockname()[1]

        def serve():
            while True:
                try:
                    conn, _peer = server.accept()
                except OSError:
                    return  # server closed by teardown
                try:
                    handler(conn)
                except OSError:
                    pass
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass

        threading.Thread(target=serve, daemon=True).start()
        return port

    yield start
    for server in servers:
        server.close()


def _handshake(conn, protocol=3):
    message = recv_frame(conn)
    assert message == ("ping",)
    send_frame(conn, ("pong", {"protocol": protocol, "python": worker_info()["python"]}))


class TestMisbehavingWorkers:
    """Hung and byzantine peers: the caller must survive, with exact results
    and every item's metrics counted exactly once (satellite: issue task 4)."""

    def test_hung_after_handshake_bounded_by_deadline(self, fake_worker):
        hung = threading.Event()

        def stall(conn):
            _handshake(conn, protocol=2)
            recv_frame(conn)  # the run request...
            hung.wait(30)  # ...then dead silence, never a reply

        port = fake_worker(stall)
        misses = metrics.counter("perf.supervise.deadline_misses")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        misses_before, fallbacks_before = misses.value, fallbacks.value
        c = metrics.counter("test.backends.hung_worker_items")
        count_before = c.value

        def bump(x):
            c.inc()
            return x * 3

        try:
            items = list(range(5))
            assert parallel_map(
                bump, items, backend=f"socket:127.0.0.1:{port};deadline=1"
            ) == [x * 3 for x in items]
        finally:
            hung.set()
        assert misses.value > misses_before
        assert fallbacks.value > fallbacks_before
        # The worker never replied, so its chunk contributed no metrics:
        # only the caller's recomputation counted, exactly once per item.
        assert c.value == count_before + len(items)

    @pytest.mark.parametrize("corruption", ["garbage", "truncated"])
    def test_byzantine_frames_survive_without_double_counting(
        self, fake_worker, corruption
    ):
        def corrupt(conn):
            _handshake(conn, protocol=2)
            recv_frame(conn)
            if corruption == "garbage":
                # A length header promising an absurd frame: FrameError.
                conn.sendall((1 << 40).to_bytes(8, "big") + b"\xde\xad\xbe\xef")
            else:
                # A frame cut off mid-payload: EOFError at the receiver.
                conn.sendall((1000).to_bytes(8, "big") + b"x" * 17)

        port = fake_worker(corrupt)
        c = metrics.counter(f"test.backends.byzantine_{corruption}_items")
        count_before = c.value

        def bump(x):
            c.inc()
            return x + 10

        items = list(range(4))
        assert parallel_map(bump, items, backend=f"socket:127.0.0.1:{port}") == [
            x + 10 for x in items
        ]
        assert c.value == count_before + len(items)


class TestWorkerCLI:
    @pytest.mark.parametrize("listen", ["nonsense", ":9001", "127.0.0.1:"])
    def test_bad_listen_exits_2(self, listen):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.perf.worker", "--listen", listen],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert "HOST:PORT" in proc.stderr


# -- the acceptance bar: runner reports identical across backends --------------

#: Fields that legitimately differ between backends/runs: timing, process
#: identity, file paths, the backend/cache description itself, and the
#: counters (per-chunk-process cache warmth changes hit/miss tallies, and
#: transport counters differ across backends by construction).
_VOLATILE_REPORT = {"created_unix", "argv"}
_VOLATILE_SUMMARY = {"wall_time_s", "cache", "backend", "resilience", "config"}
_VOLATILE_RECORD = {"elapsed_s", "peak_rss_bytes", "trace_file", "counters"}


def _scrub_record(record):
    record = {k: v for k, v in record.items() if k not in _VOLATILE_RECORD}
    # Per-attempt wall clocks are timing; everything else in the attempt
    # history (index, seed, status, error class) must match exactly.
    record["attempt_history"] = [
        {k: v for k, v in entry.items() if k != "elapsed_s"}
        for entry in record.get("attempt_history", [])
    ]
    return record


def _scrub_cross_backend(payload):
    payload = {k: v for k, v in payload.items() if k not in _VOLATILE_REPORT}
    payload["summary"] = {
        k: v for k, v in payload["summary"].items() if k not in _VOLATILE_SUMMARY
    }
    payload["experiments"] = [_scrub_record(r) for r in payload["experiments"]]
    return json.dumps(payload, sort_keys=True)


class TestRunnerAcceptance:
    def _run(self, runner, tmp_path, label, backend_spec):
        out = tmp_path / f"report-{label}.json"
        code = runner.main(
            ["E12", "E15", "--backend", backend_spec, "--metrics-out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["backend"]["spec"] == backend_spec
        return _scrub_cross_backend(payload)

    def test_reports_identical_across_backends(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        from repro.experiments import runner

        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        socket_spec = f"socket:127.0.0.1:{p1},127.0.0.1:{p2}"
        reports = {
            label: self._run(runner, tmp_path, label, spec)
            for label, spec in (
                ("serial", "serial"),
                ("fork", "fork:4"),
                ("socket", socket_spec),
            )
        }
        assert reports["serial"] == reports["fork"] == reports["socket"]

    def test_report_identical_with_worker_killed_mid_sweep(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        from repro.experiments import runner

        serial = self._run(runner, tmp_path, "serial-ref", "serial")
        _, p1 = spawn_worker()
        victim, p2 = spawn_worker()
        killer = threading.Timer(
            0.3, lambda: (victim.send_signal(signal.SIGKILL), victim.wait())
        )
        killer.start()
        try:
            survived = self._run(
                runner, tmp_path, "socket-kill", f"socket:127.0.0.1:{p1},127.0.0.1:{p2}"
            )
        finally:
            killer.cancel()
        assert survived == serial
