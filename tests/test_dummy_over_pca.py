"""Lemma 4.29 over PCA: the paper states dummy-adversary insertion for
"structured PSIOA (resp. PCA)" — this exercises the PCA branch with the
dynamic channel (a session created at run time), verifying the exact
f-dist equality through the Forward^s witness on a genuinely dynamic
system.
"""

from fractions import Fraction

import pytest

from repro.probability.measures import total_variation
from repro.secure.dummy import ForwardScheduler, build_dummy_worlds
from repro.semantics.insight import print_insight, trace_insight
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import PriorityScheduler
from repro.systems.channels import (
    channel_environment,
    dynamic_channel_pca,
    real_channel,
)

from tests.helpers import listener


def dynamic_system(k=None):
    return dynamic_channel_pca(
        ("dpca", k), lambda index=0: real_channel(("sess", k, index), k, terminal=True)
    )


def g_listener(system, name="Adv"):
    """Passive adversary on the renamed leak channel."""
    return listener(name, {("g", a) for a in system.global_aact()})


def phi_scheduler(bound=12):
    """Run-to-completion driver of the renamed world: open, send, the
    (branch-dependent) renamed leak, delivery, accept."""
    return PriorityScheduler(
        [
            lambda a: isinstance(a, tuple) and a[0] == "open",
            lambda a: isinstance(a, tuple) and a[0] == "send",
            lambda a: isinstance(a, tuple) and a[0] == "g",
            lambda a: isinstance(a, tuple) and a[0] == "recv",
            lambda a: a == "acc",
        ],
        bound,
    )


class TestLemma429OverPca:
    @pytest.mark.parametrize("k", [None, 2])
    def test_exact_zero_for_dynamic_channel(self, k):
        system = dynamic_system(k)
        env = channel_environment(1, name=("E", k))
        adv = g_listener(system, name=("Adv", k))
        phi, psi, dummy, g = build_dummy_worlds(env, system, adv)
        sigma = phi_scheduler()
        sigma_prime = ForwardScheduler(sigma, phi, dummy)
        for insight in (print_insight(), trace_insight()):
            dist_phi = execution_measure(phi, sigma).map(lambda e: insight(env, phi, e))
            dist_psi = execution_measure(psi, sigma_prime).map(
                lambda e: insight(env, psi, e)
            )
            assert total_variation(dist_phi, dist_psi) == 0

    def test_forward_doubles_only_adversary_steps(self):
        system = dynamic_system(None)
        env = channel_environment(0, name=("E0",))
        adv = g_listener(system, name=("Adv0",))
        phi, psi, dummy, g = build_dummy_worlds(env, system, adv)
        sigma = phi_scheduler()
        sigma_prime = ForwardScheduler(sigma, phi, dummy)
        phi_measure = execution_measure(phi, sigma)
        psi_measure = execution_measure(psi, sigma_prime)
        for phi_exec, psi_exec in zip(
            sorted(phi_measure.support(), key=repr),
            sorted(psi_measure.support(), key=repr),
        ):
            g_steps = sum(
                1 for a in phi_exec.actions if isinstance(a, tuple) and a[0] == "g"
            )
            assert len(psi_exec) == len(phi_exec) + g_steps

    def test_dummy_state_threads_through_dynamic_creation(self):
        # The dummy's pending slot must survive the configuration change
        # (session creation) inside the hidden composition.
        system = dynamic_system(None)
        env = channel_environment(1, name=("E1",))
        adv = g_listener(system, name=("Adv1",))
        phi, psi, dummy, g = build_dummy_worlds(env, system, adv)
        sigma_prime = ForwardScheduler(phi_scheduler(), phi, dummy)
        measure = execution_measure(psi, sigma_prime)
        latched_seen = False
        for execution in measure.support():
            for state in execution.states:
                pending = state[1][1][1]
                if pending is not None:
                    latched_seen = True
        assert latched_seen  # the forwarding path was actually exercised
