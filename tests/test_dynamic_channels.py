"""Tests for dynamic channel sessions (run-time creation/destruction) and
the E13 machinery."""

from fractions import Fraction

import pytest

from repro.config.validate import validate_pca
from repro.core.composition import compose
from repro.core.psioa import reachable_states, validate_psioa
from repro.experiments.common import kind_priority_schema, run_experiment
from repro.secure.dummy import hide_adversary_actions
from repro.semantics.insight import accept_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import PriorityScheduler
from repro.systems.channels import (
    RECV,
    SEND,
    channel_environment,
    dynamic_channel_pca,
    guessing_adversary,
    ideal_channel,
    real_channel,
)


def session_factory(k=None):
    return lambda index=0: real_channel(("sess", index), k, terminal=True)


class TestTerminalChannel:
    def test_terminal_done_state_is_empty(self):
        channel = real_channel("t", terminal=True)
        assert channel.signature("done").is_empty
        validate_psioa(channel)

    def test_terminal_ideal_too(self):
        channel = ideal_channel("ti", terminal=True)
        assert channel.signature("done").is_empty
        validate_psioa(channel)

    def test_non_terminal_unchanged(self):
        channel = real_channel("nt")
        assert not channel.signature("done").is_empty


class TestSingleSession:
    def test_pca_validates(self):
        pca = dynamic_channel_pca("dyn", session_factory())
        validate_pca(pca)

    def test_session_created_then_destroyed(self):
        pca = dynamic_channel_pca("dyn", session_factory())
        sizes = sorted({len(s) for s in reachable_states(pca)})
        assert sizes == [1, 2]  # manager alone <-> manager + live session

    def test_structured_aact_is_session_interface(self):
        pca = dynamic_channel_pca("dyn", session_factory())
        assert pca.global_aact() == {("leak", 0), ("leak", 1)}

    def test_full_session_run(self):
        pca = dynamic_channel_pca("dyn", session_factory())
        env = channel_environment(1)
        world = compose(env, hide_adversary_actions(
            compose(pca, guessing_adversary()), frozenset(pca.global_aact())
        ))
        sched = next(iter(kind_priority_schema(
            ["open", "send", "leak", "guess", "recv"], plain=["acc"]
        )(world, 12)))
        measure = execution_measure(world, sched)
        assert measure.total_mass == 1
        # The adversary guesses correctly half the time (perfect pad).
        dist = measure.map(lambda e: accept_insight()(env, world, e))
        assert dist(1) == Fraction(1, 2)


class TestMultiSession:
    def test_two_sessions_validate(self):
        pca = dynamic_channel_pca("dyn2", session_factory(), sessions=2)
        validate_pca(pca)

    def test_sessions_cycle_create_destroy(self):
        pca = dynamic_channel_pca("dyn2", session_factory(), sessions=2)
        states = reachable_states(pca)
        # Configurations cycle: 1 member (between sessions) and 2 (live).
        sizes = sorted({len(s) for s in states})
        assert sizes == [1, 2]
        # Both session instances appear (at different times, never together).
        live = {n for s in states for n in s.ids()}
        assert ("sess", 0) in live and ("sess", 1) in live
        assert not any({("sess", 0), ("sess", 1)} <= set(s.ids()) for s in states)

    def test_sequential_sessions_run_to_completion(self):
        pca = dynamic_channel_pca("dyn2", session_factory(), sessions=2)

        def two_message_env():
            from repro.core.psioa import TablePSIOA
            from repro.core.signature import Signature
            from repro.probability.measures import dirac

            watched = frozenset({RECV(0), RECV(1)})
            signatures = {
                "s0": Signature(outputs={SEND(1)}, inputs=watched),
                "w0": Signature(inputs=watched),
                "s1": Signature(outputs={SEND(0)}, inputs=watched),
                "w1": Signature(inputs=watched),
            }
            transitions = {
                ("s0", SEND(1)): dirac("w0"),
                ("s1", SEND(0)): dirac("w1"),
            }
            for r in watched:
                transitions[("s0", r)] = dirac("s0")
                transitions[("w0", r)] = dirac("s1")
                transitions[("s1", r)] = dirac("s1")
                transitions[("w1", r)] = dirac("w1")
            return TablePSIOA("E2", "s0", signatures, transitions)

        env = two_message_env()
        world = compose(env, pca)
        sched = PriorityScheduler(
            [
                lambda a: isinstance(a, tuple) and a[0] == "open",
                lambda a: isinstance(a, tuple) and a[0] == "send",
                lambda a: isinstance(a, tuple) and a[0] == "leak",
                lambda a: isinstance(a, tuple) and a[0] == "recv",
            ],
            16,
        )
        measure = execution_measure(world, sched)
        assert measure.total_mass == 1
        for execution in measure.support():
            kinds = [a[0] for a in execution.actions]
            # One explicit open; the second session chains off the first
            # delivery via the configuration-aware created-mapping.
            assert kinds.count("open") == 1
            assert kinds.count("recv") == 2
            # Both sessions delivered; the final configuration holds only
            # the manager.
            assert len(execution.lstate[1]) == 1


class TestE13:
    def test_experiment_passes(self):
        report = run_experiment("E13")
        assert report.passed
        assert report.data["sizes"] == [1, 2]
