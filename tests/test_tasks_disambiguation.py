"""Tests for task schedules ([3], Section 4.4) and the Theorem B.4
renaming (disambiguation) construction."""

from fractions import Fraction

import pytest

from repro.core.composition import compose
from repro.core.psioa import PsioaError, TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import dirac
from repro.secure.disambiguation import (
    RenamedScheduler,
    RINT,
    ROUT,
    disambiguate,
    isomorphism_check,
)
from repro.semantics.insight import accept_insight, trace_insight, f_dist
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.semantics.tasks import (
    TaskScheduleScheduler,
    is_action_deterministic,
    task_partition,
    task_schedule_schema,
)
from repro.systems.coin import coin, coin_observer

from tests.helpers import fair_coin, listener, ticker


class TestTaskPartition:
    def test_partition_groups_by_key(self):
        coin_auto = fair_coin()
        tasks = task_partition(coin_auto, lambda a: "result" if a in ("head", "tail") else a)
        assert frozenset({"head", "tail"}) in tasks
        assert frozenset({"toss"}) in tasks

    def test_partition_excludes_inputs(self):
        ear = listener("ear", {"ping"})
        assert task_partition(ear, lambda a: a) == []

    def test_action_determinism(self):
        coin_auto = fair_coin()
        assert is_action_deterministic(coin_auto, frozenset({"head", "tail"}))
        two_headed = TablePSIOA(
            "two",
            "s",
            {"s": Signature(outputs={"a", "b"}), "t": Signature()},
            {("s", "a"): dirac("t"), ("s", "b"): dirac("t")},
        )
        assert not is_action_deterministic(two_headed, frozenset({"a", "b"}))


class TestTaskSchedule:
    def test_basic_schedule_runs_protocol(self):
        coin_auto = fair_coin()
        schedule = TaskScheduleScheduler(
            [frozenset({"toss"}), frozenset({"head", "tail"})]
        )
        measure = execution_measure(coin_auto, schedule)
        # Both branches complete: the result task fires whichever action is
        # enabled — this is exactly what a plain action sequence cannot do.
        traces = {e.trace(coin_auto.signature) for e in measure.support()}
        assert traces == {("toss", "head"), ("toss", "tail")}
        assert measure.total_mass == 1

    def test_noop_task_skipped(self):
        coin_auto = fair_coin()
        schedule = TaskScheduleScheduler(
            [frozenset({"nonexistent"}), frozenset({"toss"})]
        )
        measure = execution_measure(coin_auto, schedule)
        assert all(e.actions == ("toss",) for e in measure.support())

    def test_exhausted_schedule_halts(self):
        coin_auto = fair_coin()
        schedule = TaskScheduleScheduler([frozenset({"toss"})])
        measure = execution_measure(coin_auto, schedule)
        assert all(len(e) == 1 for e in measure.support())

    def test_nondeterministic_task_rejected(self):
        two_headed = TablePSIOA(
            "two",
            "s",
            {"s": Signature(outputs={"a", "b"}), "t": Signature()},
            {("s", "a"): dirac("t"), ("s", "b"): dirac("t")},
        )
        schedule = TaskScheduleScheduler([frozenset({"a", "b"})])
        with pytest.raises(PsioaError, match="action-deterministic"):
            execution_measure(two_headed, schedule)

    def test_step_bound_is_task_count(self):
        schedule = TaskScheduleScheduler([frozenset({"x"})] * 5)
        assert schedule.step_bound() == 5

    def test_off_schedule_fragments_halt(self):
        from repro.core.executions import Fragment

        coin_auto = fair_coin()
        schedule = TaskScheduleScheduler([frozenset({"toss"}), frozenset({"head"})])
        # A fragment that took 'tail' deviates from this schedule.
        off = Fragment(("q0", "qT", "qF"), ("toss", "tail"))
        assert schedule.decide(coin_auto, off).halting_mass == 1

    def test_schedule_vs_sequence_on_branching(self):
        # The task {head, tail} covers both branches; a single action
        # sequence covers only one.  f-dists under the accept insight show
        # the difference: the schedule observes the full toss distribution.
        env = coin_observer()
        biased = coin("biased", Fraction(2, 3))
        schedule = TaskScheduleScheduler(
            [
                frozenset({"toss"}),
                frozenset({"head", "tail"}),
                frozenset({"acc"}),
            ]
        )
        dist = f_dist(accept_insight(), env, biased, schedule)
        assert dist(1) == Fraction(2, 3)

    def test_schema_enumerates_and_recognizes(self):
        tasks = [frozenset({"toss"}), frozenset({"head", "tail"})]
        schema = task_schedule_schema(tasks)
        members = list(schema(fair_coin(), 2))
        assert len(members) == 1 + 2 + 4
        assert schema.contains(fair_coin(), members[0])
        assert not schema.contains(fair_coin(), ActionSequenceScheduler([]))


class TestDisambiguation:
    def clashing_env(self):
        """An environment whose output 'toss' clashes with the coin's."""
        signatures = {
            "s": Signature(outputs={"toss"}, internals={"think"}),
            "t": Signature(inputs={"head", "tail"}),
        }
        transitions = {
            ("s", "toss"): dirac("t"),
            ("s", "think"): dirac("s"),
            ("t", "head"): dirac("t"),
            ("t", "tail"): dirac("t"),
        }
        return TablePSIOA("E", "s", signatures, transitions)

    def test_clash_detected_then_repaired(self):
        from repro.semantics.environment import is_environment

        env = self.clashing_env()
        coin_auto = fair_coin()
        assert not is_environment(env, coin_auto)  # output clash on 'toss'
        renamed_env, (renamed_coin,), _m = disambiguate(env, [coin_auto])
        assert is_environment(renamed_env, renamed_coin)

    def test_internals_tagged(self):
        env = self.clashing_env()
        renamed_env, _, _ = disambiguate(env, [fair_coin()])
        assert (RINT, "think") in renamed_env.signature("s").internals

    def test_outputs_and_matching_inputs_tagged_consistently(self):
        env = self.clashing_env()
        watcher = listener("W", {"toss"})
        renamed_env, (renamed_watcher,), _ = disambiguate(env, [watcher])
        assert (ROUT, "toss") in renamed_env.signature("s").outputs
        assert (ROUT, "toss") in renamed_watcher.signature("s").inputs

    def test_isomorphism_preserves_perception(self):
        env = coin_observer()
        biased = coin("biased", Fraction(3, 4))
        sigma = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        assert isomorphism_check(env, biased, sigma, trace_insight())
        assert isomorphism_check(env, biased, sigma, accept_insight())

    def test_renamed_scheduler_translates_decisions(self):
        env = coin_observer()
        biased = coin("biased", Fraction(3, 4))
        sigma = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        renamed_env, (renamed_coin,), action_map = disambiguate(env, [biased])
        world = compose(env, biased)
        renamed_world = compose(renamed_env, renamed_coin)
        transported = RenamedScheduler(sigma, world, action_map)
        measure = execution_measure(renamed_world, transported)
        assert measure.total_mass == 1
        # The renamed world fires the tagged accept action.
        tagged_acc = action_map.get("acc", "acc")
        assert any(tagged_acc in e.actions for e in measure.support())

    def test_transitivity_case2_end_to_end(self):
        """Theorem B.4 case 2: an E not in env(A2) still mediates
        transitivity after disambiguation."""
        from repro.probability.measures import total_variation

        # A2's signature includes an output 'probe' that E also outputs.
        def probing_coin(name, p):
            base = coin(name, p)
            signatures = dict(base.signatures)
            signatures["q0"] = Signature(outputs={"toss", "probe"})
            transitions = dict(base.transitions)
            transitions[("q0", "probe")] = dirac("q0")
            return TablePSIOA(name, "q0", signatures, transitions)

        a1 = coin("a1", Fraction(1, 2))
        a2 = probing_coin("a2", Fraction(5, 8))
        a3 = coin("a3", Fraction(3, 4))

        env_sigs = {
            "s": Signature(outputs={"probe"}, inputs={"head", "tail"}),
            "h": Signature(inputs={"head", "tail"}, outputs={"acc", "probe"}),
        }
        env_trans = {
            ("s", "probe"): dirac("s"),
            ("s", "head"): dirac("h"),
            ("s", "tail"): dirac("s"),
            ("h", "head"): dirac("h"),
            ("h", "tail"): dirac("h"),
            ("h", "acc"): dirac("h"),
            ("h", "probe"): dirac("h"),
        }
        env = TablePSIOA("E", "s", env_sigs, env_trans)

        from repro.semantics.environment import is_environment

        assert is_environment(env, a1)
        assert is_environment(env, a3)
        assert not is_environment(env, a2)  # the case-2 situation

        renamed_env, renamed_automata, action_map = disambiguate(env, [a1, a2, a3])
        r1, r2, r3 = renamed_automata
        for renamed in (r1, r2, r3):
            assert is_environment(renamed_env, renamed)

        # Perceptions chain through the middle automaton exactly.
        sigma = ActionSequenceScheduler(["toss", "head", "acc"], local_only=True)
        insight = accept_insight()
        d12 = total_variation(
            f_dist(insight, renamed_env, r1, sigma),
            f_dist(insight, renamed_env, r2, sigma),
        )
        d23 = total_variation(
            f_dist(insight, renamed_env, r2, sigma),
            f_dist(insight, renamed_env, r3, sigma),
        )
        d13 = total_variation(
            f_dist(insight, renamed_env, r1, sigma),
            f_dist(insight, renamed_env, r3, sigma),
        )
        assert d13 <= d12 + d23
