"""Distributed tracing and live progress (:mod:`repro.obs.distributed` / ``.progress``).

Covers the clock-alignment arithmetic (shared vs remote domains), lane
splicing and process-name metadata, offline merge/summarize/check tooling
and its CLI, the fork and socket transports end to end (worker spans land
clock-aligned in the caller's trace; a killed worker leaves retry/death
instants), the ``REPRO_TRACE`` / ``REPRO_PROGRESS`` environment gates, the
runner acceptance bar (a traced E15 sweep on a two-worker ``socket:`` pool
yields one merged Chrome trace with >= 3 process lanes and a validated
``summary.trace`` block), and the disabled-path contracts (tracing and
progress off leave no artifacts in payloads or reports).
"""

import io
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import distributed, progress, trace
from repro.obs.distributed import (
    absorb_chunk_trace,
    check_trace,
    chunk_payload,
    merge_trace_files,
    summarize_events,
)
from repro.obs.report import validate_report
from repro.perf.backends import make_backend
from repro.perf.parallel import parallel_map

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def spawn_worker():
    procs = []

    def spawn():
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=_subprocess_env(),
        )
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.strip().rsplit(":", 1)[1])
        procs.append(proc)
        return proc, port

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


def _span_event(name, ts, dur, pid=1234, tid=1):
    return {"name": name, "ph": "X", "cat": "repro", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": {}}


# -- payloads and clock alignment ------------------------------------------------


class TestChunkPayload:
    def test_disabled_tracer_yields_none(self):
        tracer = trace.Tracer()
        assert chunk_payload("lane", tracer) is None

    def test_payload_carries_clock_samples_and_events(self):
        tracer = trace.Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        payload = chunk_payload("my-lane", tracer)
        assert payload["lane"] == "my-lane"
        assert payload["pid"] == os.getpid()
        assert payload["epoch_ns"] == tracer.epoch_ns
        assert payload["now_ns"] >= tracer.epoch_ns
        assert [e["name"] for e in payload["events"]] == ["work"]


class TestClockAlignment:
    def test_shared_clock_uses_epoch_difference_only(self):
        caller = trace.Tracer()
        caller.enable()
        # A "worker" whose tracer epoch is exactly 5000ns after the
        # caller's: its local ts=10us event happened at caller-time 15us.
        payload = {
            "pid": 9999, "lane": "fork", "clock": "shared",
            "epoch_ns": caller.epoch_ns + 5000,
            "now_ns": caller.epoch_ns + 5000 + 1_000_000,
            "events": [_span_event("w", ts=10.0, dur=2.0, pid=9999)],
        }
        assert absorb_chunk_trace(payload, caller) == 1
        spans = [e for e in caller.events() if e["ph"] == "X"]
        assert spans[0]["ts"] == pytest.approx(15.0)
        assert spans[0]["dur"] == pytest.approx(2.0)  # durations never shift
        assert spans[0]["pid"] == 9999  # the worker keeps its own lane

    def test_remote_clock_offsets_by_receive_stamp(self):
        caller = trace.Tracer()
        caller.enable()
        # A remote worker with an unrelated clock: its epoch means nothing
        # to the caller; recv_ns - now_ns maps worker-time onto caller-time.
        worker_epoch = 123_456_789  # arbitrary foreign timebase
        payload = {
            "pid": 4242, "lane": "worker h:1", "clock": "remote",
            "epoch_ns": worker_epoch,
            "now_ns": worker_epoch + 50_000,   # payload built 50us after epoch
            "recv_ns": caller.epoch_ns + 80_000,  # ...received at caller+80us
            "events": [_span_event("w", ts=10.0, dur=4.0, pid=4242)],
        }
        absorb_chunk_trace(payload, caller)
        (span,) = [e for e in caller.events() if e["ph"] == "X"]
        # worker ts=10us is 40us before payload build; build maps to
        # caller+80us, so the event lands at caller-time 80-40 = 40us.
        assert span["ts"] == pytest.approx(40.0)

    def test_lane_metadata_emitted_once_per_pid(self):
        caller = trace.Tracer()
        caller.enable()
        payload = {
            "pid": 7, "lane": "fork", "clock": "shared",
            "epoch_ns": caller.epoch_ns, "now_ns": caller.epoch_ns,
            "events": [_span_event("a", 0.0, 1.0, pid=7)],
        }
        absorb_chunk_trace(payload, caller)
        absorb_chunk_trace(dict(payload), caller)
        metadata = [e for e in caller.events() if e["ph"] == "M"]
        named = {e["pid"]: e["args"]["name"] for e in metadata}
        assert named[7] == "fork (pid 7)"
        assert os.getpid() in named  # the caller lane is named too
        assert len([e for e in metadata if e["pid"] == 7]) == 1

    def test_absorb_is_noop_when_disabled_or_empty(self):
        caller = trace.Tracer()
        assert absorb_chunk_trace(None, caller) == 0
        caller.enable()
        assert absorb_chunk_trace(None, caller) == 0
        assert absorb_chunk_trace(
            {"pid": 1, "epoch_ns": 0, "now_ns": 0, "events": []}, caller
        ) == 0
        assert caller.events() == []


# -- offline tooling -------------------------------------------------------------


class TestMergeAndCheck:
    def test_merge_remaps_colliding_pids(self, tmp_path):
        for stem in ("one", "two"):
            events = [
                {"name": "process_name", "ph": "M", "pid": 5, "tid": 0, "ts": 0,
                 "args": {"name": "caller (pid 5)"}},
                _span_event("s", 1.0, 2.0, pid=5),
            ]
            (tmp_path / f"{stem}.trace.json").write_text(
                json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
            )
        merged = merge_trace_files(
            [str(tmp_path / "one.trace.json"), str(tmp_path / "two.trace.json")]
        )
        spans = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert len({e["pid"] for e in spans}) == 2  # collision remapped
        names = sorted(
            e["args"]["name"] for e in merged["traceEvents"] if e["ph"] == "M"
        )
        assert names == ["one: caller (pid 5)", "two: caller (pid 5)"]

    def test_summarize_busy_idle_and_slowest(self):
        events = [
            _span_event("a", 0.0, 10.0, pid=1),
            _span_event("b", 20.0, 5.0, pid=1),   # 10us gap -> idle
            _span_event("c", 0.0, 30.0, pid=2),
            {"name": "mark", "ph": "i", "s": "t", "ts": 1.0, "pid": 1, "tid": 1,
             "args": {}},
        ]
        summary = summarize_events(events, top_n=2)
        assert summary["events"] == 4
        lanes = {p["pid"]: p for p in summary["processes"]}
        assert lanes[1]["spans"] == 2 and lanes[1]["instants"] == 1
        assert lanes[1]["busy_us"] == pytest.approx(15.0)
        assert lanes[1]["idle_us"] == pytest.approx(10.0)
        assert lanes[1]["wall_us"] == pytest.approx(25.0)
        assert [s["name"] for s in summary["slowest_spans"]] == ["c", "a"]

    def test_check_trace_flags_problems(self):
        clean = [_span_event("a", 0.0, 5.0), _span_event("b", 6.0, 1.0)]
        assert check_trace(clean) == []
        assert check_trace(clean, min_lanes=2)  # only one lane carries spans
        assert check_trace([_span_event("a", -1.0, 5.0)])  # negative ts
        assert check_trace([_span_event("a", 0.0, -5.0)])  # negative dur
        # Span *ends* must be non-decreasing per (pid, tid) in record order.
        backwards = [_span_event("late", 0.0, 50.0), _span_event("early", 1.0, 2.0)]
        assert any("backwards" in p for p in check_trace(backwards))

    # A span as (pid, start, duration) — duration 0 makes zero-width spans.
    _SPAN_TRIPLES = st.tuples(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=500),
    )

    @given(st.lists(_SPAN_TRIPLES, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_summarize_busy_never_exceeds_wall(self, triples):
        # Overlapping and zero-width spans must not inflate busy time past
        # the lane's wall interval, and idle is exactly the complement.
        events = [
            _span_event(f"s{i}", float(ts), float(dur), pid=pid)
            for i, (pid, ts, dur) in enumerate(triples)
        ]
        summary = summarize_events(events)
        for lane in summary["processes"]:
            assert lane["busy_us"] <= lane["wall_us"] + 1e-6
            assert lane["idle_us"] == pytest.approx(
                lane["wall_us"] - lane["busy_us"], abs=1e-6
            )
            assert lane["busy_us"] >= 0.0 and lane["idle_us"] >= 0.0

    @given(
        st.lists(
            st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4,
                     unique=True),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_remap_keeps_file_lanes_disjoint(self, pid_lists):
        # However the input files' pids collide, the merged trace gives
        # every (file, pid) lane its own distinct pid.
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for index, pids in enumerate(pid_lists):
                events = []
                for pid in pids:
                    events.append(
                        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                         "ts": 0, "args": {"name": f"lane (pid {pid})"}}
                    )
                    events.append(_span_event("s", 1.0, 2.0, pid=pid))
                path = os.path.join(tmp, f"t{index}.trace.json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump({"traceEvents": events}, handle)
                paths.append(path)
            merged = merge_trace_files(paths)
        spans = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        expected_lanes = sum(len(set(pids)) for pids in pid_lists)
        assert len(spans) == expected_lanes
        assert len({e["pid"] for e in spans}) == expected_lanes

    def test_cli_merges_summarizes_and_checks(self, tmp_path, capsys):
        events = [_span_event("s", 0.0, 5.0, pid=1)]
        source = tmp_path / "one.trace.json"
        source.write_text(json.dumps({"traceEvents": events}))
        merged_path = tmp_path / "merged.json"
        code = distributed.main(
            [str(source), "--out", str(merged_path), "--summary", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace OK" in out and "process lane(s)" in out
        assert json.loads(merged_path.read_text())["traceEvents"]
        assert distributed.main([str(source), "--check", "--min-lanes", "3"]) == 1
        assert "TRACE PROBLEM" in capsys.readouterr().out


# -- transports end to end -------------------------------------------------------


class TestForkTransport:
    def test_fork_sweep_collects_aligned_worker_lanes(self):
        trace.enable()
        with trace.span("caller.sweep"):
            out = parallel_map(lambda x: x * x, list(range(8)), backend="fork:2")
        assert out == [x * x for x in range(8)]
        events = trace.TRACER.events()
        assert check_trace(events, min_lanes=3) == []  # caller + 2 fork children
        spans = [e for e in events if e["ph"] == "X"]
        worker_spans = [e for e in spans if e["pid"] != os.getpid()]
        assert {e["name"] for e in worker_spans} == {"backend.chunk", "backend.item"}
        # Clock alignment: every worker span lies inside the caller's
        # parallel.map interval (same host, shared monotonic clock).
        (pmap,) = [e for e in spans if e["name"] == "parallel.map"]
        for event in worker_spans:
            assert event["ts"] >= pmap["ts"] - 1.0
            assert event["ts"] + event["dur"] <= pmap["ts"] + pmap["dur"] + 1.0
        assert [e["name"] for e in events if e["ph"] == "i"] == ["parallel.dispatch"]

    def test_untraced_fork_sweep_ships_no_payload(self):
        backend = make_backend("fork:2")
        outcomes = backend.submit_chunks(lambda x: x, [[(0, 1)], [(1, 2)]])
        assert all(o.trace is None for o in outcomes)
        assert trace.TRACER.events() == []


class TestSocketTransport:
    def test_worker_spans_arrive_on_remote_clock(self, spawn_worker):
        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        trace.enable()
        out = parallel_map(
            lambda x: x + 1, list(range(10)),
            backend=f"socket:127.0.0.1:{p1},127.0.0.1:{p2}",
        )
        assert out == list(range(1, 11))
        events = trace.TRACER.events()
        assert check_trace(events, min_lanes=3) == []
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert any(f"127.0.0.1:{p1}" in lane for lane in lanes)
        assert any(f"127.0.0.1:{p2}" in lane for lane in lanes)

    def test_killed_worker_leaves_retry_and_death_instants(self, spawn_worker):
        _, p1 = spawn_worker()
        victim, p2 = spawn_worker()
        backend = make_backend(f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        backend._ensure_connected()
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        trace.enable()
        try:
            items = list(range(8))
            assert parallel_map(lambda x: x * 3, items, backend=backend) == [
                x * 3 for x in items
            ]
        finally:
            backend.close()
        instants = [e["name"] for e in trace.TRACER.events() if e["ph"] == "i"]
        assert "backend.retry" in instants
        assert "backend.worker_dead" in instants


# -- environment gates -----------------------------------------------------------


class TestEnvGates:
    def test_repro_trace_enables_fresh_process(self):
        script = (
            "from repro.obs import trace; "
            "print('enabled' if trace.is_enabled() else 'disabled')"
        )
        for value, expected in (("on", "enabled"), ("", "disabled"), ("off", "disabled")):
            env = _subprocess_env()
            env["REPRO_TRACE"] = value
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True, text=True, env=env
            )
            assert out.stdout.strip() == expected, (value, out.stdout)

    def test_repro_progress_enables_fresh_process(self):
        script = (
            "from repro.obs import progress; "
            "print('enabled' if progress.is_enabled() else 'disabled')"
        )
        env = _subprocess_env()
        env["REPRO_PROGRESS"] = "1"
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert out.stdout.strip() == "enabled"

    def test_env_gated_socket_worker_traces_untraced_caller(self, spawn_worker, monkeypatch):
        # The caller does NOT trace; the pool was started under REPRO_TRACE.
        # The worker's chunks still record spans (shipped payloads are just
        # dropped by the untraced caller) — and nothing leaks into the
        # caller's tracer.
        monkeypatch.setenv("REPRO_TRACE", "on")
        _, port = spawn_worker()
        monkeypatch.delenv("REPRO_TRACE")
        out = parallel_map(lambda x: x, list(range(4)), backend=f"socket:127.0.0.1:{port}")
        assert out == list(range(4))
        assert trace.TRACER.events() == []


# -- live progress ---------------------------------------------------------------


class _TTYStringIO(io.StringIO):
    def isatty(self):
        return True


class TestProgress:
    def test_renders_done_total_rate_and_clears(self):
        stream = io.StringIO()
        p = progress.Progress(stream=stream)
        p.enable()
        p.begin("sweep", 4, "chunks")
        p.MIN_REDRAW_S = 0.0
        for _ in range(4):
            p.advance()
        p.finish("sweep done")
        text = stream.getvalue()
        assert "sweep: 4/4 chunks (100%)" in text
        assert "/s" in text
        assert text.rstrip().endswith("[repro] sweep done")

    def test_tty_stream_gets_cr_rewrites(self):
        stream = _TTYStringIO()
        p = progress.Progress(stream=stream)
        p.enable()
        p.MIN_REDRAW_S = 0.0
        p.begin("sweep", 2, "chunks")
        p.advance(2)
        p.finish("done")
        text = stream.getvalue()
        assert "\r\x1b[2K" in text
        # One live line, rewritten in place: only the finish message ends
        # with a newline.
        assert text.count("\n") == 1

    def test_non_tty_stream_gets_plain_newline_lines(self):
        stream = io.StringIO()  # isatty() is False: piped/redirected stderr
        p = progress.Progress(stream=stream)
        p.enable()
        p.MIN_REDRAW_S = 0.0
        p.begin("sweep", 2, "chunks")
        p.advance(2)
        p.finish("done")
        text = stream.getvalue()
        assert "\r" not in text and "\x1b" not in text
        lines = text.splitlines()
        assert lines[-1] == "[repro] done"
        assert any("sweep: 2/2 chunks (100%)" in line for line in lines)

    def test_plain_mode_rate_limits_more_coarsely(self):
        stream = io.StringIO()
        p = progress.Progress(stream=stream)
        p.enable()  # default MIN_REDRAW_S, so plain interval is 20x that
        p.begin("sweep", 100, "items")
        drawn_after_begin = stream.getvalue().count("\n")
        p.advance(1)  # neither final nor past the plain redraw interval
        assert stream.getvalue().count("\n") == drawn_after_begin
        p.advance(99)  # the final advance always draws
        assert stream.getvalue().count("\n") == drawn_after_begin + 1

    def test_mode_override_forces_plain_on_a_tty(self):
        stream = _TTYStringIO()
        p = progress.Progress(stream=stream, mode="plain")
        p.enable()
        p.MIN_REDRAW_S = 0.0
        p.begin("sweep", 1, "chunks")
        p.advance()
        p.finish()
        assert "\r" not in stream.getvalue()

    def test_plain_env_value_enables_and_forces_plain(self):
        script = (
            "from repro.obs import progress; "
            "print('enabled' if progress.is_enabled() else 'disabled', "
            "progress.PROGRESS.mode)"
        )
        env = _subprocess_env()
        env["REPRO_PROGRESS"] = "plain"
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert out.stdout.strip() == "enabled plain"

    def test_eta_appears_mid_phase(self):
        stream = io.StringIO()
        p = progress.Progress(stream=stream)
        p.enable()
        p.MIN_REDRAW_S = 0.0
        p.begin("run", 100, "items")
        time.sleep(0.01)
        p.advance(10)
        assert "eta" in stream.getvalue()

    def test_disabled_is_inert_and_stateless(self):
        stream = io.StringIO()
        p = progress.Progress(stream=stream)
        p.begin("x", 10)
        p.advance()
        p.finish()
        assert stream.getvalue() == ""
        assert p._label is None

    def test_module_hooks_honour_global_switch(self):
        # Mirrors the tracer's null-span contract: with the facility off,
        # the module-level hooks fall through on a single flag test and
        # mutate nothing.
        assert not progress.is_enabled()
        before = progress.PROGRESS.__dict__.copy()
        progress.begin("sweep", 10)
        progress.advance(3)
        progress.finish()
        assert progress.PROGRESS.__dict__ == before


# -- disabled-path contracts (tracing/progress off must cost ~nothing) -----------


class TestDisabledOverhead:
    def test_disabled_sweep_adds_no_trace_artifacts(self):
        # Counter-based: the only per-chunk additions on the disabled path
        # are flag tests — no spans buffered, no payloads built, no
        # progress state touched, identical fork counts.
        from repro.obs.metrics import counter

        forks = counter("perf.parallel.forks")
        before = forks.value
        out = parallel_map(lambda x: x + 7, list(range(6)), backend="fork:2")
        assert out == [x + 7 for x in range(6)]
        assert forks.value == before + 2  # one fork per chunk, nothing extra
        assert trace.TRACER.events() == []
        assert trace.TRACER.named_lanes == set()
        assert progress.PROGRESS._label is None

    def test_disabled_span_still_shared_noop_through_backends(self):
        # The serial backend's per-chunk span must be the shared null span
        # when tracing is off (no allocation per chunk).
        assert trace.span("backend.chunk") is trace.span("backend.chunk")

    def test_untraced_runner_report_has_no_trace_block(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        from repro.experiments import runner

        out = tmp_path / "report.json"
        assert runner.main(["E9", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "trace" not in payload["summary"]
        assert payload["experiments"][0]["trace_file"] is None


# -- the acceptance bar ----------------------------------------------------------


class TestRunnerAcceptance:
    def test_traced_e15_socket_sweep_merges_three_lanes(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner

        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        spec = f"socket:127.0.0.1:{p1},127.0.0.1:{p2}"
        trace_dir = tmp_path / "traces"
        report_path = tmp_path / "report.json"
        code = runner.main(
            ["E15", "--backend", spec, "--trace-dir", str(trace_dir),
             "--metrics-out", str(report_path)]
        )
        assert code == 0

        trace_file = trace_dir / "E15.trace.json"
        events = distributed.load_trace(str(trace_file))
        assert check_trace(events, min_lanes=3) == []  # caller + both workers

        # Both workers contributed named chunk lanes, clock-aligned into
        # the experiment child's timebase: every worker chunk span lies
        # within (a small tolerance of) the caller's parallel.map spans.
        lane_names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert any(f"127.0.0.1:{p1}" in n for n in lane_names), lane_names
        assert any(f"127.0.0.1:{p2}" in n for n in lane_names), lane_names
        spans = [e for e in events if e["ph"] == "X"]
        caller_pid = next(
            e["pid"] for e in spans if e["name"] == "experiment"
        )
        maps = [e for e in spans if e["name"] == "parallel.map"]
        assert maps
        sweep_start = min(e["ts"] for e in maps)
        sweep_end = max(e["ts"] + e["dur"] for e in maps)
        worker_chunks = [
            e for e in spans if e["name"] == "backend.chunk" and e["pid"] != caller_pid
        ]
        assert worker_chunks
        slack_us = 250_000.0  # remote offset error is ~one reply latency
        for chunk in worker_chunks:
            assert chunk["ts"] >= sweep_start - slack_us
            assert chunk["ts"] + chunk["dur"] <= sweep_end + slack_us

        # The report's summary.trace block validates and covers the file.
        payload = json.loads(report_path.read_text())
        validate_report(payload)
        trace_block = payload["summary"]["trace"]
        assert trace_block["files"] == [str(trace_file)]
        assert len(trace_block["processes"]) >= 3
        assert trace_block["events"] == len(events)

        # The CLI agrees: merged output passes the structural check.
        merged_out = tmp_path / "merged.json"
        assert distributed.main(
            [str(trace_file), "--out", str(merged_out), "--check", "--min-lanes", "3"]
        ) == 0

    def test_profiled_e15_socket_sweep_reports_phase_lanes(
        self, tmp_path, monkeypatch, spawn_worker
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        from repro.experiments import runner
        from repro.obs import profile as obs_profile

        _, p1 = spawn_worker()
        _, p2 = spawn_worker()
        monkeypatch.setenv("REPRO_BACKEND", f"socket:127.0.0.1:{p1},127.0.0.1:{p2}")
        monkeypatch.setenv("REPRO_PROFILE", "")  # the flags, not the env, drive this run
        trace_dir = tmp_path / "traces"
        profile_dir = tmp_path / "profiles"
        report_path = tmp_path / "report.json"
        try:
            code = runner.main(
                ["E15", "--trace-dir", str(trace_dir),
                 "--profile-dir", str(profile_dir),
                 "--metrics-out", str(report_path)]
            )
        finally:
            obs_profile.disable()
            obs_profile.clear()
        assert code == 0

        payload = json.loads(report_path.read_text())
        validate_report(payload)
        assert payload["schema"].endswith("/4")

        # The profile block carries >= 3 per-pid lanes: the experiment
        # child plus a chunk-fork lane per worker-served chunk.
        block = payload["summary"]["profile"]
        assert block["enabled"] is True
        assert len({lane["pid"] for lane in block["lanes"]}) >= 3
        worker_lanes = [
            lane for lane in block["lanes"] if "worker 127.0.0.1:" in lane["lane"]
        ]
        assert worker_lanes, [lane["lane"] for lane in block["lanes"]]
        all_phases = set()
        for lane in block["lanes"]:
            all_phases.update(lane["phases"])
        assert "measure.unfold" in all_phases, sorted(all_phases)

        # The folded export exists, is listed, and has flamegraph lines.
        folded_path = profile_dir / "E15.folded"
        assert block["folded_files"] == [str(folded_path)]
        folded = folded_path.read_text()
        assert folded.strip()
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in folded.splitlines())

        # The analysis block (riding the merged trace) found a critical
        # path rooted in a real span.
        analysis = payload["summary"]["analysis"]
        steps = analysis["critical_path"]["steps"]
        assert steps and analysis["critical_path"]["wall_us"] > 0
        assert steps[0]["dur_us"] >= steps[-1]["dur_us"]

        # Phase data never lands in per-experiment records.
        assert "profile" not in payload["experiments"][0]
