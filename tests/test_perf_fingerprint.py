"""Property battery for ``repro.perf.fingerprint``.

The structural hash is the key the content-addressed cache trusts, so its
contract is locked down three ways:

* **extensionality** — structurally equal values (rebuilt, reordered,
  deep-copied) hash equal;
* **sensitivity** — any single structural mutation (a weight, a target
  state, a signature action, a captured constant) changes the hash;
* **process stability** — hashes are pure functions of structure, never of
  ``id()``, dict insertion order, or the interpreter's hash salt: a child
  interpreter running under a *different* ``PYTHONHASHSEED`` reproduces
  them byte-for-byte.

Randomized structure generation runs under hypothesis; the cross-process
check spawns real subprocesses.
"""

import copy
import json
import random
import subprocess
import sys
import textwrap
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac
from repro.semantics.scheduler import ActionSequenceScheduler, BoundedScheduler
from repro.perf.fingerprint import (
    Unfingerprintable,
    fingerprint,
    try_fingerprint,
)
from tests.conftest import subprocess_env

# -- strategies ----------------------------------------------------------------

_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.fractions(),
)

_hashable_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**20), max_value=2**20),
    st.text(max_size=8),
    st.fractions(),
)


def _containers(children):
    return st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.frozensets(_hashable_leaves, max_size=4),
    )


_structures = st.recursive(_leaves, _containers, max_leaves=16)


def _automaton(weight_num=1, target="q1", action="a", start="q0", name="m"):
    """A tiny branching automaton; every argument is one mutation site."""
    return TablePSIOA(
        name,
        start,
        {
            "q0": Signature(outputs={action}),
            "q1": Signature(outputs={"b"}),
            "q2": Signature(outputs={"b"}),
            "q3": Signature(),
            "q4": Signature(),
        },
        {
            ("q0", action): DiscreteMeasure(
                {target: Fraction(weight_num, 2), "q2": Fraction(2 - weight_num, 2)}
            ),
            ("q1", "b"): dirac("q3"),
            ("q2", "b"): dirac("q4"),
        },
    )


# -- extensionality ------------------------------------------------------------


class TestEqualStructuresHashEqual:
    @given(_structures)
    @settings(max_examples=150, deadline=None)
    def test_deep_copy_hashes_equal(self, value):
        assert fingerprint(value) == fingerprint(copy.deepcopy(value))

    @given(st.dictionaries(st.text(max_size=6), st.integers(), min_size=1, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_dict_insertion_order_is_invisible(self, mapping):
        items = list(mapping.items())
        random.Random(0).shuffle(items)
        assert fingerprint(mapping) == fingerprint(dict(items))

    def test_rebuilt_automata_hash_equal(self):
        assert fingerprint(_automaton()) == fingerprint(_automaton())

    def test_rebuilt_measures_hash_equal(self):
        m = lambda: DiscreteMeasure({"x": Fraction(1, 3), ("y", 2): Fraction(2, 3)})
        assert fingerprint(m()) == fingerprint(m())

    def test_rebuilt_schedulers_hash_equal(self):
        s = lambda: BoundedScheduler(ActionSequenceScheduler(["a", "b"]), 3)
        assert fingerprint(s()) == fingerprint(s())

    def test_equivalent_closures_hash_equal(self):
        def make(n):
            return lambda x: x * n

        assert fingerprint(make(5)) == fingerprint(make(5))

    def test_cycles_are_safe_and_stable(self):
        def knot():
            a = ["spine"]
            a.append(a)
            return a

        assert fingerprint(knot()) == fingerprint(knot())


# -- sensitivity ---------------------------------------------------------------


class TestSingleMutationChangesHash:
    BASE_KWARGS = dict(weight_num=1, target="q1", action="a", start="q0", name="m")

    @pytest.mark.parametrize(
        "mutation",
        [
            {"weight_num": 2},
            {"target": "q3"},
            {"action": "c"},
            {"start": "q1"},
            {"name": "m2"},
        ],
        ids=lambda m: next(iter(m)),
    )
    def test_automaton_mutations(self, mutation):
        base = fingerprint(_automaton(**self.BASE_KWARGS))
        mutated = fingerprint(_automaton(**{**self.BASE_KWARGS, **mutation}))
        assert base != mutated

    def test_measure_weight_mutation(self):
        a = DiscreteMeasure({"x": Fraction(1, 2), "y": Fraction(1, 2)})
        b = DiscreteMeasure({"x": Fraction(1, 3), "y": Fraction(2, 3)})
        assert fingerprint(a) != fingerprint(b)

    def test_scheduler_parameter_mutation(self):
        a = BoundedScheduler(ActionSequenceScheduler(["a", "b"]), 3)
        b = BoundedScheduler(ActionSequenceScheduler(["a", "b"]), 4)
        c = BoundedScheduler(ActionSequenceScheduler(["a", "c"]), 3)
        assert len({fingerprint(a), fingerprint(b), fingerprint(c)}) == 3

    def test_closure_capture_mutation(self):
        def make(n):
            return lambda x: x * n

        assert fingerprint(make(5)) != fingerprint(make(6))

    def test_closure_body_mutation(self):
        assert fingerprint(lambda x: x * 2) != fingerprint(lambda x: x * 3)

    @given(
        st.lists(st.integers(), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=7),
        st.integers(),
    )
    @settings(max_examples=80, deadline=None)
    def test_list_element_mutation(self, values, index, replacement):
        index %= len(values)
        if values[index] == replacement:
            replacement += 1
        mutated = list(values)
        mutated[index] = replacement
        assert fingerprint(values) != fingerprint(mutated)

    def test_numeric_types_do_not_collide(self):
        # 1, 1.0, True and Fraction(1) compare equal in Python but are
        # structurally distinct cache keys.
        prints = {fingerprint(1), fingerprint(1.0), fingerprint(True), fingerprint(Fraction(1))}
        assert len(prints) == 4


# -- failure behaviour ---------------------------------------------------------


class TestUnfingerprintable:
    def test_opaque_objects_raise(self):
        class Opaque:
            pass

        with pytest.raises(Unfingerprintable):
            fingerprint(Opaque())
        assert try_fingerprint(Opaque()) is None

    def test_try_fingerprint_passes_through(self):
        assert try_fingerprint((1, 2)) == fingerprint((1, 2))


# -- process stability ---------------------------------------------------------

_CHILD_PROGRAM = textwrap.dedent(
    """
    import json, sys
    from fractions import Fraction
    from repro.core.psioa import TablePSIOA
    from repro.core.signature import Signature
    from repro.probability.measures import DiscreteMeasure, dirac
    from repro.semantics.scheduler import ActionSequenceScheduler, BoundedScheduler
    from repro.perf.fingerprint import fingerprint

    def battery():
        auto = TablePSIOA(
            "branch", "q0",
            {"q0": Signature(outputs={"a"}), "q1": Signature(outputs={"b"}),
             "q2": Signature(outputs={"b"}), "q3": Signature(), "q4": Signature()},
            {("q0", "a"): DiscreteMeasure({"q1": Fraction(1, 2), "q2": Fraction(1, 2)}),
             ("q1", "b"): dirac("q3"), ("q2", "b"): dirac("q4")},
        )
        return {
            "auto": auto,
            "sched": BoundedScheduler(ActionSequenceScheduler(["a", "b"]), 2),
            "measure": DiscreteMeasure({"x": Fraction(1, 3), ("y", 2): Fraction(2, 3)}),
            "nested": {"b": [1, 2.5, "s", b"\\xff",
                             frozenset({1, "a", (2, 3)})], "a": None},
            "fn": lambda x: x * auto.start.count("q"),
            "set": {True, 0, 2.5, "z", Fraction(7, 2)},
        }

    print(json.dumps({k: fingerprint(v) for k, v in battery().items()},
                     sort_keys=True))
    """
)


def _battery_in_child(hash_seed):
    env = subprocess_env()
    env["PYTHONHASHSEED"] = str(hash_seed)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_PROGRAM],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


class TestCrossProcessStability:
    def test_stable_across_interpreter_hash_salts(self):
        # Two children with *different* hash salts: any dependence on
        # str/bytes hashing, set iteration order, or id() would diverge.
        first = _battery_in_child(1)
        second = _battery_in_child(424242)
        assert first == second

    def test_child_matches_this_process(self):
        local = {
            "pair": fingerprint((1, "x")),
            "measure": fingerprint(
                DiscreteMeasure({"x": Fraction(1, 3), ("y", 2): Fraction(2, 3)})
            ),
        }
        child = _battery_in_child(7)
        assert child["measure"] == local["measure"]
