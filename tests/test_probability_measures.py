"""Unit + property tests for repro.probability.measures (paper Section 2.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability.measures import (
    DiscreteMeasure,
    SubDiscreteMeasure,
    bernoulli,
    convex_combination,
    correspondence_bijection,
    dirac,
    from_pairs,
    measures_correspond,
    product,
    pushforward,
    total_variation,
    uniform,
)


# -- strategy helpers ---------------------------------------------------------

def rational_measures(outcomes=("a", "b", "c", "d")):
    """Random exact probability measures over a small alphabet."""

    @st.composite
    def build(draw):
        chosen = draw(st.lists(st.sampled_from(outcomes), min_size=1, unique=True))
        raw = [draw(st.integers(min_value=1, max_value=20)) for _ in chosen]
        total = sum(raw)
        return DiscreteMeasure({o: Fraction(w, total) for o, w in zip(chosen, raw)})

    return build()


# -- construction -------------------------------------------------------------

class TestConstruction:
    def test_dirac_is_probability(self):
        eta = dirac("x")
        assert eta("x") == 1
        assert eta("y") == 0
        assert eta.is_dirac()
        assert eta.support() == frozenset({"x"})

    def test_uniform_exact_weights(self):
        eta = uniform(["a", "b", "c"])
        assert eta("a") == Fraction(1, 3)
        assert eta.total_mass == 1

    def test_uniform_rejects_empty(self):
        with pytest.raises(ValueError):
            uniform([])

    def test_uniform_rejects_duplicates(self):
        with pytest.raises(ValueError):
            uniform(["a", "a"])

    def test_bernoulli_endpoints_collapse_to_dirac(self):
        assert bernoulli(0).is_dirac()
        assert bernoulli(1).is_dirac()
        assert bernoulli(1)(True) == 1
        assert bernoulli(0)(False) == 1

    def test_bernoulli_interior(self):
        eta = bernoulli(Fraction(1, 4))
        assert eta(True) == Fraction(1, 4)
        assert eta(False) == Fraction(3, 4)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DiscreteMeasure({"a": -0.5, "b": 1.5})

    def test_mass_must_be_one(self):
        with pytest.raises(ValueError):
            DiscreteMeasure({"a": Fraction(1, 2)})

    def test_zero_weights_dropped_from_support(self):
        eta = DiscreteMeasure({"a": 1, "b": 0})
        assert eta.support() == frozenset({"a"})

    def test_from_pairs_sums_duplicates(self):
        eta = from_pairs([("a", Fraction(1, 2)), ("a", Fraction(1, 4)), ("b", Fraction(1, 4))])
        assert eta("a") == Fraction(3, 4)

    def test_float_measure_tolerance(self):
        eta = DiscreteMeasure({"a": 0.1 + 0.2, "b": 0.7})
        assert abs(eta.total_mass - 1.0) < 1e-9


class TestSubProbability:
    def test_halting_mass(self):
        eta = SubDiscreteMeasure({"a": Fraction(1, 3)})
        assert eta.halting_mass == Fraction(2, 3)

    def test_halt_constructor(self):
        eta = SubDiscreteMeasure.halt()
        assert len(eta) == 0
        assert eta.halting_mass == 1

    def test_mass_above_one_rejected(self):
        with pytest.raises(ValueError):
            SubDiscreteMeasure({"a": Fraction(3, 4), "b": Fraction(1, 2)})

    def test_scale_produces_subprobability(self):
        eta = uniform(["a", "b"]).scale(Fraction(1, 2))
        assert eta.total_mass == Fraction(1, 2)


# -- operations ----------------------------------------------------------------

class TestOperations:
    def test_product_weights_multiply(self):
        eta = product(bernoulli(Fraction(1, 2)), bernoulli(Fraction(1, 3)))
        assert eta((True, True)) == Fraction(1, 6)
        assert eta((False, False)) == Fraction(1, 3)
        assert eta.total_mass == 1

    def test_product_of_none_is_dirac_empty_tuple(self):
        assert product() == dirac(())

    def test_pushforward_merges_fibres(self):
        eta = uniform(["a", "b", "c", "d"])
        image = pushforward(eta, lambda o: o in ("a", "b"))
        assert image(True) == Fraction(1, 2)

    def test_condition_renormalizes(self):
        eta = DiscreteMeasure({"a": Fraction(1, 2), "b": Fraction(1, 4), "c": Fraction(1, 4)})
        cond = eta.condition({"a", "b"})
        assert cond("a") == Fraction(2, 3)
        assert cond.total_mass == 1

    def test_condition_on_null_event_rejected(self):
        with pytest.raises(ValueError):
            dirac("a").condition({"z"})

    def test_convex_combination_probability(self):
        eta = convex_combination([
            (Fraction(1, 2), dirac("a")),
            (Fraction(1, 2), dirac("b")),
        ])
        assert eta("a") == Fraction(1, 2)
        assert eta.total_mass == 1

    def test_convex_combination_subprobability(self):
        eta = convex_combination([(Fraction(1, 2), dirac("a"))])
        assert isinstance(eta, SubDiscreteMeasure)
        assert eta.halting_mass == Fraction(1, 2)

    def test_expectation(self):
        eta = bernoulli(Fraction(1, 4), true=1, false=0)
        assert eta.expectation(lambda v: v) == pytest.approx(0.25)

    def test_probability_of_event(self):
        eta = uniform(["a", "b", "c", "d"])
        assert eta.probability_of({"a", "b"}) == Fraction(1, 2)


# -- total variation -------------------------------------------------------------

class TestTotalVariation:
    def test_identical_measures_zero(self):
        eta = uniform(["a", "b", "c"])
        assert total_variation(eta, eta) == 0

    def test_disjoint_support_one(self):
        assert total_variation(dirac("a"), dirac("b")) == 1

    def test_known_value(self):
        eta = bernoulli(Fraction(1, 2))
        theta = bernoulli(Fraction(1, 4))
        assert total_variation(eta, theta) == Fraction(1, 4)

    def test_symmetry_small(self):
        eta = bernoulli(Fraction(2, 3))
        theta = bernoulli(Fraction(1, 5))
        assert total_variation(eta, theta) == total_variation(theta, eta)

    def test_subprobability_halting_counts(self):
        # Halting deficiency must register as distinguishable mass.
        full = SubDiscreteMeasure({"a": 1})
        half = SubDiscreteMeasure({"a": Fraction(1, 2)})
        assert total_variation(full, half) == Fraction(1, 2)

    @given(rational_measures(), rational_measures())
    @settings(max_examples=60, deadline=None)
    def test_tv_is_metric_bounds(self, eta, theta):
        d = total_variation(eta, theta)
        assert 0 <= d <= 1
        assert total_variation(eta, eta) == 0
        assert total_variation(eta, theta) == total_variation(theta, eta)

    @given(rational_measures(), rational_measures(), rational_measures())
    @settings(max_examples=40, deadline=None)
    def test_tv_triangle_inequality(self, a, b, c):
        assert total_variation(a, c) <= total_variation(a, b) + total_variation(b, c)

    @given(rational_measures(), rational_measures())
    @settings(max_examples=40, deadline=None)
    def test_tv_contracts_under_pushforward(self, eta, theta):
        # Data-processing inequality: insight functions cannot amplify advantage,
        # the informal heart of Definition 3.7 (stability by composition).
        collapse = lambda o: o in ("a", "b")
        assert total_variation(eta.map(collapse), theta.map(collapse)) <= total_variation(eta, theta)


# -- Definition 2.15 correspondence ---------------------------------------------

class TestCorrespondence:
    def test_identity_correspondence(self):
        eta = uniform(["a", "b"])
        assert measures_correspond(eta, eta, lambda o: o)

    def test_relabelling_correspondence(self):
        eta = uniform(["a", "b"])
        theta = uniform(["A", "B"])
        assert measures_correspond(eta, theta, str.upper)
        bij = correspondence_bijection(eta, theta, str.upper)
        assert bij == {"a": "A", "b": "B"}

    def test_non_injective_function_fails(self):
        eta = uniform(["a", "b"])
        theta = dirac("X")
        assert not measures_correspond(eta, theta, lambda o: "X")

    def test_weight_mismatch_fails(self):
        eta = bernoulli(Fraction(1, 2), true="a", false="b")
        theta = bernoulli(Fraction(1, 3), true="A", false="B")
        assert not measures_correspond(eta, theta, str.upper)

    def test_not_onto_fails(self):
        eta = dirac("a")
        theta = uniform(["A", "B"])
        assert not measures_correspond(eta, theta, str.upper)

    @given(rational_measures())
    @settings(max_examples=40, deadline=None)
    def test_correspondence_with_injective_rename_always_holds(self, eta):
        renamed = eta.map(lambda o: ("tag", o))
        assert measures_correspond(eta, renamed, lambda o: ("tag", o))


# -- hashing / equality -----------------------------------------------------------

class TestValueSemantics:
    def test_equality_by_value(self):
        assert uniform(["a", "b"]) == DiscreteMeasure({"b": Fraction(1, 2), "a": Fraction(1, 2)})

    def test_inequality_different_weights(self):
        assert bernoulli(Fraction(1, 2)) != bernoulli(Fraction(1, 3))

    def test_hash_stable_for_equal_support(self):
        assert hash(uniform(["a", "b"])) == hash(DiscreteMeasure({"a": Fraction(1, 4), "b": Fraction(3, 4)}))

    def test_usable_in_sets(self):
        s = {dirac("a"), dirac("a"), dirac("b")}
        assert len(s) == 2
