"""Suite-wide fixtures.

The observability registry and the perf cache are process-global; resetting
both before every test keeps per-test counter assertions and cache-hit
behaviour independent of execution order (instrument objects are zeroed in
place, so module-level bindings stay valid — see :mod:`repro.obs.metrics`).
The cache's enabled flag is re-read from ``REPRO_CACHE`` so the tier-1
suite can run under either cache mode (the CI matrix exercises both).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import log as obs_log
from repro.obs import metrics, profile, progress, trace
from repro.perf import backends as perf_backends
from repro.perf import cache as perf_cache

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def subprocess_env():
    """os.environ with ``src/`` on PYTHONPATH, for spawning repro processes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def spawn_worker():
    """Spawn ``repro.perf.worker`` subprocesses; yields (process, port)."""
    procs = []

    def spawn():
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=subprocess_env(),
        )
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.strip().rsplit(":", 1)[1])
        procs.append(proc)
        return proc, port

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture(autouse=True)
def _clean_observability():
    metrics.reset()
    trace.disable()
    trace.TRACER.clear()
    profile.disable()
    profile.clear()
    progress.disable()
    del progress._LISTENERS[:]
    perf_cache.clear()
    perf_cache.configure(enabled=None)
    # Drop any explicitly configured execution backend so each test resolves
    # from the environment (REPRO_BACKEND — the CI matrix exercises specs).
    perf_backends.configure_backend(None)
    # The persistent store resolves from REPRO_CACHE_DIR per call; a value
    # inherited from the invoking shell would make unrelated tests share a
    # warm disk cache.  Tests opt in with monkeypatch.setenv (monkeypatch
    # runs after this autouse fixture, so opting in still works).
    inherited_cache_dir = os.environ.pop("REPRO_CACHE_DIR", None)
    # RunConfig.apply() exports the resolved REPRO_CACHE so children inherit
    # it; restore the invoking shell's value after each test so the CI cache
    # matrix (on/off) governs every test, not just the ones before the first
    # runner invocation.
    inherited_cache = os.environ.get("REPRO_CACHE")
    # apply() exports these gates the same way.  A service job executed
    # in-process leaves them behind (e.g. REPRO_BACKEND pointing at a pool
    # that died with its test), and the env gate would beat a later test's
    # defaults — so restore the invoking shell's value after each test,
    # keeping the CI backend/supervise matrices in force throughout.
    applied_gates = {
        name: os.environ.get(name)
        for name in ("REPRO_BACKEND", "REPRO_SUPERVISE", "REPRO_SUPERVISE_SEED",
                     "REPRO_CHUNK_DEADLINE", "REPRO_PROFILE", "REPRO_TRACE",
                     "REPRO_PROGRESS")
    }
    # The structured log sink and the job correlation id are process-global
    # (and env-exported by configure/set_correlation); start every test with
    # both cleared so records/tags never leak across tests, and restore the
    # invoking shell's REPRO_LOG afterwards.
    inherited_log = os.environ.pop("REPRO_LOG", None)
    os.environ.pop("REPRO_JOB_ID", None)
    obs_log.configure(None)
    obs_log.set_correlation(None)
    yield
    obs_log.configure(None)
    obs_log.set_correlation(None)
    if inherited_log is not None:
        os.environ["REPRO_LOG"] = inherited_log
    if inherited_cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = inherited_cache_dir
    else:
        os.environ.pop("REPRO_CACHE_DIR", None)
    if inherited_cache is not None:
        os.environ["REPRO_CACHE"] = inherited_cache
    else:
        os.environ.pop("REPRO_CACHE", None)
    for name, value in applied_gates.items():
        if value is not None:
            os.environ[name] = value
        else:
            os.environ.pop(name, None)
