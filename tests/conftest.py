"""Suite-wide fixtures.

The observability registry is process-global; resetting it before every
test keeps per-test counter assertions independent of execution order
(instrument objects are zeroed in place, so module-level bindings stay
valid — see :mod:`repro.obs.metrics`).
"""

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def _clean_observability():
    metrics.reset()
    trace.disable()
    trace.TRACER.clear()
    yield
