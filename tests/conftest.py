"""Suite-wide fixtures.

The observability registry and the perf cache are process-global; resetting
both before every test keeps per-test counter assertions and cache-hit
behaviour independent of execution order (instrument objects are zeroed in
place, so module-level bindings stay valid — see :mod:`repro.obs.metrics`).
The cache's enabled flag is re-read from ``REPRO_CACHE`` so the tier-1
suite can run under either cache mode (the CI matrix exercises both).
"""

import pytest

from repro.obs import metrics, progress, trace
from repro.perf import backends as perf_backends
from repro.perf import cache as perf_cache


@pytest.fixture(autouse=True)
def _clean_observability():
    metrics.reset()
    trace.disable()
    trace.TRACER.clear()
    progress.disable()
    perf_cache.clear()
    perf_cache.configure(enabled=None)
    # Drop any explicitly configured execution backend so each test resolves
    # from the environment (REPRO_BACKEND — the CI matrix exercises specs).
    perf_backends.configure_backend(None)
    yield
