"""The chaos harness, and the acceptance bar it exists for.

Unit-tests the seeded fault decisions (pure functions of their
coordinates), then drives real worker subprocesses through
:class:`~repro.perf.chaos.ChaosProxy` one fault type at a time — the sweep
must survive every one with results identical to serial.  The final test
is the issue's acceptance scenario: an E15 runner sweep on a three-worker
supervised pool where one worker is killed mid-chunk, one hangs after its
handshake, and one sits behind a seeded delay+truncate proxy — the run
must complete within its deadline with a report byte-identical to the
serial reference, and ``summary.resilience`` must show the recoveries.
"""

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs import metrics
from repro.perf.backends import ForkBackend, make_backend
from repro.perf.backends.sockets import recv_frame, send_frame, worker_info
from repro.perf.chaos import ChaosProxy, fork_fault_plan, parse_fork_spec
from repro.perf.parallel import parallel_map

_SRC = str(Path(__file__).resolve().parents[1] / "src")


# -- seeded decisions are pure functions ----------------------------------------


class TestChaosDecisions:
    def test_decide_is_deterministic_and_seed_sensitive(self):
        upstream = ("127.0.0.1", 1)
        a = ChaosProxy(upstream, seed=7, kill=0.2, delay=0.3)
        b = ChaosProxy(upstream, seed=7, kill=0.2, delay=0.3)
        c = ChaosProxy(upstream, seed=8, kill=0.2, delay=0.3)
        coords = [(conn, d, f) for conn in range(3) for d in ("to-worker", "to-client") for f in range(20)]
        plan_a = [a.decide(*coord) for coord in coords]
        assert plan_a == [b.decide(*coord) for coord in coords]
        assert plan_a != [c.decide(*coord) for coord in coords]

    def test_handshake_frames_are_protected(self):
        proxy = ChaosProxy(("127.0.0.1", 1), seed=0, kill=1.0, protect_frames=2)
        assert proxy.decide(0, "to-worker", 0) == "pass"
        assert proxy.decide(0, "to-worker", 1) == "pass"
        assert proxy.decide(0, "to-worker", 2) == "kill"

    def test_parse_fork_spec(self):
        assert parse_fork_spec("seed=7,kill=0.1,delay_s=0.5") == {
            "seed": 7.0,
            "kill": 0.1,
            "delay_s": 0.5,
        }
        with pytest.raises(ValueError):
            parse_fork_spec("warp=1")
        with pytest.raises(ValueError):
            parse_fork_spec("kill")

    def test_fork_fault_plan_keys_on_first_item_index(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FORK", "seed=3,kill=0.5")
        chunk = [(8, "a"), (11, "b")]
        first = fork_fault_plan(chunk)
        assert first == fork_fault_plan(chunk)
        # The same leading item in a differently-shaped chunk faults the
        # same way: the plan ignores chunk geometry beyond its length.
        other = fork_fault_plan([(8, "a")])
        assert (first is None) == (other is None)
        monkeypatch.delenv("REPRO_CHAOS_FORK")
        assert fork_fault_plan(chunk) is None


# -- real workers behind the proxy ----------------------------------------------


@pytest.fixture
def spawn_worker():
    procs = []

    def spawn():
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.strip().rsplit(":", 1)[1])
        procs.append(proc)
        return proc, port

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture
def proxy_factory():
    proxies = []

    def start(port, **kwargs):
        proxy = ChaosProxy(("127.0.0.1", port), **kwargs)
        proxies.append(proxy)
        _host, proxy_port = proxy.start()
        return proxy, proxy_port

    yield start
    for proxy in proxies:
        proxy.stop()


def _triple(x):
    return x * 3


class TestChaosProxySurvival:
    def test_quiet_proxy_is_transparent(self, spawn_worker, proxy_factory):
        _, port = spawn_worker()
        proxy, proxy_port = proxy_factory(port)
        items = list(range(9))
        assert parallel_map(
            _triple, items, backend=f"socket:127.0.0.1:{proxy_port}"
        ) == [x * 3 for x in items]
        assert proxy.injected == []

    @pytest.mark.parametrize("fault", ["kill", "truncate", "garbage", "hang"])
    def test_sweep_survives_each_fault_type(self, spawn_worker, proxy_factory, fault):
        _, port = spawn_worker()
        # protect only the ping/pong: the very next frame (the chunk
        # request or its reply) is hit with probability 1.
        proxy, proxy_port = proxy_factory(
            port, seed=5, protect_frames=1, **{fault: 1.0}
        )
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        items = list(range(5))
        spec = f"socket:127.0.0.1:{proxy_port}"
        if fault == "hang":
            spec += ";deadline=1"  # a withheld frame must not block forever
        assert parallel_map(_triple, items, backend=spec) == [x * 3 for x in items]
        assert any(entry[3] == fault for entry in proxy.injected)
        assert fallbacks.value > before  # the worker was unusable: caller healed

    def test_delay_only_slows_nothing_breaks(self, spawn_worker, proxy_factory):
        _, port = spawn_worker()
        proxy, proxy_port = proxy_factory(
            port, seed=5, protect_frames=1, delay=1.0, delay_s=0.05
        )
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        items = list(range(6))
        assert parallel_map(
            _triple, items, backend=f"socket:127.0.0.1:{proxy_port}"
        ) == [x * 3 for x in items]
        assert any(entry[3] == "delay" for entry in proxy.injected)
        assert fallbacks.value == before  # delayed frames still arrive intact


class TestChaosProxyCLI:
    def test_bad_hostport_exits_2(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.perf.chaos", "--upstream", "nonsense"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert "HOST:PORT" in proc.stderr

    def test_cli_proxy_forwards_a_real_sweep(self, spawn_worker):
        _, port = spawn_worker()
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.perf.chaos",
                "--listen", "127.0.0.1:0",
                "--upstream", f"127.0.0.1:{port}",
                "--seed", "7", "--delay", "0.5", "--delay-s", "0.01",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("repro-chaos-proxy listening on "), banner
            proxy_port = int(banner.strip().rsplit(":", 1)[1])
            items = list(range(7))
            assert parallel_map(
                _triple, items, backend=f"socket:127.0.0.1:{proxy_port}"
            ) == [x * 3 for x in items]
        finally:
            proc.terminate()
            proc.wait()


# -- fork-side fault hooks -------------------------------------------------------


class TestForkFaultHooks:
    def test_mid_chunk_kill_heals_in_caller(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FORK", "seed=1,kill=1.0")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        items = list(range(8))
        assert parallel_map(
            _triple, items, backend=ForkBackend(workers=2)
        ) == [x * 3 for x in items]
        assert fallbacks.value == before + 2  # every chunk child was killed

    def test_delay_fault_changes_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FORK", "seed=1,delay=1.0,delay_s=0.01")
        fallbacks = metrics.counter("perf.parallel.chunk_fallbacks")
        before = fallbacks.value
        items = list(range(8))
        assert parallel_map(
            _triple, items, backend=ForkBackend(workers=2)
        ) == [x * 3 for x in items]
        assert fallbacks.value == before

    def test_malformed_spec_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FORK", "not a spec at all")
        items = list(range(4))
        assert parallel_map(
            _triple, items, backend=ForkBackend(workers=2)
        ) == [x * 3 for x in items]


# -- the acceptance scenario -----------------------------------------------------

_VOLATILE_REPORT = {"created_unix", "argv"}
_VOLATILE_SUMMARY = {"wall_time_s", "cache", "backend", "resilience", "config"}
_VOLATILE_RECORD = {"elapsed_s", "peak_rss_bytes", "trace_file", "counters"}


def _scrub(payload):
    payload = {k: v for k, v in payload.items() if k not in _VOLATILE_REPORT}
    payload["summary"] = {
        k: v for k, v in payload["summary"].items() if k not in _VOLATILE_SUMMARY
    }
    experiments = []
    for record in payload["experiments"]:
        record = {k: v for k, v in record.items() if k not in _VOLATILE_RECORD}
        record["attempt_history"] = [
            {k: v for k, v in entry.items() if k != "elapsed_s"}
            for entry in record.get("attempt_history", [])
        ]
        experiments.append(record)
    payload["experiments"] = experiments
    return json.dumps(payload, sort_keys=True)


@pytest.fixture
def hung_worker():
    """Handshakes like a protocol-3 worker, then never answers anything —
    the heartbeat-silence detector must eject it, not wait forever."""
    server = socket_module.create_server(("127.0.0.1", 0))
    port = server.getsockname()[1]
    stop = threading.Event()

    def handle(conn):
        try:
            message = recv_frame(conn)
            if message == ("ping",):
                send_frame(
                    conn,
                    ("pong", {"protocol": 3, "python": worker_info()["python"]}),
                )
            recv_frame(conn)  # the chunk request...
            stop.wait(60)  # ...into the void
        except (OSError, EOFError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def serve():
        while not stop.is_set():
            try:
                conn, _peer = server.accept()
            except OSError:
                return
            threading.Thread(target=handle, args=(conn,), daemon=True).start()

    threading.Thread(target=serve, daemon=True).start()
    yield port
    stop.set()
    server.close()


class TestE15ChaosAcceptance:
    def test_report_byte_identical_to_serial_under_chaos(
        self, tmp_path, monkeypatch, capsys, spawn_worker, proxy_factory, hung_worker
    ):
        monkeypatch.setenv("REPRO_CACHE", "on")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        for var in ("REPRO_SUPERVISE", "REPRO_SUPERVISE_SEED", "REPRO_CHUNK_DEADLINE"):
            monkeypatch.setenv(var, "")  # snapshot so the flag exports unwind
        from repro.experiments import runner

        serial_out = tmp_path / "serial.json"
        assert runner.main(
            ["E15", "--seed", "7", "--backend", "serial",
             "--metrics-out", str(serial_out)]
        ) == 0
        serial = _scrub(json.loads(serial_out.read_text()))

        # Worker 1: real, killed mid-sweep.  Worker 2: real, behind a
        # seeded delay+truncate proxy.  Worker 3: hangs after handshake.
        victim, victim_port = spawn_worker()
        _, proxied_port = spawn_worker()
        _proxy, proxy_port = proxy_factory(
            proxied_port, seed=7, protect_frames=2, truncate=0.25, delay=0.5,
            delay_s=0.02,
        )
        spec = (
            f"socket:127.0.0.1:{victim_port},127.0.0.1:{proxy_port},"
            f"127.0.0.1:{hung_worker}"
            ";heartbeat=0.2;heartbeat_grace=3;timeout=5"
            ";backoff_base_s=0.01;backoff_max_s=0.1;breaker_cooldown_s=0.2"
        )
        killer = threading.Timer(
            0.3, lambda: (victim.send_signal(signal.SIGKILL), victim.wait())
        )
        killer.start()
        chaos_out = tmp_path / "chaos.json"
        started = time.monotonic()
        try:
            code = runner.main(
                ["E15", "--seed", "7", "--supervise", "--chunk-deadline", "30",
                 "--backend", spec, "--metrics-out", str(chaos_out)]
            )
        finally:
            killer.cancel()
            for var in (
                "REPRO_SUPERVISE", "REPRO_SUPERVISE_SEED", "REPRO_CHUNK_DEADLINE"
            ):
                os.environ.pop(var, None)
        assert code == 0
        assert time.monotonic() - started < 60  # completed, not wedged

        payload = json.loads(chaos_out.read_text())
        assert _scrub(payload) == serial

        resilience = payload["summary"]["resilience"]
        assert resilience["supervised"] is True
        assert resilience["chunk_deadline_s"] == 30.0
        counters = resilience["counters"]
        # The kill and the hang both force chunk retries; the hung worker
        # additionally misses heartbeats.
        assert counters.get("perf.parallel.socket.retries", 0) > 0
        assert counters.get("perf.supervise.deadline_misses", 0) > 0
