"""Tests for structured PSIOA/PCA and adversaries (Defs 4.17-4.25)."""

from fractions import Fraction

import pytest

from repro.config.pca import CanonicalPCA
from repro.core.psioa import PsioaError
from repro.secure.adversary import adversary_violations, is_adversary, restrict_adversary_check
from repro.secure.structured import (
    StructuredPCA,
    check_structured_pca_constraint,
    compose_structured,
    compose_structured_pca,
    hide_structured,
    structure,
    structure_pca,
    structured_compatible,
)

from tests.helpers import (
    coin_automaton,
    controlled_coin,
    driver,
    fair_coin,
    listener,
    ticker,
)


def structured_coin(name="coin", p=Fraction(1, 2)):
    """Coin whose toss is adversary-facing, results environment-facing."""
    return structure(coin_automaton(name, p), {"head", "tail"})


def structured_controlled(name="rc", p=Fraction(1, 2), go=("adv", "go")):
    return structure(controlled_coin(name, p, go=go), {"head", "tail"})


class TestStructuredPsioa:
    def test_eact_aact_partition(self):
        sc = structured_coin()
        assert sc.eact("qH") == {"head"}
        assert sc.aact("q0") == {"toss"}
        assert sc.eact("q0") == frozenset()

    def test_io_refinements(self):
        rc = structured_controlled()
        assert rc.ai("w") == {("adv", "go")}
        assert rc.ao("w") == frozenset()
        assert rc.eo("qH") == {"head"}
        assert rc.ei("qH") == frozenset()

    def test_global_unions(self):
        sc = structured_coin()
        assert sc.global_aact() == {"toss"}
        assert sc.global_eact() == {"head", "tail"}
        assert sc.global_ao() == {"toss"}
        assert sc.global_ai() == frozenset()

    def test_eact_must_be_external(self):
        bad = structure(fair_coin(), lambda q: {"not-an-action"})
        with pytest.raises(PsioaError):
            bad.eact("q0")

    def test_constant_eact_intersects_per_state(self):
        sc = structured_coin()
        # 'head' is not external at q0, so it is not in EAct(q0).
        assert "head" not in sc.eact("q0")

    def test_structured_is_psioa(self):
        sc = structured_coin()
        assert sc.transition("q0", "toss")("qH") == Fraction(1, 2)


class TestStructuredCompatibility:
    def test_disjoint_systems_compatible(self):
        a = structure(ticker("a", 1, action="x"), {"x"})
        b = structure(ticker("b", 1, action="y"), {"y"})
        assert structured_compatible(a, b)

    def test_shared_environment_action_compatible(self):
        a = structured_coin("a")
        ear = structure(listener("ear", {"head", "tail"}), {"head", "tail"})
        assert structured_compatible(a, ear)

    def test_shared_adversary_action_incompatible(self):
        # 'toss' is adversary-facing for the coin but shared with the listener.
        a = structured_coin("a")
        spy = structure(listener("spy", {"toss"}), {"toss"})
        assert not structured_compatible(a, spy)

    def test_incompatible_signatures_not_structured_compatible(self):
        a = structure(ticker("a", 1, action="x"), {"x"})
        b = structure(ticker("b", 1, action="x"), {"x"})
        assert not structured_compatible(a, b)


class TestStructuredComposition:
    def test_eact_union(self):
        a = structured_coin("a")
        ear = structure(listener("ear", {"head", "tail"}), {"head", "tail"})
        both = compose_structured(a, ear)
        # Definition 4.19 unions the per-state EActs: the listener keeps
        # head/tail marked even while the coin has not announced yet.
        assert both.eact(both.start) == {"head", "tail"}
        assert both.aact(both.start) == {"toss"}
        state_h = ("qH", "s")
        assert "head" in both.eact(state_h)

    def test_requires_structured_components(self):
        with pytest.raises(PsioaError):
            compose_structured(structured_coin(), fair_coin())  # type: ignore[arg-type]

    def test_composition_is_structured_psioa(self):
        a = structure(ticker("a", 2, action="x"), {"x"})
        b = structure(ticker("b", 2, action="y"), set())
        both = compose_structured(a, b)
        assert both.global_eact() == {"x"}
        assert both.global_aact() == {"y"}


class TestHideStructured:
    def test_hiding_removes_from_eact(self):
        sc = structured_coin()
        hidden = hide_structured(sc, lambda q: {"head"})
        assert "head" not in hidden.eact("qH")
        assert "head" in hidden.signature("qH").internals

    def test_hide_keeps_transitions(self):
        sc = structured_coin()
        hidden = hide_structured(sc, lambda q: {"toss"})
        assert hidden.transition("q0", "toss") == sc.transition("q0", "toss")

    def test_hide_eact_minus_s(self):
        # Definition 4.17: hide((A, EAct), S) = (hide(A, S), EAct \ S).
        rc = structured_controlled()
        hidden = hide_structured(rc, lambda q: {"head", "tail"})
        assert hidden.eact("qH") == frozenset()
        assert hidden.aact("qH") <= {("adv", "go")}


class TestAdversary:
    def test_passive_eavesdropper_is_adversary(self):
        sc = structured_coin()
        adv = listener("adv", {"toss"})
        assert is_adversary(adv, sc)

    def test_driving_adversary_covers_inputs(self):
        rc = structured_controlled()
        adv = driver("adv", [("adv", "go")])
        # After its single shot the driver no longer offers 'go', violating
        # input coverage at later joint states.
        violations = adversary_violations(adv, rc)
        assert violations  # AI not covered once the driver is exhausted

    def test_always_on_driver_is_adversary(self):
        rc = structured_controlled()
        adv = listener("adv", set())  # no outputs at all -> fails coverage
        assert not is_adversary(adv, rc)
        from repro.core.psioa import TablePSIOA
        from repro.core.signature import Signature
        from repro.probability.measures import dirac

        forever = TablePSIOA(
            "adv",
            "s",
            {"s": Signature(outputs={("adv", "go")})},
            {("s", ("adv", "go")): dirac("s")},
        )
        assert is_adversary(forever, rc)

    def test_adversary_must_not_touch_environment_actions(self):
        sc = structured_coin()
        nosy = listener("adv", {"toss", "head"})
        violations = adversary_violations(nosy, sc)
        assert any("environment actions" in v for v in violations)

    def test_incompatible_candidate_reported(self):
        sc = structured_coin()
        clashing = ticker("adv", 1, action="toss")  # output clash with the coin
        violations = adversary_violations(clashing, sc)
        assert violations and "compatible" in violations[0]

    def test_lemma_425_restriction(self):
        a = structured_coin("a")
        b = structure(
            coin_automaton("b", Fraction(1, 2), toss="toss-b", head="head-b", tail="tail-b"),
            {"head-b", "tail-b"},
        )
        adv = listener("adv", {"toss", "toss-b"})
        assert is_adversary(adv, compose_structured(a, b))
        assert is_adversary(adv, a)  # the lemma's conclusion
        assert restrict_adversary_check(adv, a, b)


class TestStructuredPca:
    def make_pca(self):
        member = structured_coin("inner")
        return CanonicalPCA("pca", [member])

    def test_structure_pca_derives_eact(self):
        spca = structure_pca(self.make_pca())
        assert spca.eact(spca.start) == frozenset()
        assert spca.aact(spca.start) == {"toss"}

    def test_hidden_actions_removed_from_eact(self):
        member = structured_coin("inner")
        pca = CanonicalPCA("pca", [member], hidden=lambda c: {"head"})
        spca = structure_pca(pca)
        after_toss = [s for s in spca.transition(spca.start, "toss").support()]
        heads = [s for s in after_toss if s.state_of("inner") == "qH"][0]
        assert "head" not in spca.eact(heads)

    def test_constraint_checker(self):
        spca = structure_pca(self.make_pca())
        assert check_structured_pca_constraint(spca)

    def test_lemma_423_composition_closed(self):
        left = structure_pca(CanonicalPCA("pl", [structured_coin("cl")]))
        right = structure_pca(
            CanonicalPCA(
                "pr",
                [
                    structure(
                        coin_automaton("cr", Fraction(1, 2), toss="toss-r", head="head-r", tail="tail-r"),
                        {"head-r", "tail-r"},
                    )
                ],
            )
        )
        both = compose_structured_pca(left, right)
        assert isinstance(both, StructuredPCA)
        assert check_structured_pca_constraint(both)
        assert both.global_aact() == {"toss", "toss-r"}
