"""Tests for the family form of the balanced relation (Definition 4.11)."""

from fractions import Fraction

from repro.bounded.families import PSIOAFamily, SchedulerFamily
from repro.semantics.balance import family_balanced
from repro.semantics.insight import accept_insight
from repro.semantics.scheduler import ActionSequenceScheduler
from repro.systems.coin import amplified_coin_family, coin_observer, fair_coin_family, xor_bias


def scheduler_family():
    return SchedulerFamily(
        "script",
        lambda k: ActionSequenceScheduler(["toss", "head", "acc"], local_only=True),
    )


class TestFamilyBalanced:
    def test_amplified_vs_fair_balanced_at_the_bias(self):
        envs = PSIOAFamily("envs", lambda k: coin_observer(("E", k)))
        assert family_balanced(
            accept_insight(),
            envs,
            amplified_coin_family(),
            scheduler_family(),
            fair_coin_family(),
            scheduler_family(),
            epsilon=lambda k: xor_bias(k),
            ks=range(1, 5),
        )

    def test_fails_below_the_bias(self):
        envs = PSIOAFamily("envs", lambda k: coin_observer(("E", k)))
        assert not family_balanced(
            accept_insight(),
            envs,
            amplified_coin_family(),
            scheduler_family(),
            fair_coin_family(),
            scheduler_family(),
            epsilon=lambda k: xor_bias(k) / 2,
            ks=range(1, 5),
        )

    def test_callable_families_supported(self):
        assert family_balanced(
            accept_insight(),
            lambda k: coin_observer(("E", k)),
            amplified_coin_family(),
            lambda k: ActionSequenceScheduler(["toss", "head", "acc"], local_only=True),
            fair_coin_family(),
            lambda k: ActionSequenceScheduler(["toss", "head", "acc"], local_only=True),
            epsilon=lambda k: Fraction(1, 2),
            ks=range(1, 4),
        )
