"""Insight functions and their image measures (paper Definitions 3.4–3.7).

An insight function ``f_(E,A)`` maps executions of ``E || A`` into a
measurable space ``(G_E, F_G_E)`` that depends only on the environment, so
perceptions of different automata under the same environment can be
compared.  The paper's three standard instances are provided:

* ``trace`` — the external-action trace of the composition,
* ``accept`` — 1 iff a distinguished action occurs (from [3]; the classic
  cryptographic distinguisher bit),
* ``print`` — the environment-side projection from [7]: the subsequence of
  actions that are external actions of the *environment* at the moment they
  fire.

``f-dist`` (Definition 3.5) is the image of ``epsilon_sigma`` under the
insight function; with finite supports it is an exact pushforward.

Stability by composition (Definition 3.7) — the property that ``E`` has no
more distinguishing power than ``E || B`` — holds for all three instances
because each factors through the executions of the larger composition; the
empirical checker :func:`check_stability_by_composition` validates the
inequality on concrete systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.composition import ComposedPSIOA, compose
from repro.core.executions import Fragment
from repro.core.psioa import PSIOA
from repro.probability.measures import DiscreteMeasure, total_variation
from repro.semantics.measure import execution_measure
from repro.semantics.scheduler import Scheduler

__all__ = [
    "InsightFunction",
    "trace_insight",
    "accept_insight",
    "print_insight",
    "compose_world",
    "f_dist",
    "check_stability_by_composition",
]


@dataclass(frozen=True)
class InsightFunction:
    """An insight function (Definition 3.4).

    ``apply(env, world, execution)`` maps an execution of the composition
    ``world = E || A`` to a value in ``G_E``.  The value space must not
    depend on ``A`` — only on ``E`` — which each provided instance
    guarantees structurally.
    """

    name: str
    apply: Callable[[PSIOA, ComposedPSIOA, Fragment], Hashable]

    def __call__(self, env: PSIOA, world: ComposedPSIOA, execution: Fragment) -> Hashable:
        return self.apply(env, world, execution)


def compose_world(env: PSIOA, automaton: PSIOA) -> ComposedPSIOA:
    """The canonical composition ``E || A`` with the environment first.

    Keeping the environment at index 0 lets insight functions project onto
    it positionally.
    """
    return compose(env, automaton)


def _trace(env: PSIOA, world: ComposedPSIOA, execution: Fragment) -> Hashable:
    return execution.trace(world.signature)


def trace_insight() -> InsightFunction:
    """The ``trace`` insight function: external-action traces of ``E || A``."""
    return InsightFunction("trace", _trace)


def accept_insight(accept_action: Hashable = "acc") -> InsightFunction:
    """The ``accept`` insight function of [3]/[4].

    Returns 1 iff ``accept_action`` occurs in the trace — the environment's
    distinguisher bit.
    """

    def apply(env: PSIOA, world: ComposedPSIOA, execution: Fragment) -> int:
        for source, action, _target in execution.steps():
            if action == accept_action and action in world.signature(source).external:
                return 1
        return 0

    return InsightFunction(f"accept[{accept_action!r}]", apply)


def print_insight() -> InsightFunction:
    """The ``print`` insight function of [7].

    Projects the execution onto the actions that are external actions of
    the *environment* at the moment they fire, judged at the environment's
    local state.  This is the perception the monotonicity-w.r.t.-creation
    results of [7] are stated for.
    """

    def apply(env: PSIOA, world: ComposedPSIOA, execution: Fragment) -> Hashable:
        index = world.component_index(env.name)
        out = []
        for source, action, _target in execution.steps():
            env_state = source[index]
            if action in env.signature(env_state).external:
                out.append(action)
        return tuple(out)

    return InsightFunction("print", apply)


def f_dist(
    insight: InsightFunction,
    env: PSIOA,
    automaton: PSIOA,
    scheduler: Scheduler,
    *,
    max_depth: Optional[int] = None,
    world: Optional[ComposedPSIOA] = None,
) -> DiscreteMeasure:
    """``f-dist_(E,A)(sigma)`` (Definition 3.5): the image of
    ``epsilon_sigma`` under ``f_(E,A)``.

    ``world`` may be supplied when the composition ``E || A`` was already
    built (it must have the environment as component 0).
    """
    if world is None:
        world = compose_world(env, automaton)
    measure = execution_measure(world, scheduler, max_depth=max_depth)
    return measure.map(lambda execution: insight(env, world, execution))


def check_stability_by_composition(
    insight: InsightFunction,
    env: PSIOA,
    context: PSIOA,
    first: PSIOA,
    second: PSIOA,
    scheduler_first: Scheduler,
    scheduler_second: Scheduler,
    *,
    max_depth: Optional[int] = None,
) -> bool:
    """Empirical check of Definition 3.7 on a concrete quintuple.

    Verifies that the distinguishing power of ``E`` alone does not exceed
    that of ``E || B``: the total-variation distance of the ``(E, B||A_i)``
    perceptions is at most that of the ``(E || B, A_i)`` perceptions, for
    the given scheduler pair.
    """
    world_first = compose(env, context, first)
    world_second = compose(env, context, second)

    # Perception of the small environment E (B folded into the system side).
    dist_small_1 = execution_measure(world_first, scheduler_first, max_depth=max_depth).map(
        lambda e: insight(env, world_first, e)
    )
    dist_small_2 = execution_measure(world_second, scheduler_second, max_depth=max_depth).map(
        lambda e: insight(env, world_second, e)
    )

    # Perception of the large environment E || B over the same executions:
    # both E and B (components 0 and 1) observe.
    def big_view(world):
        def apply(execution: Fragment):
            out = []
            for source, action, _target in execution.steps():
                env_sig = env.signature(source[0])
                ctx_sig = context.signature(source[1])
                if action in env_sig.external or action in ctx_sig.external:
                    out.append(action)
            return tuple(out)

        return apply

    dist_big_1 = execution_measure(world_first, scheduler_first, max_depth=max_depth).map(
        big_view(world_first)
    )
    dist_big_2 = execution_measure(world_second, scheduler_second, max_depth=max_depth).map(
        big_view(world_second)
    )

    small = total_variation(dist_small_1, dist_small_2)
    big = total_variation(dist_big_1, dist_big_2)
    return small <= big
