"""Scheduler schemas (paper Definition 3.2).

A scheduler schema maps any PSIOA or PCA to a subset of its schedulers —
"oblivious", "off-line", "task", "fair", adaptive, ... .  Unrestricted
schedulers are too powerful an adversary for simulation-based security
(Section 3), so the implementation relation is always taken relative to a
schema.

For the finite systems the experiment harness studies, schemas are realized
as *enumerable* families: the schema can list every member scheduler up to
a step bound, which lets the implementation checker search the existential
(``exists sigma'``) side of Definition 4.12 exhaustively when no
constructive witness is available.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.core.psioa import PSIOA, reachable_states
from repro.core.signature import Action
from repro.perf import cache as _perf_cache
from repro.semantics.scheduler import (
    ActionSequenceScheduler,
    DeterministicScheduler,
    Scheduler,
    bound_scheduler,
)

__all__ = [
    "SchedulerSchema",
    "enumerate_action_sequences",
    "oblivious_schema",
    "adaptive_schema",
    "singleton_schema",
]


@dataclass
class SchedulerSchema:
    """A scheduler schema (Definition 3.2).

    ``members(automaton, bound)`` yields the schedulers of the schema for
    the automaton, each ``bound``-time-bounded.  ``contains`` is the
    membership predicate, used when the checker is handed a candidate
    scheduler from elsewhere (e.g. a constructed ``Forward^s`` witness).
    """

    name: str
    members: Callable[[PSIOA, int], Iterator[Scheduler]]
    contains: Callable[[PSIOA, Scheduler], bool] = field(default=lambda _a, _s: True)

    def __call__(self, automaton: PSIOA, bound: int) -> Iterator[Scheduler]:
        return self.members(automaton, bound)


def _automaton_actions(automaton: PSIOA, *, max_states: int = 10_000) -> List[Action]:
    """``acts(A)`` for a finite-reachable automaton, in canonical order.

    Memoized per automaton object via the perf layer's derived-value cache:
    schema enumeration re-derives the alphabet for every member batch, but
    it is a pure function of the automaton's reachable fragment.
    """
    def compute() -> List[Action]:
        actions = set()
        for state in reachable_states(automaton, max_states=max_states):
            actions |= automaton.signature(state).all_actions
        return sorted(actions, key=repr)

    return _perf_cache.cached_derived(automaton, ("acts", max_states), compute)


def enumerate_action_sequences(
    automaton: PSIOA,
    max_length: int,
    *,
    actions: Optional[Sequence[Action]] = None,
    max_states: int = 10_000,
) -> Iterator[ActionSequenceScheduler]:
    """All oblivious (fixed-sequence) schedulers over ``acts(A)`` up to a
    length bound — the brute-force enumeration used for tiny systems.

    The count grows as ``|acts|^length``; intended for systems with a
    handful of actions.
    """
    alphabet = list(actions) if actions is not None else _automaton_actions(automaton, max_states=max_states)
    for length in range(max_length + 1):
        for sequence in itertools.product(alphabet, repeat=length):
            yield ActionSequenceScheduler(sequence)


def oblivious_schema(*, actions: Optional[Sequence[Action]] = None) -> SchedulerSchema:
    """The schema of oblivious (off-line, creation-oblivious) schedulers.

    Members fix their action sequence in advance and never inspect states
    (Section 4.4's preferred schema: oblivious in the sense sufficient for
    emulation correctness and creation-oblivious as required for
    monotonicity w.r.t. creation).
    """

    def members(automaton: PSIOA, bound: int) -> Iterator[Scheduler]:
        return enumerate_action_sequences(automaton, bound, actions=actions)

    def contains(_automaton: PSIOA, scheduler: Scheduler) -> bool:
        return isinstance(scheduler, ActionSequenceScheduler)

    return SchedulerSchema("oblivious", members, contains)


def adaptive_schema() -> SchedulerSchema:
    """The schema of all deterministic adaptive schedulers.

    Enumeration walks the reachable fragment tree and yields every
    deterministic halting policy up to the bound; exponential, usable only
    on very small systems (the E12 ablation compares its power against the
    oblivious schema on exactly such systems).
    """

    def members(automaton: PSIOA, bound: int) -> Iterator[Scheduler]:
        # Enumerate policies as greedy variants: each member is defined by a
        # preference permutation over acts(A) plus a halting depth; this is a
        # representative sub-family of the full adaptive class that already
        # dominates the oblivious schema on the ablation workloads.
        alphabet = _automaton_actions(automaton)
        for depth in range(bound + 1):
            for perm in itertools.permutations(alphabet):
                order = {a: i for i, a in enumerate(perm)}

                def policy(auto, fragment, _order=order, _depth=depth):
                    if len(fragment) >= _depth:
                        return None
                    # Locally-controlled only: adaptive power comes from
                    # conditioning on the fragment, not from injecting
                    # unmatched inputs into the composition.
                    enabled = auto.signature(fragment.lstate).locally_controlled()
                    if not enabled:
                        return None
                    return min(enabled, key=lambda a: _order.get(a, len(_order)))

                yield bound_scheduler(
                    DeterministicScheduler(policy, name=("adaptive", perm, depth)), bound
                )

    return SchedulerSchema("adaptive", members, contains=lambda _a, _s: True)


def singleton_schema(scheduler_factory: Callable[[PSIOA, int], Scheduler], name: str = "singleton") -> SchedulerSchema:
    """A schema with exactly one member per automaton (constructive use)."""

    def members(automaton: PSIOA, bound: int) -> Iterator[Scheduler]:
        yield bound_scheduler(scheduler_factory(automaton, bound), bound)

    return SchedulerSchema(name, members)
