"""Scheduling and external perception (paper Section 3).

Composable I/O automata are inherently nondeterministic; the scheduler
(Definition 3.1) resolves the nondeterminism and induces a probability
measure ``epsilon_sigma`` over executions, on which insight functions
(Definition 3.4) project the externally observable behaviour.  This package
provides:

* schedulers and scheduler schemas (Definitions 3.1, 3.2, 4.6),
* exact computation of ``epsilon_sigma`` by execution-tree unfolding,
* environments (Definition 3.3),
* insight functions — ``trace``, ``accept``, ``print`` — and their image
  measures ``f-dist`` (Definitions 3.4, 3.5),
* the balanced-scheduler relation (Definition 3.6) and the
  stability-by-composition property (Definition 3.7).
"""

from repro.semantics.scheduler import (
    Scheduler,
    FunctionScheduler,
    DeterministicScheduler,
    ActionSequenceScheduler,
    TaskScheduler,
    RandomizedScheduler,
    BoundedScheduler,
    bound_scheduler,
)
from repro.semantics.schema import (
    SchedulerSchema,
    enumerate_action_sequences,
    oblivious_schema,
    adaptive_schema,
    singleton_schema,
)
from repro.semantics.measure import (
    execution_measure,
    cone_probability,
    UnboundedUnfoldingError,
)
from repro.semantics.environment import is_environment, environments_of_both
from repro.semantics.insight import (
    InsightFunction,
    trace_insight,
    accept_insight,
    print_insight,
    f_dist,
)
from repro.semantics.balance import balanced, perception_distance
from repro.semantics.tasks import (
    TaskScheduleScheduler,
    task_partition,
    is_action_deterministic,
    task_schedule_schema,
)

__all__ = [
    "Scheduler",
    "FunctionScheduler",
    "DeterministicScheduler",
    "ActionSequenceScheduler",
    "TaskScheduler",
    "RandomizedScheduler",
    "BoundedScheduler",
    "bound_scheduler",
    "SchedulerSchema",
    "enumerate_action_sequences",
    "oblivious_schema",
    "adaptive_schema",
    "singleton_schema",
    "execution_measure",
    "cone_probability",
    "UnboundedUnfoldingError",
    "is_environment",
    "environments_of_both",
    "InsightFunction",
    "trace_insight",
    "accept_insight",
    "print_insight",
    "f_dist",
    "balanced",
    "perception_distance",
    "TaskScheduleScheduler",
    "task_partition",
    "is_action_deterministic",
    "task_schedule_schema",
]
