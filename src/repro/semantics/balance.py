"""Balanced schedulers (paper Definition 3.6).

Two schedulers ``sigma`` (for ``E || A``) and ``sigma'`` (for ``E || B``)
are ``epsilon``-balanced for environment ``E`` and insight function ``f``
when, over every countable family of insight values, the absolute sum of
pointwise ``f-dist`` differences is at most ``epsilon``.  For discrete
image measures this supremum is exactly the total-variation distance — the
maximizing family collects the outcomes where one measure exceeds the other
— so the relation is decidable exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.psioa import PSIOA
from repro.probability.measures import total_variation
from repro.semantics.insight import InsightFunction, f_dist
from repro.semantics.scheduler import Scheduler

__all__ = ["perception_distance", "balanced", "family_balanced"]


def perception_distance(
    insight: InsightFunction,
    env: PSIOA,
    first: PSIOA,
    scheduler_first: Scheduler,
    second: PSIOA,
    scheduler_second: Scheduler,
    *,
    max_depth: Optional[int] = None,
):
    """The supremum of Definition 3.6 — total variation between the two
    ``f-dist`` image measures."""
    dist_first = f_dist(insight, env, first, scheduler_first, max_depth=max_depth)
    dist_second = f_dist(insight, env, second, scheduler_second, max_depth=max_depth)
    return total_variation(dist_first, dist_second)


def balanced(
    insight: InsightFunction,
    env: PSIOA,
    first: PSIOA,
    scheduler_first: Scheduler,
    second: PSIOA,
    scheduler_second: Scheduler,
    epsilon,
    *,
    max_depth: Optional[int] = None,
) -> bool:
    """``sigma S^{<= epsilon}_{E, f} sigma'`` (Definition 3.6)."""
    return (
        perception_distance(
            insight,
            env,
            first,
            scheduler_first,
            second,
            scheduler_second,
            max_depth=max_depth,
        )
        <= epsilon
    )


def family_balanced(
    insight: InsightFunction,
    env_family,
    first_family,
    scheduler_family_first,
    second_family,
    scheduler_family_second,
    epsilon,
    ks,
    *,
    max_depth: Optional[int] = None,
) -> bool:
    """The family form of the balanced relation (Definition 4.11):
    ``sigma_k S^{<= epsilon(k)}_{E_k, f} sigma'_k`` for every sampled ``k``.

    ``env_family``, ``first_family``/``second_family`` and the two
    scheduler families are indexable by ``k`` (``__getitem__`` or call);
    ``epsilon`` is a function of ``k``.
    """

    def member(family, k):
        getter = getattr(family, "__getitem__", None)
        return getter(k) if getter is not None else family(k)

    for k in ks:
        if not balanced(
            insight,
            member(env_family, k),
            member(first_family, k),
            member(scheduler_family_first, k),
            member(second_family, k),
            member(scheduler_family_second, k),
            epsilon(k),
            max_depth=max_depth,
        ):
            return False
    return True
