"""Task structures and task schedules (the [3] machinery of Section 4.4).

The paper deliberately *generalizes* beyond task-schedulers, but task
schedules remain the reference point: Section 4.4 compares against them
and the ``accept`` insight function originates there.  This module
implements them faithfully so the comparison is executable:

* a **task** is a set of *locally controlled* actions, intended as an
  equivalence class on actions ([3]);
* a task is **action-deterministic** at a state when at most one of its
  actions is enabled there — the condition under which a task schedule
  resolves nondeterminism;
* a **task schedule** is a finite task sequence fixed in advance
  ("off-line scheduling"); applying it walks the tasks in order, firing
  the unique enabled action of each task and treating tasks with no
  enabled action as no-ops.

:class:`TaskScheduleScheduler` realizes a task schedule as a
:class:`~repro.semantics.scheduler.Scheduler` by *replaying* the schedule
against the fragment: the decision at a fragment is a pure function of the
fragment, as Definition 3.1 requires, and fragments that deviate from the
schedule halt with probability 1 (they have measure zero under this
scheduler anyway).

Task schedules are oblivious and creation-oblivious: the task sequence is
chosen in advance and never inspects states beyond enabledness.
"""

from __future__ import annotations

import itertools
from typing import Callable, FrozenSet, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.executions import Fragment
from repro.core.psioa import PSIOA, PsioaError, reachable_states
from repro.core.signature import Action
from repro.obs.metrics import counter as _counter
from repro.probability.measures import SubDiscreteMeasure
from repro.semantics.schema import SchedulerSchema
from repro.semantics.scheduler import Scheduler

#: One increment per task consumed while replaying a task schedule.
_TASKS_APPLIED = _counter("tasks.applied")

__all__ = [
    "Task",
    "task_partition",
    "is_action_deterministic",
    "TaskScheduleScheduler",
    "task_schedule_schema",
]

Task = FrozenSet[Action]


def task_partition(automaton: PSIOA, key: Callable[[Action], Hashable], *, max_states: int = 10_000) -> List[Task]:
    """Partition ``acts(A)`` into tasks by an equivalence key ([3]'s tasks
    are equivalence classes on actions).

    Only locally controlled actions are grouped — inputs are driven by
    other components, never scheduled.
    """
    actions: set = set()
    for state in reachable_states(automaton, max_states=max_states):
        actions |= automaton.signature(state).locally_controlled()
    groups: dict = {}
    for action in sorted(actions, key=repr):
        groups.setdefault(key(action), set()).add(action)
    return [frozenset(group) for _key, group in sorted(groups.items(), key=lambda kv: repr(kv[0]))]


def is_action_deterministic(automaton: PSIOA, task: Task, *, max_states: int = 10_000) -> bool:
    """True when at most one action of the task is enabled at every
    reachable state — the condition for the task to resolve
    nondeterminism deterministically."""
    for state in reachable_states(automaton, max_states=max_states):
        enabled = automaton.signature(state).locally_controlled() & task
        if len(enabled) > 1:
            return False
    return True


class TaskScheduleScheduler(Scheduler):
    """An off-line task schedule ``T1 T2 ... Tn`` as a scheduler.

    ``decide`` replays the schedule against the fragment:

    1. walk the tasks in order, tracking a position in the fragment;
    2. a task with no enabled action at the current replay state is a
       no-op (consumed, no step);
    3. a task whose unique enabled action matches the fragment's next
       action advances the replay;
    4. the first task whose enabled action goes *beyond* the fragment is
       the decision;
    5. fragments that deviate from the schedule, and exhausted schedules,
       halt.

    A task with more than one enabled action at its firing state raises
    :class:`~repro.core.psioa.PsioaError` — the schedule is invalid for
    this automaton (the action-determinism requirement of [3]).
    """

    def __init__(self, tasks: Sequence[Task], *, name: Hashable = None) -> None:
        self.tasks: Tuple[Task, ...] = tuple(frozenset(t) for t in tasks)
        self.name = name if name is not None else ("task-schedule", self.tasks)

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        position = 0
        for task in self.tasks:
            _TASKS_APPLIED.inc()
            state = fragment.states[position]
            enabled = sorted(
                automaton.signature(state).locally_controlled() & task, key=repr
            )
            if len(enabled) > 1:
                raise PsioaError(
                    f"task {sorted(map(repr, task))} is not action-deterministic at "
                    f"{state!r}: enabled {enabled!r}"
                )
            if not enabled:
                continue  # no-op task
            (action,) = enabled
            if position < len(fragment):
                if fragment.actions[position] != action:
                    return SubDiscreteMeasure.halt()  # off-schedule fragment
                position += 1
            else:
                return SubDiscreteMeasure({action: 1})
        return SubDiscreteMeasure.halt()

    def step_bound(self) -> Optional[int]:
        return len(self.tasks)


def task_schedule_schema(
    tasks: Sequence[Task],
    *,
    name: str = "task-schedules",
) -> SchedulerSchema:
    """The schema of all task schedules over a task alphabet, up to the
    bound — the [3]-style schema Section 4.4 compares against."""
    alphabet: Tuple[Task, ...] = tuple(frozenset(t) for t in tasks)

    def members(automaton: PSIOA, bound: int) -> Iterator[Scheduler]:
        for length in range(bound + 1):
            for sequence in itertools.product(alphabet, repeat=length):
                yield TaskScheduleScheduler(sequence)

    def contains(_automaton: PSIOA, scheduler: Scheduler) -> bool:
        return isinstance(scheduler, TaskScheduleScheduler)

    return SchedulerSchema(name, members, contains)
