"""Environments (paper Definition 3.3).

An environment for a PSIOA ``A`` is any PSIOA ``E`` partially compatible
with ``A``; ``env(A)`` is the set of all such.  The implementation relation
(Definition 4.12) quantifies over environments of *both* automata being
compared, so the module also provides the intersection check.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.composition import check_partial_compatibility
from repro.core.psioa import PSIOA

__all__ = ["is_environment", "environments_of_both"]


def is_environment(env: PSIOA, automaton: PSIOA, *, max_states: int = 50_000) -> bool:
    """``E in env(A)``: partial compatibility of ``E`` and ``A``."""
    if env.name == automaton.name:
        return False
    try:
        return check_partial_compatibility([env, automaton], max_states=max_states)
    except Exception:
        return False


def environments_of_both(
    candidates: Iterable[PSIOA],
    first: PSIOA,
    second: PSIOA,
    *,
    max_states: int = 50_000,
) -> List[PSIOA]:
    """Filter ``candidates`` to ``env(A) & env(B)`` (Definition 3.6 setting)."""
    return [
        env
        for env in candidates
        if is_environment(env, first, max_states=max_states)
        and is_environment(env, second, max_states=max_states)
    ]
