"""Schedulers (paper Definitions 3.1 and 4.6).

A scheduler of a PSIOA ``A`` maps each finite execution fragment to a
discrete *sub*-probability measure over the transitions enabled at the
fragment's last state; the deficiency is the probability of halting.
Because a PSIOA has exactly one transition per (state, enabled action),
decisions are represented here as sub-measures over *actions*.

The module ships the scheduler shapes used throughout the paper:

* :class:`FunctionScheduler` — arbitrary (adaptive) schedulers;
* :class:`DeterministicScheduler` — a policy picking one action (or halt);
* :class:`ActionSequenceScheduler` — *oblivious* schedulers that fix an
  action sequence in advance (the off-line schedulers of Section 4.4; they
  are creation-oblivious because decisions never inspect states);
* :class:`TaskScheduler` — task-schedule style schedulers in the spirit of
  [3]: a pre-chosen sequence of tasks (action predicates), each resolved
  deterministically among the enabled actions;
* :class:`RandomizedScheduler` — convex mixtures of schedulers;
* :class:`BoundedScheduler` — the ``b``-time-bounded wrapper of
  Definition 4.6 (halt after ``b`` actions).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence, Tuple

from repro.core.executions import Fragment
from repro.core.psioa import PSIOA
from repro.core.signature import Action
from repro.obs.metrics import counter as _counter
from repro.perf import cache as _perf_cache
from repro.probability.measures import SubDiscreteMeasure, convex_combination

#: One increment per checked scheduling decision — the step count every
#: execution-measure unfolding and implementation check is made of.
_SCHEDULER_STEPS = _counter("scheduler.steps")

__all__ = [
    "Scheduler",
    "FunctionScheduler",
    "DeterministicScheduler",
    "ActionSequenceScheduler",
    "TaskScheduler",
    "PriorityScheduler",
    "RandomizedScheduler",
    "BoundedScheduler",
    "bound_scheduler",
]


class Scheduler:
    """Base scheduler interface (Definition 3.1).

    ``decide(automaton, fragment)`` returns a sub-probability measure over
    the actions enabled at ``lstate(fragment)``; mass deficiency means
    halting.  Implementations must only assign weight to enabled actions —
    :meth:`decide_checked` enforces this and is what the unfolding engine
    calls.
    """

    #: Schedulers are maps from fragments to decisions (Definition 3.1), so
    #: decisions are cacheable by default.  A scheduler whose ``decide``
    #: consults anything beyond ``(automaton, fragment)`` must set this to
    #: False to stay out of the perf layer's decision cache.
    cacheable: bool = True

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        raise NotImplementedError

    def decide_checked(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        # ``scheduler.steps`` counts *logical* decisions, so it is stable
        # under the decision cache; ``perf.cache.decision.hits`` tells how
        # many of them were served without recomputation.
        _SCHEDULER_STEPS.inc()
        if _perf_cache.CACHE.enabled and self.cacheable:
            return _perf_cache.cached_decision(self, automaton, fragment)
        return self._decide_checked_uncached(automaton, fragment)

    def _decide_checked_uncached(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        decision = self.decide(automaton, fragment)
        enabled = automaton.signature(fragment.lstate).all_actions
        stray = decision.support() - enabled
        if stray:
            raise ValueError(
                f"scheduler assigned mass to disabled actions {sorted(map(repr, stray))} "
                f"at {fragment.lstate!r}"
            )
        return decision

    # -- introspection used by the bounded layer (Definition 4.6) -------------

    def step_bound(self) -> Optional[int]:
        """An upper bound on the number of scheduled actions, if known."""
        return None


class FunctionScheduler(Scheduler):
    """A scheduler defined by an arbitrary decision function."""

    def __init__(
        self,
        decide: Callable[[PSIOA, Fragment], SubDiscreteMeasure],
        *,
        name: Hashable = "fn",
        step_bound: Optional[int] = None,
    ) -> None:
        self._decide = decide
        self.name = name
        self._step_bound = step_bound

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        return self._decide(automaton, fragment)

    def step_bound(self) -> Optional[int]:
        return self._step_bound


class DeterministicScheduler(Scheduler):
    """Picks a single action (or halts) from each fragment.

    ``policy(automaton, fragment)`` returns an enabled action or ``None``
    to halt.  This is the fully-adaptive deterministic scheduler class.
    """

    def __init__(
        self,
        policy: Callable[[PSIOA, Fragment], Optional[Action]],
        *,
        name: Hashable = "det",
    ) -> None:
        self._policy = policy
        self.name = name

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        action = self._policy(automaton, fragment)
        if action is None:
            return SubDiscreteMeasure.halt()
        return SubDiscreteMeasure({action: 1})

    @staticmethod
    def greedy(*, key=repr, name: Hashable = "greedy") -> "DeterministicScheduler":
        """Always fires the ``key``-least enabled action (a canonical
        maximal scheduler useful in tests)."""

        def policy(automaton: PSIOA, fragment: Fragment) -> Optional[Action]:
            enabled = automaton.signature(fragment.lstate).all_actions
            if not enabled:
                return None
            return min(enabled, key=key)

        return DeterministicScheduler(policy, name=name)


class ActionSequenceScheduler(Scheduler):
    """An *oblivious* scheduler: a fixed action sequence chosen in advance.

    At step ``i`` the scheduler fires ``sequence[i]`` if it is enabled and
    halts otherwise (and after the sequence is exhausted).  Decisions depend
    only on the number of steps taken — never on states — so the scheduler
    is oblivious and in particular creation-oblivious in the sense the
    paper needs for monotonicity w.r.t. creation (Section 4.4).

    ``local_only=True`` restricts firing to *locally controlled* actions of
    the scheduled automaton (outputs and internals).  This is the task-PIOA
    convention of [3]/[4]: inputs of the composed system are driven by
    component outputs, never injected by the scheduler — the right setting
    for closed-system distinguishing experiments, where an injected input
    would let the scheduler smuggle information to the environment.
    """

    def __init__(
        self,
        sequence: Sequence[Action],
        *,
        name: Hashable = None,
        local_only: bool = False,
    ) -> None:
        self.sequence: Tuple[Action, ...] = tuple(sequence)
        self.local_only = local_only
        self.name = name if name is not None else ("seq",) + self.sequence

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        i = len(fragment)
        if i >= len(self.sequence):
            return SubDiscreteMeasure.halt()
        action = self.sequence[i]
        signature = automaton.signature(fragment.lstate)
        allowed = signature.locally_controlled() if self.local_only else signature.all_actions
        if action not in allowed:
            return SubDiscreteMeasure.halt()
        return SubDiscreteMeasure({action: 1})

    def step_bound(self) -> Optional[int]:
        return len(self.sequence)


class TaskScheduler(Scheduler):
    """A lightweight task-*priority* scheduler (after [3], Section 4.4
    discussion).

    .. note:: This class matches tasks against the *step count*, which is a
       convenient approximation for test drivers.  The faithful off-line
       task-schedule semantics of [3] — replaying the schedule against the
       fragment, with no-op tasks consumed without steps — lives in
       :class:`repro.semantics.tasks.TaskScheduleScheduler`; prefer it for
       anything theorem-shaped.

    ``tasks`` is a pre-chosen sequence of *tasks*; each task is a predicate
    over actions (an equivalence class in [3]).  At step ``i`` the enabled
    actions satisfying ``tasks[i]`` are computed; if the set is empty the
    task is skipped (a no-op, moving to the next task at the same fragment
    is not expressible without stuttering, so we halt-or-fire: empty means
    *skip* by consuming the task and re-deciding), otherwise the
    ``key``-least matching action fires, resolving the task
    deterministically.
    """

    def __init__(
        self,
        tasks: Sequence[Callable[[Action], bool]],
        *,
        key=repr,
        name: Hashable = "tasks",
    ) -> None:
        self.tasks = tuple(tasks)
        self._key = key
        self.name = name

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        enabled = automaton.signature(fragment.lstate).all_actions
        # Consume tasks one per executed step; skip tasks with no match.
        index = len(fragment)
        for task in self.tasks[index:]:
            matching = [a for a in enabled if task(a)]
            if matching:
                return SubDiscreteMeasure({min(matching, key=self._key): 1})
            # Task disabled: per the off-line reading it is a no-op; continue
            # to the next task without consuming a step.
            index += 1
        return SubDiscreteMeasure.halt()

    def step_bound(self) -> Optional[int]:
        return len(self.tasks)


class PriorityScheduler(Scheduler):
    """A run-to-completion driver: fires the highest-priority enabled
    locally-controlled action, halting when none matches.

    ``priorities`` is an ordered list of predicates over actions; at each
    fragment the first predicate with a non-empty match against the enabled
    locally-controlled actions wins, resolved deterministically by ``key``.
    Restricting to locally-controlled actions keeps the scheduler from
    injecting unmatched inputs (the task-PIOA convention), so closed
    systems run their natural protocol flow.

    This is the canonical scheduler shape for protocol workloads: the
    schema of all priority permutations is small, covers the interesting
    interleavings, and every member is oblivious to state *content*
    (decisions depend only on which actions are enabled).
    """

    def __init__(
        self,
        priorities: Sequence[Callable[[Action], bool]],
        bound: int,
        *,
        key=repr,
        name: Hashable = "priority",
    ) -> None:
        self.priorities = tuple(priorities)
        self.bound = bound
        self._key = key
        self.name = name

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        if len(fragment) >= self.bound:
            return SubDiscreteMeasure.halt()
        local = automaton.signature(fragment.lstate).locally_controlled()
        for predicate in self.priorities:
            matching = [a for a in local if predicate(a)]
            if matching:
                return SubDiscreteMeasure({min(matching, key=self._key): 1})
        return SubDiscreteMeasure.halt()

    def step_bound(self) -> Optional[int]:
        return self.bound


class RandomizedScheduler(Scheduler):
    """A convex mixture of schedulers: decisions are mixed pointwise.

    Mixing pointwise realizes the randomized schedulers allowed by
    Definition 3.1 (decisions are arbitrary sub-probability measures).
    """

    def __init__(
        self,
        components: Sequence[Tuple[object, Scheduler]],
        *,
        name: Hashable = "mix",
    ) -> None:
        self.components = tuple(components)
        total = sum(weight for weight, _ in self.components)
        if total != 1 and abs(float(total) - 1.0) > 1e-9:
            raise ValueError(f"mixture weights sum to {total!r} != 1")
        self.name = name

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        mixed = convex_combination(
            [(w, s.decide(automaton, fragment)) for w, s in self.components]
        )
        if isinstance(mixed, SubDiscreteMeasure):
            return mixed
        return SubDiscreteMeasure({o: mixed(o) for o in mixed.support()})

    def step_bound(self) -> Optional[int]:
        bounds = [s.step_bound() for _, s in self.components]
        if any(b is None for b in bounds):
            return None
        return max(bounds) if bounds else 0


class BoundedScheduler(Scheduler):
    """The ``b``-time-bounded wrapper of Definition 4.6.

    Behaves like the base scheduler on fragments of length ``< b`` and
    halts with probability 1 on longer fragments, so it never schedules
    more than ``b`` actions.
    """

    def __init__(self, base: Scheduler, bound: int, *, name: Hashable = None) -> None:
        if bound < 0:
            raise ValueError("bound must be non-negative")
        self.base = base
        self.bound = bound
        self.name = name if name is not None else ("bounded", bound, getattr(base, "name", None))

    def decide(self, automaton: PSIOA, fragment: Fragment) -> SubDiscreteMeasure:
        if len(fragment) >= self.bound:
            return SubDiscreteMeasure.halt()
        return self.base.decide(automaton, fragment)

    def step_bound(self) -> Optional[int]:
        base_bound = self.base.step_bound()
        return self.bound if base_bound is None else min(self.bound, base_bound)


def bound_scheduler(scheduler: Scheduler, bound: int) -> Scheduler:
    """Wrap ``scheduler`` so it is ``bound``-time-bounded (Definition 4.6).

    Already-tighter schedulers are returned unchanged.
    """
    existing = scheduler.step_bound()
    if existing is not None and existing <= bound:
        return scheduler
    return BoundedScheduler(scheduler, bound)
