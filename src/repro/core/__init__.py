"""Core dynamic probabilistic I/O automata layer (paper Section 2).

This package implements probabilistic signature input/output automata
(PSIOA, Definition 2.1) and the static operations of the formalism:

* signatures, compatibility and signature composition (Definitions 2.3–2.4),
* hiding and action renaming (Definitions 2.6–2.8, Lemma A.1),
* execution fragments, executions and traces (Definition 2.2),
* partial composition of PSIOA (Definitions 2.5 and 2.18).

Automata are *lazy*: a PSIOA is given by a start state, a per-state
signature function and a per-(state, action) transition function, so
countable state spaces are supported.  Finite automata can be built
explicitly with :class:`~repro.core.psioa.TablePSIOA` and validated with
:func:`~repro.core.psioa.validate_psioa`.
"""

from repro.core.signature import (
    Signature,
    EMPTY_SIGNATURE,
    signatures_compatible,
    compose_signatures,
    hide_signature,
)
from repro.core.psioa import PSIOA, TablePSIOA, validate_psioa, reachable_states
from repro.core.executions import Fragment, concat, cone_prefixes
from repro.core.renaming import hide_psioa, rename_psioa, StateActionRenaming
from repro.core.composition import (
    compose,
    compatible_at_state,
    joint_transition,
    check_partial_compatibility,
    project,
)

__all__ = [
    "Signature",
    "EMPTY_SIGNATURE",
    "signatures_compatible",
    "compose_signatures",
    "hide_signature",
    "PSIOA",
    "TablePSIOA",
    "validate_psioa",
    "reachable_states",
    "Fragment",
    "concat",
    "cone_prefixes",
    "hide_psioa",
    "rename_psioa",
    "StateActionRenaming",
    "compose",
    "compatible_at_state",
    "joint_transition",
    "check_partial_compatibility",
    "project",
]
