"""Hiding and action renaming on PSIOA (paper Definitions 2.7, 2.8, Lemma A.1).

Both operators are *lazy views*: they wrap the base automaton and rewrite
signatures/transitions on access, so they compose freely with the lazy
composition of :mod:`repro.core.composition` and never materialize state
spaces.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from repro.core.psioa import PSIOA, PsioaError
from repro.core.signature import Action, Signature, hide_signature
from repro.probability.measures import DiscreteMeasure

__all__ = ["hide_psioa", "rename_psioa", "StateActionRenaming"]

State = Hashable


def hide_psioa(
    automaton: PSIOA,
    hidden: Callable[[State], Iterable[Action]],
    *,
    name: Optional[Hashable] = None,
) -> PSIOA:
    """Definition 2.7: ``hide(A, h)`` turns ``h(q)``-outputs into internals.

    ``hidden`` maps each state to the set of output actions to hide there.
    States, start state and transitions are unchanged; only signatures move.
    """

    derived_name = name if name is not None else ("hide", automaton.name)

    def signature(state: State) -> Signature:
        return hide_signature(automaton.signature(state), hidden(state))

    return PSIOA(derived_name, automaton.start, signature, automaton.transition)


class StateActionRenaming:
    """A state-dependent injective action renaming ``r`` (Definition 2.8).

    ``r(q)`` must be injective with ``sig-hat(A)(q)`` as domain.  The class
    wraps a forward function and derives the inverse by scanning the (finite)
    per-state signature, caching per state; an explicit ``inverse`` can be
    supplied when signatures are large.

    A plain callable ``action -> action`` may be promoted with
    :meth:`uniform` for state-independent renamings.
    """

    def __init__(
        self,
        forward: Callable[[State, Action], Action],
        inverse: Optional[Callable[[State, Action], Optional[Action]]] = None,
    ) -> None:
        self._forward = forward
        self._inverse = inverse
        self._cache: Dict[State, Dict[Action, Action]] = {}

    @staticmethod
    def uniform(mapping: Callable[[Action], Action]) -> "StateActionRenaming":
        """Promote a state-independent injective action mapping."""
        return StateActionRenaming(lambda _state, action: mapping(action))

    def forward(self, state: State, action: Action) -> Action:
        return self._forward(state, action)

    def inverse_at(self, automaton: PSIOA, state: State, renamed: Action) -> Optional[Action]:
        """The unique ``a`` with ``r(q)(a) == renamed``, or ``None``."""
        if self._inverse is not None:
            return self._inverse(state, renamed)
        table = self._cache.get(state)
        if table is None:
            table = {}
            for original in automaton.signature(state).all_actions:
                image = self._forward(state, original)
                if image in table:
                    raise PsioaError(
                        f"renaming not injective at {state!r}: both {table[image]!r} and "
                        f"{original!r} map to {image!r}"
                    )
                table[image] = original
            self._cache[state] = table
        return table.get(renamed)


def rename_psioa(
    automaton: PSIOA,
    renaming: StateActionRenaming | Callable[[Action], Action],
    *,
    name: Optional[Hashable] = None,
) -> PSIOA:
    """Definition 2.8: ``r(A)`` with renamed signatures and transitions.

    Lemma A.1 (closure of PSIOA under action renaming) holds structurally:
    transition determinism and action enabling are inherited because the
    renaming is injective per state, and signature disjointness is
    re-validated by :class:`~repro.core.signature.Signature` on access.
    """
    if not isinstance(renaming, StateActionRenaming):
        renaming = StateActionRenaming.uniform(renaming)

    derived_name = name if name is not None else ("rename", automaton.name)

    def signature(state: State) -> Signature:
        return automaton.signature(state).renamed(lambda a: renaming.forward(state, a))

    def transition(state: State, action: Action) -> DiscreteMeasure:
        original = renaming.inverse_at(automaton, state, action)
        if original is None:
            raise PsioaError(
                f"action {action!r} not in the renamed signature at {state!r} "
                f"of {derived_name!r}"
            )
        return automaton.transition(state, original)

    return PSIOA(derived_name, automaton.start, signature, transition)
