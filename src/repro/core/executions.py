"""Execution fragments, executions and traces (paper Definition 2.2).

An execution fragment of a PSIOA is an alternating sequence
``q0 a1 q1 a2 ...`` of states and actions where every ``(q_i, a_{i+1},
q_{i+1})`` is a step of the automaton.  Finite fragments end in a state.
The module provides:

* :class:`Fragment` — immutable, hashable fragments with the paper's
  accessors (``fstate``, ``lstate``, ``|alpha|``, ``trace``),
* the concatenation operator ``alpha ^ alpha'`` (:func:`concat`),
* prefix relations (``<`` proper prefix, ``<=`` prefix) used to define the
  cone sigma-field on which the scheduler measure lives (Section 3).

Fragments are shared across the framework: the scheduler (Definition 3.1)
maps finite fragments to decisions, the execution measure ``epsilon_sigma``
is computed over the cone structure, and insight functions (Definition 3.4)
consume finished executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, List, Sequence, Tuple

from repro.core.signature import Action, Signature

__all__ = ["Fragment", "concat", "cone_prefixes"]

State = Hashable


@dataclass(frozen=True)
class Fragment:
    """A finite execution fragment ``q0 a1 q1 ... an qn``.

    Invariants: ``len(states) == len(actions) + 1`` and the fragment ends
    in a state (Definition 2.2 condition 1).  Step-validity against a
    specific automaton is checked by :meth:`is_fragment_of` rather than at
    construction so fragments can be built incrementally by the unfolding
    engine without repeated lookups.
    """

    states: Tuple[State, ...]
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.actions) + 1:
            raise ValueError(
                f"fragment shape mismatch: {len(self.states)} states vs "
                f"{len(self.actions)} actions"
            )
        # Fragments spend their lives as dict keys in the unfolding engine
        # and the perf-layer caches; the generated dataclass hash re-walks
        # both tuples on every lookup, which is O(|alpha|) per probe.  Every
        # fragment is hashed at least once (frontier insertion), so compute
        # it eagerly and serve it in O(1).
        object.__setattr__(self, "_cached_hash", hash((self.states, self.actions)))

    def __hash__(self) -> int:
        return self._cached_hash

    # Tuple hashes are salted per interpreter (PYTHONHASHSEED), so a cached
    # hash must never survive a pickle round-trip into another process.
    def __getstate__(self):
        return (self.states, self.actions)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "states", state[0])
        object.__setattr__(self, "actions", state[1])
        object.__setattr__(self, "_cached_hash", hash((state[0], state[1])))

    # -- paper accessors --------------------------------------------------------

    @property
    def fstate(self) -> State:
        """``fstate(alpha)``: first state."""
        return self.states[0]

    @property
    def lstate(self) -> State:
        """``lstate(alpha)``: last state (fragments here are always finite)."""
        return self.states[-1]

    def __len__(self) -> int:
        """``|alpha|``: number of transitions along the fragment."""
        return len(self.actions)

    def steps(self) -> Iterator[Tuple[State, Action, State]]:
        """The steps ``(q_i, a_{i+1}, q_{i+1})`` along the fragment."""
        for i, action in enumerate(self.actions):
            yield (self.states[i], action, self.states[i + 1])

    def trace(self, signature_of: Callable[[State], Signature]) -> Tuple[Action, ...]:
        """``trace(alpha)``: restriction to external actions (Definition 2.2).

        Externality is judged at the source state of each step, using the
        per-state signature function of the automaton the fragment belongs to.
        """
        out: List[Action] = []
        for source, action, _target in self.steps():
            if action in signature_of(source).external:
                out.append(action)
        return tuple(out)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def initial(state: State) -> "Fragment":
        """The zero-length fragment at ``state``."""
        return Fragment((state,), ())

    def extend(self, action: Action, target: State) -> "Fragment":
        """``alpha ^ (a, q')`` — append one step (the paper's
        ``alpha frown a q'`` notation)."""
        return Fragment(self.states + (target,), self.actions + (action,))

    # -- relations ------------------------------------------------------------------

    def is_prefix_of(self, other: "Fragment") -> bool:
        """``alpha <= alpha'``: prefix (Definition 2.2)."""
        if len(self) > len(other):
            return False
        return (
            other.states[: len(self.states)] == self.states
            and other.actions[: len(self.actions)] == self.actions
        )

    def is_proper_prefix_of(self, other: "Fragment") -> bool:
        """``alpha < alpha'``: proper prefix."""
        return len(self) < len(other) and self.is_prefix_of(other)

    def __le__(self, other: "Fragment") -> bool:
        return self.is_prefix_of(other)

    def __lt__(self, other: "Fragment") -> bool:
        return self.is_proper_prefix_of(other)

    # -- validation ------------------------------------------------------------------

    def is_fragment_of(self, automaton) -> bool:
        """True when every step is a step of ``automaton`` (Definition 2.2)."""
        for source, action, target in self.steps():
            if action not in automaton.enabled(source):
                return False
            if target not in automaton.transition(source, action).support():
                return False
        return True

    def is_execution_of(self, automaton) -> bool:
        """An execution is a fragment starting at ``qbar`` (Definition 2.2)."""
        return self.fstate == automaton.start and self.is_fragment_of(automaton)

    def __repr__(self) -> str:
        parts: List[str] = [repr(self.states[0])]
        for action, state in zip(self.actions, self.states[1:]):
            parts.append(f"-{action!r}->")
            parts.append(repr(state))
        return "Fragment(" + " ".join(parts) + ")"


def concat(alpha: Fragment, alpha_prime: Fragment) -> Fragment:
    """The concatenation ``alpha frown alpha'`` (Definition 2.2).

    Defined only when ``fstate(alpha') == lstate(alpha)``; raises
    ``ValueError`` otherwise, matching the paper's partiality.
    """
    if alpha_prime.fstate != alpha.lstate:
        raise ValueError(
            f"concatenation undefined: lstate {alpha.lstate!r} != fstate "
            f"{alpha_prime.fstate!r}"
        )
    return Fragment(
        alpha.states + alpha_prime.states[1:],
        alpha.actions + alpha_prime.actions,
    )


def cone_prefixes(alpha: Fragment) -> Sequence[Fragment]:
    """All prefixes of ``alpha`` (the cones containing it), shortest first.

    The sigma-field on executions is generated by cones ``C_alpha' =
    { alpha | alpha' <= alpha }`` (Section 3); a finite execution lies in
    exactly the cones of its prefixes.
    """
    out: List[Fragment] = []
    for k in range(len(alpha) + 1):
        out.append(Fragment(alpha.states[: k + 1], alpha.actions[:k]))
    return out
