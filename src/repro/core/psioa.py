"""Probabilistic signature input/output automata (paper Definition 2.1).

A PSIOA ``A = (Q_A, qbar_A, sig(A), D_A)`` has a countable state set, a
unique start state, a per-state signature and a set of probabilistic
discrete transitions satisfying:

* *transition determinism*: for each state ``q`` and action
  ``a in sig-hat(A)(q)`` there is exactly one ``eta`` with
  ``(q, a, eta) in D_A``;
* *action enabling*: every action of the current signature is enabled.

The library represents automata *intensionally*: ``signature(q)`` and
``transition(q, a)`` are functions, so automata with countably infinite
state spaces compose and run without materialization.  Finite automata can
be given extensionally via :class:`TablePSIOA`, and any finite-reachable
automaton can be validated against the definitional constraints with
:func:`validate_psioa`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.signature import Action, Signature
from repro.perf import cache as _perf_cache
from repro.probability.measures import DiscreteMeasure

__all__ = ["PSIOA", "TablePSIOA", "validate_psioa", "reachable_states", "PsioaError"]

State = Hashable
AutomatonId = Hashable


class PsioaError(ValueError):
    """Raised when an automaton violates the PSIOA constraints."""


class PSIOA:
    """A probabilistic signature I/O automaton (Definition 2.1).

    Parameters
    ----------
    name:
        The automaton identifier (an element of the paper's ``Autids``).
        Identifiers are the unit of identity: configurations and composition
        address automata by name, and two automata participating in the same
        system must have distinct names.
    start:
        The unique start state ``qbar_A``.
    signature:
        Function mapping each state to its :class:`Signature`.
    transition:
        Function mapping ``(q, a)`` with ``a in sig-hat(A)(q)`` to the unique
        target measure ``eta_(A, q, a) in Disc(Q_A)``.  Must raise ``KeyError``
        for actions outside the current signature.
    """

    __slots__ = ("name", "start", "_signature", "_transition")

    def __init__(
        self,
        name: AutomatonId,
        start: State,
        signature: Callable[[State], Signature],
        transition: Callable[[State, Action], DiscreteMeasure],
    ) -> None:
        self.name = name
        self.start = start
        self._signature = signature
        self._transition = transition

    # -- definitional accessors ------------------------------------------------

    def signature(self, state: State) -> Signature:
        """``sig(A)(q)``."""
        return self._signature(state)

    def transition(self, state: State, action: Action) -> DiscreteMeasure:
        """``eta_(A, q, a)`` — the unique transition measure (Definition 2.1).

        Transition determinism makes this a pure function of ``(q, a)``, so
        the perf layer may serve it from an identity-keyed cache (see
        :mod:`repro.perf.cache`; in-place automaton mutation requires
        :func:`repro.perf.cache.invalidate`).
        """
        if _perf_cache.CACHE.enabled:
            return _perf_cache.cached_transition(self, state, action)
        return self._transition(state, action)

    def enabled(self, state: State) -> frozenset:
        """``sig-hat(A)(q)``: all currently executable actions.

        By the action-enabling assumption (footnote 4), membership in the
        current signature and enabledness coincide.
        """
        return self.signature(state).all_actions

    def try_transition(self, state: State, action: Action) -> Optional[DiscreteMeasure]:
        """``transition`` or ``None`` when the action is not currently enabled."""
        if action not in self.enabled(state):
            return None
        return self.transition(state, action)

    def steps_from(self, state: State, action: Action) -> Set[Tuple[State, Action, State]]:
        """The elements of ``steps(A)`` leaving ``state`` via ``action``."""
        eta = self.try_transition(state, action)
        if eta is None:
            return set()
        return {(state, action, target) for target in eta.support()}

    # -- identity ----------------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PSIOA):
            return NotImplemented
        return self.name == other.name

    def __repr__(self) -> str:
        return f"<PSIOA {self.name!r}>"


class TablePSIOA(PSIOA):
    """A finite PSIOA given extensionally by explicit tables.

    Parameters
    ----------
    name, start:
        As for :class:`PSIOA`.
    signatures:
        Mapping from state to :class:`Signature`.  Every state of the
        automaton must appear (this is the full ``Q_A``).
    transitions:
        Mapping ``(q, a) -> DiscreteMeasure`` covering exactly the pairs
        with ``a in sig-hat(A)(q)``; coverage is validated eagerly.
    """

    __slots__ = ("signatures", "transitions")

    def __init__(
        self,
        name: AutomatonId,
        start: State,
        signatures: Mapping[State, Signature],
        transitions: Mapping[Tuple[State, Action], DiscreteMeasure],
    ) -> None:
        self.signatures: Dict[State, Signature] = dict(signatures)
        self.transitions: Dict[Tuple[State, Action], DiscreteMeasure] = dict(transitions)
        if start not in self.signatures:
            raise PsioaError(f"start state {start!r} missing from the signature table")
        super().__init__(name, start, self._table_signature, self._table_transition)

    def _table_signature(self, state: State) -> Signature:
        try:
            return self.signatures[state]
        except KeyError:
            raise PsioaError(f"state {state!r} not in automaton {self.name!r}") from None

    def _table_transition(self, state: State, action: Action) -> DiscreteMeasure:
        try:
            return self.transitions[(state, action)]
        except KeyError:
            raise PsioaError(
                f"no transition from state {state!r} via action {action!r} in {self.name!r}"
            ) from None

    @property
    def states(self) -> frozenset:
        """The explicit state set ``Q_A``."""
        return frozenset(self.signatures)

    def acts(self) -> frozenset:
        """``acts(A)``: the universal set of actions the automaton may trigger."""
        out: Set[Action] = set()
        for sig in self.signatures.values():
            out |= sig.all_actions
        return frozenset(out)


def reachable_states(
    automaton: PSIOA,
    *,
    max_states: int = 100_000,
) -> List[State]:
    """Breadth-first enumeration of ``reachable(A)`` (Definition 2.2).

    Works for any PSIOA whose reachable fragment is finite; raises
    ``PsioaError`` past ``max_states`` to guard against accidental
    exploration of infinite-state automata.
    """
    seen: Set[State] = {automaton.start}
    order: List[State] = [automaton.start]
    frontier: List[State] = [automaton.start]
    while frontier:
        next_frontier: List[State] = []
        for state in frontier:
            for action in sorted(automaton.enabled(state), key=repr):
                eta = automaton.transition(state, action)
                for target in sorted(eta.support(), key=repr):
                    if target not in seen:
                        seen.add(target)
                        order.append(target)
                        next_frontier.append(target)
                        if len(seen) > max_states:
                            raise PsioaError(
                                f"reachable-state exploration of {automaton.name!r} exceeded "
                                f"{max_states} states"
                            )
        frontier = next_frontier
    return order


def validate_psioa(
    automaton: PSIOA,
    *,
    states: Optional[Iterable[State]] = None,
    max_states: int = 100_000,
) -> None:
    """Check the PSIOA constraints of Definition 2.1 over a finite state set.

    * signature components are mutually disjoint (checked by
      :class:`~repro.core.signature.Signature` on access),
    * for every ``q`` and every ``a in sig-hat(A)(q)`` there is exactly one
      transition measure, it is a probability measure, and its support lies
      in the state set,
    * no transition is offered for actions outside the signature (checked
      for :class:`TablePSIOA` tables).

    Raises :class:`PsioaError` with a witness on the first violation.
    """
    universe = list(states) if states is not None else reachable_states(automaton, max_states=max_states)
    universe_set = set(universe)
    for state in universe:
        sig = automaton.signature(state)  # validates disjointness on construction
        for action in sig.all_actions:
            try:
                eta = automaton.transition(state, action)
            except Exception as exc:  # noqa: BLE001 - reported as constraint failure
                raise PsioaError(
                    f"{automaton.name!r}: action {action!r} enabled at {state!r} but "
                    f"transition lookup failed: {exc}"
                ) from exc
            if not isinstance(eta, DiscreteMeasure):
                raise PsioaError(
                    f"{automaton.name!r}: transition ({state!r}, {action!r}) is not a "
                    f"DiscreteMeasure: {eta!r}"
                )
            if eta.total_mass != 1 and abs(float(eta.total_mass) - 1.0) > 1e-9:
                raise PsioaError(
                    f"{automaton.name!r}: transition ({state!r}, {action!r}) has mass "
                    f"{eta.total_mass!r} != 1"
                )
            stray = eta.support() - universe_set
            if states is not None and stray:
                raise PsioaError(
                    f"{automaton.name!r}: transition ({state!r}, {action!r}) targets states "
                    f"outside the declared set: {sorted(map(repr, stray))}"
                )
    if isinstance(automaton, TablePSIOA):
        for (state, action) in automaton.transitions:
            if state not in automaton.signatures:
                raise PsioaError(f"{automaton.name!r}: transition from unknown state {state!r}")
            if action not in automaton.signatures[state].all_actions:
                raise PsioaError(
                    f"{automaton.name!r}: transition offered for {action!r} at {state!r} "
                    f"although it is outside the signature"
                )
