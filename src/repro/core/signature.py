"""Signatures and their algebra (paper Definitions 2.3, 2.4 and 2.6).

A *signature* is a triplet of mutually disjoint countable action sets
``(in, out, int)``.  This module realizes per-state signatures as frozen
triples of frozensets together with:

* :func:`signatures_compatible` — Definition 2.3,
* :func:`compose_signatures` — Definition 2.4,
* :func:`hide_signature` — Definition 2.6.

Actions are arbitrary hashable Python objects; the library conventionally
uses strings or tuples ``(verb, *payload)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Sequence

__all__ = [
    "Action",
    "Signature",
    "EMPTY_SIGNATURE",
    "signatures_compatible",
    "compose_signatures",
    "hide_signature",
    "fresh_action",
]

Action = Hashable


def fresh_action(base: Action, tag: str = "fresh") -> Action:
    """A structurally fresh action name derived from ``base``.

    Used by the dummy-adversary renaming ``g`` (Section 4.9), which maps the
    adversary actions of an automaton to a disjoint set of fresh names.  The
    result wraps the original action so freshness is guaranteed as long as
    the system does not already use the wrapper tag.
    """
    return (tag, base)


@dataclass(frozen=True)
class Signature:
    """A state signature ``sig(A)(q) = (in, out, int)`` (Definition 2.1).

    The three components must be mutually disjoint (checked at
    construction).  ``external`` is ``in | out`` and ``all_actions`` is the
    paper's ``sig-hat`` (the union of the three components).
    """

    inputs: FrozenSet[Action] = field(default_factory=frozenset)
    outputs: FrozenSet[Action] = field(default_factory=frozenset)
    internals: FrozenSet[Action] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        object.__setattr__(self, "internals", frozenset(self.internals))
        if self.inputs & self.outputs:
            raise ValueError(f"inputs and outputs overlap: {self.inputs & self.outputs!r}")
        if self.inputs & self.internals:
            raise ValueError(f"inputs and internals overlap: {self.inputs & self.internals!r}")
        if self.outputs & self.internals:
            raise ValueError(f"outputs and internals overlap: {self.outputs & self.internals!r}")

    @property
    def external(self) -> FrozenSet[Action]:
        """External actions ``ext = in | out``."""
        return self.inputs | self.outputs

    @property
    def all_actions(self) -> FrozenSet[Action]:
        """The paper's ``sig-hat``: every action of the signature."""
        return self.inputs | self.outputs | self.internals

    @property
    def is_empty(self) -> bool:
        """Empty signature — the 'destroyed automaton' sentinel (Def 2.12)."""
        return not (self.inputs or self.outputs or self.internals)

    def locally_controlled(self) -> FrozenSet[Action]:
        """Actions the automaton itself may initiate (outputs and internals)."""
        return self.outputs | self.internals

    def renamed(self, mapping) -> "Signature":
        """Apply an injective action mapping componentwise (Definition 2.8)."""
        return Signature(
            inputs=frozenset(mapping(a) for a in self.inputs),
            outputs=frozenset(mapping(a) for a in self.outputs),
            internals=frozenset(mapping(a) for a in self.internals),
        )

    def __repr__(self) -> str:
        def fmt(s: FrozenSet[Action]) -> str:
            return "{" + ", ".join(sorted(map(repr, s))) + "}"

        return f"Signature(in={fmt(self.inputs)}, out={fmt(self.outputs)}, int={fmt(self.internals)})"


#: The empty signature; an automaton whose current signature is empty is
#: removed by configuration reduction (Definition 2.12).
EMPTY_SIGNATURE = Signature()


def signatures_compatible(signatures: Sequence[Signature]) -> bool:
    """Definition 2.3: pairwise, (1) nothing meets the other's internals and
    (2) output sets are disjoint."""
    for i, sig in enumerate(signatures):
        for other in signatures[i + 1 :]:
            if sig.all_actions & other.internals:
                return False
            if other.all_actions & sig.internals:
                return False
            if sig.outputs & other.outputs:
                return False
    return True


def incompatibility_reason(signatures: Sequence[Signature]) -> str | None:
    """Human-readable witness of why a signature set is incompatible."""
    for i, sig in enumerate(signatures):
        for j, other in enumerate(signatures[i + 1 :], start=i + 1):
            clash = sig.all_actions & other.internals
            if clash:
                return f"actions {sorted(map(repr, clash))} of #{i} meet internals of #{j}"
            clash = other.all_actions & sig.internals
            if clash:
                return f"actions {sorted(map(repr, clash))} of #{j} meet internals of #{i}"
            clash = sig.outputs & other.outputs
            if clash:
                return f"shared outputs {sorted(map(repr, clash))} between #{i} and #{j}"
    return None


def compose_signatures(signatures: Iterable[Signature]) -> Signature:
    """Definition 2.4: ``in = (U in_i) - (U out_i)``, ``out = U out_i``,
    ``int = U int_i``.  Callers must have checked compatibility."""
    inputs: FrozenSet[Action] = frozenset()
    outputs: FrozenSet[Action] = frozenset()
    internals: FrozenSet[Action] = frozenset()
    for sig in signatures:
        inputs |= sig.inputs
        outputs |= sig.outputs
        internals |= sig.internals
    return Signature(inputs=inputs - outputs, outputs=outputs, internals=internals)


def hide_signature(sig: Signature, actions: Iterable[Action]) -> Signature:
    """Definition 2.6: ``hide(sig, S) = (in, out \\ S, int | (out & S))``."""
    hidden = frozenset(actions) & sig.outputs
    return Signature(
        inputs=sig.inputs,
        outputs=sig.outputs - hidden,
        internals=sig.internals | hidden,
    )
