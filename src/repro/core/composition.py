"""Partial composition of PSIOA (paper Definitions 2.5 and 2.18).

The composition ``A1 || ... || An`` is a lazy product automaton:

* a state is the tuple of component states,
* the signature at a state is the composition of the component signatures
  (Definition 2.4), valid only when they are compatible (Definition 2.5),
* the transition via ``a`` is the product measure in which every component
  with ``a`` in its current signature moves and every other component stays
  put (the Dirac factor of Definition 2.5).

*Partial* compatibility (Section 2.6) requires every **reachable** joint
state to be compatible; :func:`check_partial_compatibility` verifies this by
bounded exploration, and the composed automaton rechecks compatibility on
every signature access so violations surface with a precise witness even in
lazy use.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.psioa import PSIOA, PsioaError
from repro.core.signature import (
    Action,
    Signature,
    compose_signatures,
    incompatibility_reason,
    signatures_compatible,
)
from repro.probability.measures import DiscreteMeasure, dirac, product

__all__ = [
    "compose",
    "compatible_at_state",
    "joint_transition",
    "check_partial_compatibility",
    "project",
    "ComposedPSIOA",
]

State = Hashable
JointState = Tuple[State, ...]


def compatible_at_state(automata: Sequence[PSIOA], state: JointState) -> bool:
    """Definition 2.5: compatibility of ``{A1..An}`` at joint state ``q``."""
    return signatures_compatible([a.signature(s) for a, s in zip(automata, state)])


def joint_transition(
    automata: Sequence[PSIOA],
    state: JointState,
    action: Action,
) -> DiscreteMeasure:
    """The joint measure ``eta_(A, q, a)`` of Definition 2.5.

    Components with ``a`` in their current signature take their own
    transition; the others contribute a Dirac factor at their current state.
    The product is pushed forward onto joint-state tuples.
    """
    factors: List[DiscreteMeasure] = []
    for automaton, local_state in zip(automata, state):
        if action in automaton.signature(local_state).all_actions:
            factors.append(automaton.transition(local_state, action))
        else:
            factors.append(dirac(local_state))
    return product(*factors)


class ComposedPSIOA(PSIOA):
    """The partial composition ``A1 || ... || An`` (Definition 2.18).

    States are tuples of component states; projections are positional
    (``q |` A_i = q[i]``, exposed as :func:`project`).  Compatibility at each
    visited state is validated on signature access — the formal object is
    only defined on reachable *compatible* states, and touching an
    incompatible state raises :class:`~repro.core.psioa.PsioaError` with a
    witness rather than yielding an ill-formed signature.
    """

    __slots__ = ("components", "_sig_cache")

    def __init__(self, components: Sequence[PSIOA], *, name: Optional[Hashable] = None) -> None:
        if not components:
            raise PsioaError("composition of zero automata")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise PsioaError(f"duplicate automaton identifiers in composition: {names!r}")
        self.components: Tuple[PSIOA, ...] = tuple(components)
        self._sig_cache: Dict[JointState, Signature] = {}
        derived_name = name if name is not None else ("||",) + tuple(names)
        start = tuple(c.start for c in components)
        super().__init__(derived_name, start, self._composed_signature, self._composed_transition)

    def _composed_signature(self, state: JointState) -> Signature:
        cached = self._sig_cache.get(state)
        if cached is not None:
            return cached
        if len(state) != len(self.components):
            raise PsioaError(
                f"joint state arity {len(state)} != component count {len(self.components)}"
            )
        signatures = [a.signature(s) for a, s in zip(self.components, state)]
        if not signatures_compatible(signatures):
            raise PsioaError(
                f"components incompatible at {state!r}: "
                f"{incompatibility_reason(signatures)}"
            )
        sig = compose_signatures(signatures)
        self._sig_cache[state] = sig
        return sig

    def _composed_transition(self, state: JointState, action: Action) -> DiscreteMeasure:
        if action not in self._composed_signature(state).all_actions:
            raise PsioaError(
                f"action {action!r} not enabled at joint state {state!r} of {self.name!r}"
            )
        return joint_transition(self.components, state, action)

    def component_index(self, component_name: Hashable) -> int:
        for i, component in enumerate(self.components):
            if component.name == component_name:
                return i
        raise KeyError(component_name)


def compose(*automata: PSIOA, name: Optional[Hashable] = None) -> ComposedPSIOA:
    """Build ``A1 || ... || An`` (Definition 2.18).

    Composition is associative and commutative up to state reordering;
    the library keeps the flat n-ary form so projections stay positional.
    Nested compositions flatten: composing a :class:`ComposedPSIOA` with
    more automata re-wraps without flattening (states then nest), which is
    faithful to the paper's binary reading; use a single n-ary call when a
    flat product is wanted.
    """
    return ComposedPSIOA(automata, name=name)


def project(state: JointState, composed: ComposedPSIOA, component_name: Hashable) -> State:
    """``q |` A_i``: the projection of a joint state onto one component."""
    return state[composed.component_index(component_name)]


def check_partial_compatibility(
    automata: Sequence[PSIOA],
    *,
    max_states: int = 100_000,
) -> bool:
    """Section 2.6: every reachable joint state must be compatible.

    Explores the joint reachable set breadth-first (bounded by
    ``max_states``) and returns False on the first incompatible state.
    """
    start: JointState = tuple(a.start for a in automata)
    seen = {start}
    frontier: List[JointState] = [start]
    while frontier:
        next_frontier: List[JointState] = []
        for state in frontier:
            signatures = [a.signature(s) for a, s in zip(automata, state)]
            if not signatures_compatible(signatures):
                return False
            joint_sig = compose_signatures(signatures)
            for action in joint_sig.all_actions:
                eta = joint_transition(automata, state, action)
                for target in eta.support():
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
                        if len(seen) > max_states:
                            raise PsioaError(
                                f"partial-compatibility exploration exceeded {max_states} states"
                            )
        frontier = next_frontier
    return True
