"""Self-healing supervision for the distributed execution backends.

The paper's central object is *dynamic* emulation — components may be
created and destroyed mid-execution without breaking composable guarantees
— and this module gives our own infrastructure the same property: workers
may die, hang, or rejoin while a sweep stays deterministic.  It supplies
the policy and mechanisms the socket transport consults:

* :class:`SupervisionPolicy` — one frozen bundle of knobs (deadlines,
  heartbeat cadence, backoff shape, breaker thresholds, poison limits),
  resolved from the environment and overridden per-backend by spec options
  (``socket:host:port;deadline=30;supervise=on``);
* :func:`backoff_delay` — seeded-deterministic exponential backoff with
  jitter.  The delay is a pure function of ``(seed, worker key, attempt)``
  (string seeding of :class:`random.Random` hashes with SHA-512, so it is
  stable across processes and immune to ``PYTHONHASHSEED``): the same seed
  always produces the same supervision schedule, which is what makes chaos
  runs replayable;
* :class:`CircuitBreaker` — per-endpoint consecutive-failure counter that
  *opens* (ejects the endpoint) at a threshold, then admits a single
  half-open trial after a cooldown;
* :class:`SupervisionLog` — an in-memory record of every supervision
  decision (retries, backoff delays, breaker transitions, respawns,
  quarantines).  Tests replay it to prove same-seed → same-log;
* :class:`LocalPoolBackend` (spec ``pool:N``) — a :class:`SocketBackend`
  that launches its own ``python -m repro.perf.worker`` subprocesses on
  loopback and **respawns** them when they die, the "warm elastic pool"
  sketch from the roadmap with supervision on by default.

Counters live under ``perf.supervise.*``; trace instants are
``supervise.heartbeat_miss``, ``supervise.breaker_open``,
``supervise.respawn``, ``supervise.reconnect`` and ``supervise.quarantine``
(see ``docs/resilience.md`` for the full failure-mode table).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf.backends import BackendSpecError, register_backend
from repro.perf.backends.sockets import SocketBackend, _WorkerConnection

__all__ = [
    "CircuitBreaker",
    "LocalPoolBackend",
    "SupervisionLog",
    "SupervisionPolicy",
    "WorkerProcess",
    "backoff_delay",
]

_RESPAWNS = _counter("perf.supervise.respawns")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _parse_deadline(raw: Any, default: Optional[float]) -> Optional[float]:
    """``0``/``off``/``none`` disable the deadline (unbounded waits)."""
    if raw is None:
        return default
    text = str(raw).strip().lower()
    if not text:
        return default
    if text in ("off", "none", "0", "0.0"):
        return None
    try:
        value = float(text)
    except ValueError:
        return default
    return value if value > 0 else None


def _parse_switch(raw: Any, default: bool) -> bool:
    text = str(raw).strip().lower()
    if text in ("1", "on", "true", "yes"):
        return True
    if text in ("0", "off", "false", "no"):
        return False
    return default


@dataclass(frozen=True)
class SupervisionPolicy:
    """Every supervision knob in one frozen, comparable bundle.

    ``enabled`` gates the *recovery* machinery (reconnects, breakers,
    heartbeats, quarantine); the chunk deadline applies regardless, so a
    hung worker can never block a sweep forever even with supervision off
    (that is the unbounded-``settimeout(None)`` fix).
    """

    enabled: bool = False
    seed: int = 0
    #: seconds for connect + handshake + the send side of a round-trip
    connect_timeout_s: float = 10.0
    #: wall-clock budget for one chunk round-trip; ``None`` = unbounded
    chunk_deadline_s: Optional[float] = 600.0
    #: cadence of worker heartbeat frames while a chunk runs (protocol v3)
    heartbeat_s: float = 1.0
    #: missed-heartbeat tolerance: the receive path times out after
    #: ``heartbeat_s * heartbeat_grace`` seconds of silence
    heartbeat_grace: float = 5.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 15.0
    #: jitter amplitude as a fraction of the delay (0.5 -> +/-50%)
    backoff_jitter: float = 0.5
    #: blocking revival rounds a starved chunk will wait through
    max_reconnect_attempts: int = 3
    #: consecutive failures before the endpoint's breaker opens
    breaker_threshold: int = 3
    #: seconds an open breaker ejects the endpoint before one half-open trial
    breaker_cooldown_s: float = 5.0
    #: distinct workers one chunk may kill before it is quarantined
    poison_threshold: int = 2
    #: times a LocalPoolBackend will respawn each worker slot
    max_respawns: int = 2

    @classmethod
    def from_env(
        cls, options: Optional[Mapping[str, Any]] = None
    ) -> "SupervisionPolicy":
        """Resolve the policy: defaults <- environment <- spec ``options``.

        Environment: ``REPRO_SUPERVISE`` (on/off), ``REPRO_SUPERVISE_SEED``,
        ``REPRO_CHUNK_DEADLINE`` (seconds; ``0``/``off`` unbounded) and
        ``REPRO_SOCKET_TIMEOUT`` (connect/handshake seconds).  Spec options
        (``supervise``, ``seed``, ``deadline``, ``timeout``, ``heartbeat``,
        plus any policy field name) win over the environment.
        """
        policy = cls(
            enabled=_parse_switch(os.environ.get("REPRO_SUPERVISE", ""), cls.enabled),
            seed=int(_env_float("REPRO_SUPERVISE_SEED", cls.seed)),
            connect_timeout_s=_env_float("REPRO_SOCKET_TIMEOUT", cls.connect_timeout_s),
            chunk_deadline_s=_parse_deadline(
                os.environ.get("REPRO_CHUNK_DEADLINE"), cls.chunk_deadline_s
            ),
        )
        return policy.with_options(options or {})

    def with_options(self, options: Mapping[str, Any]) -> "SupervisionPolicy":
        """A copy updated from backend-spec ``key=value`` options."""
        aliases = {
            "supervise": "enabled",
            "deadline": "chunk_deadline_s",
            "timeout": "connect_timeout_s",
            "heartbeat": "heartbeat_s",
        }
        known = {f.name: f for f in fields(self)}
        updates: Dict[str, Any] = {}
        for raw_key, raw_value in options.items():
            key = aliases.get(raw_key, raw_key)
            if key not in known:
                raise BackendSpecError(
                    f"unknown supervision option {raw_key!r} "
                    f"(known: {', '.join(sorted(aliases) + sorted(known))})"
                )
            if key == "enabled":
                updates[key] = _parse_switch(raw_value, self.enabled)
            elif key == "chunk_deadline_s":
                updates[key] = _parse_deadline(raw_value, self.chunk_deadline_s)
            elif known[key].type in ("int", int):
                try:
                    updates[key] = int(str(raw_value))
                except ValueError:
                    raise BackendSpecError(
                        f"supervision option {raw_key!r} needs an integer, got {raw_value!r}"
                    )
            else:
                try:
                    updates[key] = float(str(raw_value))
                except ValueError:
                    raise BackendSpecError(
                        f"supervision option {raw_key!r} needs a number, got {raw_value!r}"
                    )
        return replace(self, **updates) if updates else self

    def frame_timeout_s(self, protocol: int) -> Optional[float]:
        """Longest silence tolerated between frames of one reply.

        A supervised v3 worker heartbeats while the chunk runs, so silence
        longer than a few heartbeat periods means the worker is gone; a v2
        worker is legitimately silent for the whole chunk, so only the
        chunk deadline bounds the wait.
        """
        if self.enabled and protocol >= 3:
            return max(self.heartbeat_s * self.heartbeat_grace, 0.1)
        return self.chunk_deadline_s


def backoff_delay(policy: SupervisionPolicy, worker: str, attempt: int) -> float:
    """Seconds to wait before reconnect ``attempt`` (0-based) to ``worker``.

    Exponential with bounded cap and seeded jitter; a pure function of
    ``(policy.seed, worker, attempt)`` so every supervision schedule is
    replayable from its seed alone.
    """
    base = min(policy.backoff_max_s, policy.backoff_base_s * policy.backoff_factor ** attempt)
    rng = random.Random(f"{policy.seed}|{worker}|{attempt}")
    spread = policy.backoff_jitter * (2.0 * rng.random() - 1.0)
    return max(0.0, base * (1.0 + spread))


class CircuitBreaker:
    """Consecutive-failure breaker for one worker endpoint.

    closed -> (threshold failures) -> open -> (cooldown) -> half-open
    -> success closes / failure re-opens.  ``allow`` answers "may we try
    this endpoint now?"; the caller reports the trial's outcome back.
    """

    __slots__ = ("threshold", "cooldown_s", "failures", "opened_at")

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = float(cooldown_s)
        self.failures = 0
        self.opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if time.monotonic() - self.opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        return self.state != "open"

    def record_failure(self) -> bool:
        """Count one failure; True when this failure *opened* the breaker."""
        self.failures += 1
        if self.failures >= self.threshold and self.opened_at is None:
            self.opened_at = time.monotonic()
            return True
        if self.opened_at is not None:
            self.opened_at = time.monotonic()  # failed half-open trial re-opens
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None


class SupervisionLog:
    """Thread-safe ordered record of supervision decisions.

    Events are plain dicts with an ``event`` key (``retry``, ``backoff``,
    ``breaker_open``, ``reconnected``, ``respawn``, ``quarantine``, ...).
    Everything recorded is derived from the policy seed and the failure
    sequence — never from wall-clock readings — so two runs that see the
    same failures under the same seed produce identical logs.
    """

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def record(self, event: str, **details: Any) -> None:
        entry = {"event": event}
        entry.update(details)
        with self._lock:
            self._events.append(entry)

    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(e) for e in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# -- the self-healing local pool ------------------------------------------------


class WorkerProcess:
    """One locally-launched ``python -m repro.perf.worker`` subprocess."""

    def __init__(self, slot: int, log_dir: Optional[str] = None) -> None:
        self.slot = slot
        self.process: Optional[subprocess.Popen] = None
        self.address: Optional[Tuple[str, int]] = None
        self._log_dir = log_dir or os.environ.get("REPRO_WORKER_LOG_DIR") or None
        self._log_file = None

    def start(self) -> Tuple[str, int]:
        """Launch the worker, parse its banner, return the bound address."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        stderr: Any = subprocess.DEVNULL
        if self._log_dir:
            os.makedirs(self._log_dir, exist_ok=True)
            self._log_file = open(
                os.path.join(self._log_dir, f"pool-worker-{self.slot}.log"), "ab"
            )
            stderr = self._log_file
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.perf.worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=stderr,
            env=env,
        )
        banner = self.process.stdout.readline().decode("utf-8", "replace").strip()
        prefix = "repro-perf-worker listening on "
        if not banner.startswith(prefix):
            self.terminate()
            raise RuntimeError(
                f"pool worker {self.slot} did not announce itself (got {banner!r})"
            )
        host, _, port_text = banner[len(prefix):].rpartition(":")
        self.address = (host, int(port_text))
        return self.address

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def terminate(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process is not None and self.process.stdout is not None:
            self.process.stdout.close()
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None


class LocalPoolBackend(SocketBackend):
    """Spec ``pool:N[;option=value...]`` — a supervised loopback worker pool.

    Launches ``N`` worker subprocesses on free loopback ports and fans
    chunks over them exactly like :class:`SocketBackend`; additionally,
    a worker process found dead during revival is **respawned** (fresh
    process, fresh port, breaker reset) up to ``max_respawns`` times per
    slot.  Supervision is on unless the spec says ``supervise=off``.
    """

    name = "pool"

    def __init__(self, workers: int, options: Optional[Mapping[str, str]] = None) -> None:
        if workers < 1:
            raise BackendSpecError("pool backend needs at least one worker")
        self._requested_workers = workers
        merged = {"supervise": "on"}
        merged.update(options or {})
        self._procs = [WorkerProcess(slot) for slot in range(workers)]
        self._spawned = False
        # Workers are spawned lazily at first use: spec validation
        # (``normalize_spec``) and ``describe()`` build-and-discard backend
        # instances, which must not launch (and leak) subprocesses.
        super().__init__([("127.0.0.1", 0)] * workers, options=merged)
        self._respawns_by_slot = [0] * workers

    def _spawn_all(self) -> None:
        if self._spawned:
            return
        self._spawned = True
        for conn, proc in zip(self._connections, self._procs):
            try:
                conn.address = proc.start()
            except (OSError, RuntimeError):
                pass  # port 0 never connects; the slot revives via respawn

    def _ensure_connected(self) -> None:
        self._spawn_all()
        super()._ensure_connected()

    @property
    def spec(self) -> str:
        return f"pool:{self._requested_workers}" + self._options_suffix()

    @property
    def worker_processes(self) -> List[WorkerProcess]:
        return list(self._procs)

    def _prepare_revival(self, conn: _WorkerConnection) -> bool:
        """Respawn the slot's subprocess if it died; False ends revival."""
        proc = self._procs[conn.index]
        if proc.alive:
            return True
        if self._respawns_by_slot[conn.index] >= self.policy.max_respawns:
            return False
        proc.terminate()  # reap the corpse and close its pipes
        replacement = WorkerProcess(conn.index, log_dir=proc._log_dir)
        try:
            address = replacement.start()
        except (OSError, RuntimeError):
            return False
        self._procs[conn.index] = replacement
        self._respawns_by_slot[conn.index] += 1
        conn.address = address
        conn.breaker.record_success()  # a fresh process starts with a clean slate
        _RESPAWNS.inc()
        _trace.instant(
            "supervise.respawn", slot=conn.index, worker="{}:{}".format(*address)
        )
        self.supervision_log.record(
            "respawn", slot=conn.index, respawn=self._respawns_by_slot[conn.index]
        )
        return True

    def close(self) -> None:
        super().close()
        for proc in self._procs:
            proc.terminate()


def _pool_factory(rest: Optional[str]):
    from repro.perf.backends.sockets import parse_options

    if not rest:
        raise BackendSpecError("pool spec needs a worker count, e.g. pool:4")
    head, _, option_text = rest.partition(";")
    try:
        workers = int(head)
    except ValueError:
        raise BackendSpecError(f"pool worker count must be an integer, got {head!r}")
    return LocalPoolBackend(workers, options=parse_options(option_text))


register_backend("pool", _pool_factory)
