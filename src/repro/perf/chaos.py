"""Infrastructure chaos harness for the perf transport layer.

Where :mod:`repro.faults` attacks the *emulated system*, this module
attacks **our own infrastructure** — the framed TCP protocol between
:class:`~repro.perf.backends.sockets.SocketBackend` and
``python -m repro.perf.worker``, and the forked chunk children — so the
supervision layer (:mod:`repro.perf.supervise`) can be proven against
crash, hang, slow and corrupt failures with the same differential
discipline as everything else: every chaos run must produce run reports
byte-identical to the serial backend.

Two fault surfaces:

* :class:`ChaosProxy` — a frame-aware TCP interposer.  Point a backend at
  the proxy and the proxy at a real worker; every length-prefixed frame
  crossing it consults a seeded plan and is forwarded, delayed, truncated
  mid-frame, replaced by garbage bytes of the same length, withheld
  forever (hang), or answered by killing both sockets.  Faults are a pure
  function of ``(seed, connection, direction, frame index)``, so a chaos
  run is replayable from its seed.  Also a CLI for CI::

      python -m repro.perf.chaos --listen 127.0.0.1:9301 \\
          --upstream 127.0.0.1:9201 --seed 7 --kill 0.05 --delay 0.1 --truncate 0.05

  It prints ``repro-chaos-proxy listening on HOST:PORT`` once bound and
  logs every injected fault to stderr (CI captures them as artifacts).

* **fork fault hooks** — ``REPRO_CHAOS_FORK`` (e.g.
  ``seed=7,kill=0.1,hang=0.05,delay=0.1,delay_s=0.05``) arms
  :func:`fork_fault_plan`, which the fork backend's chunk child consults:
  a faulted chunk is killed **mid-chunk** (``os._exit`` halfway through
  its items), hung, or slowed.  Decisions are a pure function of
  ``(seed, first item index of the chunk)`` — independent of how many
  chunks run or in what order, so the same sweep faults the same items at
  every parallelism.

The handshake frames of each connection are protected by default
(``protect_frames=2``): chaos aims at chunk traffic, not at making pools
unconnectable — a pool that can never connect degrades to the caller-side
serial path, which is already covered by the plain backend tests.
"""

from __future__ import annotations

import argparse
import os
import random
import socket
import struct
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ChaosProxy",
    "apply_fork_fault",
    "fork_fault_plan",
    "main",
    "parse_fork_spec",
]

_LEN = struct.Struct(">Q")

#: Sleep used for "hang" faults — far beyond any sane chunk deadline.
HANG_S = 3600.0


def _log(message: str) -> None:
    print(f"repro-chaos-proxy[{os.getpid()}] {message}", file=sys.stderr, flush=True)


def _shutdown_and_close(sock: socket.socket) -> None:
    # shutdown() before close(): a close alone does not send a FIN while a
    # sibling pump thread is still blocked in recv() on the same socket
    # (the in-flight syscall keeps the kernel's file description alive), so
    # the far end would only notice at its own timeout.  shutdown() tears
    # the connection down immediately and wakes the blocked recv with EOF.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# -- the frame-aware TCP interposer ---------------------------------------------


class ChaosProxy:
    """Seeded fault injection between a socket backend and its worker.

    ``kill``/``hang``/``truncate``/``garbage``/``delay`` are per-frame
    probabilities (evaluated in that order from one uniform draw);
    ``delay_s`` is the injected latency.  ``protect_frames`` exempts each
    direction's first frames so ping/pong handshakes succeed.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        *,
        seed: int = 0,
        kill: float = 0.0,
        hang: float = 0.0,
        truncate: float = 0.0,
        garbage: float = 0.0,
        delay: float = 0.0,
        delay_s: float = 0.05,
        protect_frames: int = 2,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        quiet: bool = True,
    ) -> None:
        self.upstream = tuple(upstream)
        self.seed = int(seed)
        self.rates = {
            "kill": kill,
            "hang": hang,
            "truncate": truncate,
            "garbage": garbage,
            "delay": delay,
        }
        self.delay_s = float(delay_s)
        self.protect_frames = int(protect_frames)
        self._listen = tuple(listen)
        self._quiet = quiet
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_count = 0
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._open_sockets: List[socket.socket] = []
        self.address: Optional[Tuple[str, int]] = None
        self.injected: List[Tuple[int, str, int, str]] = []  # (conn, dir, frame, fault)

    # The decision is a pure function of the identifying coordinates, so a
    # proxy restarted with the same seed injects the same faults.
    def decide(self, conn_index: int, direction: str, frame_index: int) -> str:
        if frame_index < self.protect_frames:
            return "pass"
        rng = random.Random(f"{self.seed}|{conn_index}|{direction}|{frame_index}")
        draw = rng.random()
        cumulative = 0.0
        for fault in ("kill", "hang", "truncate", "garbage", "delay"):
            cumulative += self.rates[fault]
            if draw < cumulative:
                return fault
        return "pass"

    def _garble(self, conn_index: int, direction: str, frame_index: int, size: int) -> bytes:
        rng = random.Random(f"garble|{self.seed}|{conn_index}|{direction}|{frame_index}")
        return bytes(rng.randrange(256) for _ in range(size))

    def start(self) -> Tuple[str, int]:
        self._server = socket.create_server(self._listen)
        self.address = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._conn_lock:
            sockets = list(self._open_sockets)
        for sock in sockets:
            _shutdown_and_close(sock)

    def _note(self, conn_index: int, direction: str, frame_index: int, fault: str) -> None:
        self.injected.append((conn_index, direction, frame_index, fault))
        if not self._quiet:
            _log(f"conn {conn_index} {direction} frame {frame_index}: {fault}")

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _peer = self._server.accept()
            except OSError:
                return
            with self._conn_lock:
                conn_index = self._conn_count
                self._conn_count += 1
            try:
                upstream = socket.create_connection(self.upstream, timeout=10.0)
                upstream.settimeout(None)
            except OSError:
                client.close()
                if not self._quiet:
                    _log(f"conn {conn_index}: upstream {self.upstream} unreachable")
                continue
            with self._conn_lock:
                self._open_sockets += [client, upstream]
            closed = threading.Event()
            for src, dst, direction in (
                (client, upstream, "to-worker"),
                (upstream, client, "to-client"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst, conn_index, direction, closed),
                    daemon=True,
                ).start()

    @staticmethod
    def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
        chunks: List[bytes] = []
        remaining = size
        while remaining:
            try:
                chunk = sock.recv(min(remaining, 1 << 20))
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        conn_index: int,
        direction: str,
        closed: threading.Event,
    ) -> None:
        frame_index = 0
        try:
            while not closed.is_set():
                header = self._recv_exact(src, _LEN.size)
                if header is None:
                    break
                payload = self._recv_exact(src, _LEN.unpack(header)[0])
                if payload is None:
                    break
                fault = self.decide(conn_index, direction, frame_index)
                if fault != "pass":
                    self._note(conn_index, direction, frame_index, fault)
                frame_index += 1
                if fault == "kill":
                    break
                if fault == "hang":
                    # Withhold the frame until someone closes the pair —
                    # exactly what a wedged worker looks like on the wire.
                    closed.wait(HANG_S)
                    break
                if fault == "delay":
                    time.sleep(self.delay_s)
                elif fault == "truncate":
                    dst.sendall(header + payload[: max(0, len(payload) // 2)])
                    break
                elif fault == "garbage":
                    payload = self._garble(
                        conn_index, direction, frame_index - 1, len(payload)
                    )
                dst.sendall(header + payload)
        except OSError:
            pass
        finally:
            closed.set()
            for sock in (src, dst):
                _shutdown_and_close(sock)


# -- fork-side fault hooks -------------------------------------------------------


def parse_fork_spec(text: str) -> Dict[str, float]:
    """Parse ``REPRO_CHAOS_FORK`` (``seed=7,kill=0.1,hang=0.05,delay=0.1``)."""
    spec: Dict[str, float] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        key, sep, value = entry.partition("=")
        key = key.strip()
        if not sep or key not in ("seed", "kill", "hang", "delay", "delay_s"):
            raise ValueError(f"bad REPRO_CHAOS_FORK entry {entry!r}")
        spec[key] = float(value)
    return spec


def fork_fault_plan(chunk: Sequence[Tuple[int, Any]]) -> Optional[Dict[str, Any]]:
    """The fault (if any) a forked chunk child must self-inject.

    Armed by ``REPRO_CHAOS_FORK``; returns ``None`` (no fault) or
    ``{"action", "at_item", "delay_s"}`` where ``at_item`` is the position
    within the chunk at which to fault — mid-chunk, so the child has
    partially computed (and must not partially report).  Keyed by the
    chunk's first *item index*, not its chunk number, so the same items
    fault at every parallelism.
    """
    text = os.environ.get("REPRO_CHAOS_FORK", "").strip()
    if not text or not chunk:
        return None
    try:
        spec = parse_fork_spec(text)
    except ValueError:
        return None
    rng = random.Random(f"fork|{int(spec.get('seed', 0))}|{chunk[0][0]}")
    draw = rng.random()
    cumulative = 0.0
    for action in ("kill", "hang", "delay"):
        cumulative += spec.get(action, 0.0)
        if draw < cumulative:
            return {
                "action": action,
                "at_item": rng.randrange(len(chunk)),
                "delay_s": spec.get("delay_s", 0.05),
            }
    return None


def apply_fork_fault(plan: Dict[str, Any]) -> None:
    """Execute a :func:`fork_fault_plan` decision inside the chunk child."""
    action = plan["action"]
    if action == "kill":
        os._exit(9)
    elif action == "hang":
        time.sleep(HANG_S)
        os._exit(9)  # a supervised parent gave up on us long ago
    elif action == "delay":
        time.sleep(plan["delay_s"])


# -- CLI -------------------------------------------------------------------------


def _parse_hostport(text: str) -> Tuple[str, int]:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"{text!r} is not HOST:PORT")
    return host, int(port_text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded fault-injecting TCP proxy for the repro.perf worker protocol.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT")
    parser.add_argument("--upstream", required=True, metavar="HOST:PORT")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kill", type=float, default=0.0, help="frame kill probability")
    parser.add_argument("--hang", type=float, default=0.0, help="frame hang probability")
    parser.add_argument("--truncate", type=float, default=0.0, help="frame truncation probability")
    parser.add_argument("--garbage", type=float, default=0.0, help="frame corruption probability")
    parser.add_argument("--delay", type=float, default=0.0, help="frame delay probability")
    parser.add_argument("--delay-s", type=float, default=0.05, help="injected latency seconds")
    parser.add_argument(
        "--protect", type=int, default=2, help="handshake frames exempt per direction"
    )
    args = parser.parse_args(argv)
    try:
        listen = _parse_hostport(args.listen)
        upstream = _parse_hostport(args.upstream)
    except ValueError as exc:
        print(f"repro-chaos-proxy: {exc}", file=sys.stderr)
        return 2

    proxy = ChaosProxy(
        upstream,
        seed=args.seed,
        kill=args.kill,
        hang=args.hang,
        truncate=args.truncate,
        garbage=args.garbage,
        delay=args.delay,
        delay_s=args.delay_s,
        protect_frames=args.protect,
        listen=listen,
        quiet=False,
    )
    host, port = proxy.start()
    print(f"repro-chaos-proxy listening on {host}:{port}", flush=True)
    _log(
        f"forwarding to {upstream[0]}:{upstream[1]} seed={args.seed} "
        f"rates={proxy.rates} delay_s={proxy.delay_s} protect={proxy.protect_frames}"
    )
    try:
        while True:
            time.sleep(60)
    except KeyboardInterrupt:
        _log("interrupted, exiting")
        proxy.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
