"""TCP worker for the socket execution backend.

Stand one up per core (or per machine) and point ``REPRO_BACKEND`` / the
runner's ``--backend`` at the pool::

    python -m repro.perf.worker --listen 127.0.0.1:9001
    python -m repro.perf.worker --listen 0.0.0.0:9001      # other hosts may connect

    REPRO_BACKEND=socket:host1:9001,host2:9001 \\
        python -m repro.experiments.runner E12 E15

The worker prints ``repro-perf-worker listening on HOST:PORT`` once bound
(``--listen HOST:0`` picks a free port — parse the line to learn it), then
serves forever: one thread per client connection, and **one forked child
per chunk** (:func:`repro.perf.backends.fork.run_chunk_in_fork`), so every
chunk runs with a zeroed metrics registry, a cold cache, and crash
isolation — a chunk that segfaults kills its child, and the worker reports
the chunk as lost instead of dying.  Multiple clients (e.g. several
crash-isolated experiment children of one ``--parallel`` runner) are served
concurrently.

The worker forces ``REPRO_BACKEND=serial`` for its own process tree: a
sweep nested inside a shipped chunk must never dial back into the pool the
chunk came from.

Per-connection request log lines go to stderr (CI captures them as
artifacts).  POSIX only (``os.fork``); frames are pickles, so bind only to
interfaces you trust.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
from typing import Optional, Sequence, Tuple

from repro.obs import log as _obs_log
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.perf import pickling
from repro.perf.backends.fork import run_chunk_in_fork
from repro.perf.backends.sockets import FrameError, recv_frame, send_frame, worker_info

__all__ = ["main", "serve"]


def _log(message: str) -> None:
    print(f"repro-perf-worker[{os.getpid()}] {message}", file=sys.stderr, flush=True)


#: Structured mirror of the stderr request log (active when the worker was
#: launched with ``REPRO_LOG`` in its environment — pool workers inherit
#: the service's sink and append to the same JSONL file).
_WORKER_LOG = _obs_log.get_logger("perf.worker")


def _locked_send(conn: socket.socket, lock: threading.Lock, message: tuple) -> None:
    with lock:
        send_frame(conn, message)


def _handle_run(
    conn: socket.socket,
    send_lock: threading.Lock,
    fn_blob: bytes,
    chunk_blob: bytes,
    ctx: dict,
) -> str:
    try:
        fn = pickling.loads(fn_blob)
        chunk = pickling.loads(chunk_blob)
    except BaseException:  # noqa: BLE001 - diagnosis belongs to the client
        _locked_send(
            conn,
            send_lock,
            ("fatal", f"worker could not unpickle the chunk:\n{traceback.format_exc()}"),
        )
        return "fatal: unpicklable chunk"
    # The caller's trace wish rides in the run frame's ctx; a worker whose
    # own REPRO_TRACE gate is on traces even for an untraced caller.  The
    # profile wish works exactly the same way (REPRO_PROFILE gate).
    trace = True if (ctx.get("trace") or _trace.is_enabled()) else None
    profile = True if (ctx.get("profile") or _profile.PROFILER.enabled) else None
    # The caller's persistent cache directory also rides in the ctx (the
    # path must be meaningful on this host — loopback pools and shared
    # filesystems).  Exported to the environment so the forked chunk child
    # below inherits it and dedupes against the same store; an explicit
    # --cache-dir on this worker wins.
    cache_dir = ctx.get("cache_dir")
    if cache_dir and "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    # The caller's job correlation id (repro.obs.log) also rides the ctx.
    # It is installed only inside the forked chunk child, never in this
    # worker process: connection threads serve many clients concurrently,
    # and a process-global id would bleed across their chunks.
    job = ctx.get("job")
    started = time.perf_counter()
    # Protocol v3: a supervised client asks for liveness frames while the
    # chunk runs (ctx["heartbeat_s"]); the chunk executes in a helper
    # thread and this thread beats until it finishes.  The heartbeat and
    # the reply share one send lock so frames never interleave.
    heartbeat_s = ctx.get("heartbeat_s")
    beats = 0
    if heartbeat_s:
        done = threading.Event()
        collected_box: list = []

        def _run() -> None:
            try:
                collected_box.append(
                    run_chunk_in_fork(
                        fn, chunk, trace=trace, lane="worker", profile=profile, job=job
                    )
                )
            finally:
                done.set()

        runner = threading.Thread(target=_run, daemon=True)
        runner.start()
        while not done.wait(float(heartbeat_s)):
            try:
                _locked_send(conn, send_lock, ("hb", beats))
                beats += 1
            except OSError:
                break  # client gone; finish the chunk for the log, reply will fail
        runner.join()
        collected = collected_box[0] if collected_box else None
    else:
        collected = run_chunk_in_fork(
            fn, chunk, trace=trace, lane="worker", profile=profile, job=job
        )
    elapsed = time.perf_counter() - started
    beaten = f", {beats} heartbeats" if beats else ""
    if collected is None:
        _locked_send(
            conn, send_lock, ("lost", "worker's chunk subprocess died without reporting")
        )
        _WORKER_LOG.warning(
            "worker.chunk.lost", job=job, items=len(chunk), elapsed_s=round(elapsed, 3)
        )
        return f"lost ({len(chunk)} items, {elapsed:.2f}s{beaten})"
    results, snapshot, trace_payload, profile_payload = collected
    # The ok-frame's 5th element is the profile payload; clients predating
    # it read only the first four and are unaffected.
    _locked_send(
        conn, send_lock, ("ok", results, snapshot, trace_payload, profile_payload)
    )
    failed = sum(1 for _index, error, _value in results if error is not None)
    status = "ok" if not failed else f"ok with {failed} item error(s)"
    traced = ", traced" if trace_payload is not None else ""
    profiled = ", profiled" if profile_payload is not None else ""
    _WORKER_LOG.info(
        "worker.chunk",
        job=job,
        items=len(chunk),
        failed=failed or None,
        elapsed_s=round(elapsed, 3),
        traced=True if trace_payload is not None else None,
        heartbeats=beats or None,
    )
    return f"{status} ({len(chunk)} items, {elapsed:.2f}s{traced}{profiled}{beaten})"


def _serve_connection(conn: socket.socket, peer: Tuple[str, int]) -> None:
    _log(f"client {peer[0]}:{peer[1]} connected")
    send_lock = threading.Lock()
    try:
        while True:
            try:
                message = recv_frame(conn)
            except FrameError as exc:
                # Byzantine client: drop the connection, keep the worker.
                _log(f"client {peer[0]}:{peer[1]} sent garbage ({exc}); disconnecting")
                break
            except (EOFError, OSError):
                break
            if not (isinstance(message, tuple) and message and isinstance(message[0], str)):
                _log(f"client {peer[0]}:{peer[1]} sent a malformed request; disconnecting")
                break
            kind = message[0]
            if kind == "ping":
                _locked_send(conn, send_lock, ("pong", worker_info()))
            elif kind == "run":
                ctx = message[3] if len(message) > 3 else {}
                outcome = _handle_run(conn, send_lock, message[1], message[2], ctx)
                _log(f"client {peer[0]}:{peer[1]} chunk -> {outcome}")
            elif kind == "shutdown":
                _log(f"client {peer[0]}:{peer[1]} requested shutdown")
                try:
                    send_frame(conn, ("bye",))
                finally:
                    os._exit(0)
            else:
                _locked_send(conn, send_lock, ("fatal", f"unknown request {kind!r}"))
    finally:
        try:
            conn.close()
        except OSError:
            pass
        _log(f"client {peer[0]}:{peer[1]} disconnected")


def serve(host: str, port: int, *, ready: Optional[threading.Event] = None) -> None:
    """Bind, announce, and serve forever (thread per connection)."""
    server = socket.create_server((host, port))
    bound_host, bound_port = server.getsockname()[:2]
    print(f"repro-perf-worker listening on {bound_host}:{bound_port}", flush=True)
    _log(f"serving on {bound_host}:{bound_port} (python {worker_info()['python']})")
    if ready is not None:
        ready.set()
    while True:
        conn, peer = server.accept()
        thread = threading.Thread(target=_serve_connection, args=(conn, peer), daemon=True)
        thread.start()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="TCP worker for the repro.perf socket execution backend.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="interface and port to bind (port 0 picks a free one)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persistent perf-cache directory (exports REPRO_CACHE_DIR so "
            "chunk children dedupe unfoldings and sweeps against it; "
            "defaults to the inherited environment, else the directory a "
            "client ships in its run frames)"
        ),
    )
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):
        print("repro-perf-worker requires a POSIX host (os.fork)", file=sys.stderr)
        return 2
    host, sep, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
        if not sep or not host:
            raise ValueError
    except ValueError:
        print(f"--listen must be HOST:PORT, got {args.listen!r}", file=sys.stderr)
        return 2

    # A sweep nested inside a chunk must run serially, never dial back into
    # the pool this worker belongs to (that would deadlock the pool).
    os.environ["REPRO_BACKEND"] = "serial"
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = os.path.abspath(args.cache_dir)
    # Marker for shipped closures that must behave differently inside a
    # worker than in the caller's fallback path (chaos tests lean on this).
    os.environ["REPRO_PERF_WORKER"] = "1"

    try:
        serve(host, port)
    except KeyboardInterrupt:
        _log("interrupted, exiting")
    return 0


if __name__ == "__main__":
    sys.exit(main())
