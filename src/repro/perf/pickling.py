"""Closure-capable pickling for the socket execution backend.

The fork backend never serializes the mapped function — children inherit it
through copy-on-write memory.  A socket worker is a *separate process on a
possibly different machine*, so the function must cross the wire, and sweep
call sites routinely pass lambdas and local closures (E15's fault sweeps,
the E12 distinguisher search), which the standard :mod:`pickle` refuses.

:func:`dumps` is ``pickle.dumps`` with one extension, applied recursively
anywhere in the object graph: a function that cannot be imported by
``module:qualname`` (lambdas, comprehension-local ``def``s, anything whose
qualname contains ``<locals>``) is serialized **by value** — its code object
via :mod:`marshal`, its closure cells, defaults, and the module globals its
code actually references.  Importable functions, classes and instances keep
standard pickle-by-reference semantics, so the worker resolves them against
its own installed ``repro`` package.

:func:`loads` is plain ``pickle.loads``: the by-value reduction rebuilds a
*skeleton* function through :func:`_make_skeleton` (empty closure cells)
and then fills cells, globals and defaults through :func:`_fill_function`
as pickle state — both importable, so no custom unpickler is needed on the
receiving side.  The two-step rebuild is what makes **self-referential
closures** (a recursive local function captured in its own cell) work: the
skeleton lands in the pickle memo before its cell values are serialized,
so the cycle resolves instead of recursing.

Constraints, by construction:

* ``marshal`` code blobs are only portable between identical interpreter
  versions — workers must run the same ``major.minor`` Python as the
  client (the worker handshake reports its version so mismatches fail
  loudly, see :mod:`repro.perf.worker`).
* Captured module globals are snapshotted at dump time; by-value functions
  that *assign* globals get a private globals dict on the worker.
* Like everything pickle: only unpickle data from trusted peers.
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["dumps", "loads", "PicklingError"]

PicklingError = pickle.PicklingError

class _EmptyCell:
    """Sentinel for closure cells that are still empty (e.g. a recursive
    local function captured before its own definition completed)."""

    def __reduce__(self):
        return (_EmptyCell, ())


def _importable(fn: types.FunctionType) -> bool:
    """True when ``fn`` can be recovered by importing ``module:qualname``."""
    module_name = getattr(fn, "__module__", None) or ""
    if module_name in ("__main__", "__mp_main__"):
        return False  # scripts/REPLs don't exist as importable modules elsewhere
    module = sys.modules.get(module_name)
    if module is None:
        return False
    obj: Any = module
    for part in fn.__qualname__.split("."):
        if part == "<locals>":
            return False
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _referenced_globals(code: types.CodeType, globs: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``globs`` that ``code`` (or any nested code constant,
    e.g. an inner lambda or comprehension) can actually name."""
    names: set = set()
    stack: List[types.CodeType] = [code]
    while stack:
        current = stack.pop()
        names.update(current.co_names)
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return {name: globs[name] for name in sorted(names) if name in globs}


def _cell_contents(fn: types.FunctionType) -> Optional[List[Any]]:
    if fn.__closure__ is None:
        return None
    values: List[Any] = []
    for cell in fn.__closure__:
        try:
            values.append(cell.cell_contents)
        except ValueError:  # still-empty cell
            values.append(_EmptyCell())
    return values


def _make_skeleton(
    code_blob: bytes,
    name: str,
    qualname: str,
    module: str,
    cell_count: int,
) -> types.FunctionType:
    """An empty-celled shell of a by-value function.

    Cells, globals and defaults arrive afterwards through
    :func:`_fill_function` (pickle state): splitting construction this way
    puts the function object in the unpickler's memo *before* its closure
    values deserialize, which is what lets a recursive local function
    reference itself without infinite recursion."""
    code = marshal.loads(code_blob)
    closure = tuple(types.CellType() for _ in range(cell_count)) or None
    fn = types.FunctionType(code, {"__builtins__": builtins}, name, None, closure)
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _fill_function(fn: types.FunctionType, state: Dict[str, Any]) -> None:
    """Install captured globals, defaults and closure-cell values into a
    :func:`_make_skeleton` shell (the pickle state setter)."""
    fn.__globals__.update(state["globals"])
    fn.__defaults__ = state["defaults"]
    fn.__kwdefaults__ = state["kwdefaults"]
    for cell, value in zip(fn.__closure__ or (), state["cells"] or ()):
        if not isinstance(value, _EmptyCell):
            cell.cell_contents = value


class _ClosurePickler(pickle.Pickler):
    """Standard pickler + by-value reduction for non-importable functions
    and by-name reduction for module objects."""

    def reducer_override(self, obj):  # noqa: D102 - pickle protocol hook
        if isinstance(obj, types.FunctionType) and not _importable(obj):
            state = {
                "globals": _referenced_globals(obj.__code__, obj.__globals__),
                "defaults": obj.__defaults__,
                "kwdefaults": obj.__kwdefaults__,
                "cells": _cell_contents(obj),
            }
            return (
                _make_skeleton,
                (
                    marshal.dumps(obj.__code__),
                    obj.__name__,
                    obj.__qualname__,
                    obj.__module__ or "__repro_dynamic__",
                    len(obj.__closure__ or ()),
                ),
                state,
                None,
                None,
                _fill_function,
            )
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        return NotImplemented


def dumps(obj: Any) -> bytes:
    """Pickle ``obj``; lambdas/closures anywhere in the graph go by value."""
    buffer = io.BytesIO()
    _ClosurePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def loads(blob: bytes) -> Any:
    """Inverse of :func:`dumps` (plain unpickling; trusted input only)."""
    return pickle.loads(blob)
