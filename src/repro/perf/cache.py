"""Transparent memoization for the unfolding engine (the ``repro.perf`` cache).

The execution-measure machinery recomputes the same pure values over and
over: ``PSIOA.transition(state, action)`` is a pure function of its
arguments (transition determinism, Definition 2.1), scheduler decisions are
pure functions of ``(automaton, fragment)`` (Definition 3.1 schedulers are
maps, and every scheduler shipped by the library decides by replaying the
fragment), and a full unfolding ``execution_measure(A, sigma)`` is a pure
function of the pair.  This module caches all three behind the call sites
that already exist, so enabling the cache changes *nothing* about results —
only about how often the underlying computations run.  Exactness is
preserved by construction: cached values are the very objects the
uncached computation produced, and interning only unifies objects that
compare equal under exact (rational) arithmetic.

Content hashes are the cache key, identity the fallback
-------------------------------------------------------
Owner keys come from :func:`owner_key`: once an object's canonical
structural fingerprint (:mod:`repro.perf.fingerprint`) has been memoized —
which happens the first time a memo boundary such as the unfolding memo or
the sweep memo pays for it — its entries are keyed ``("fp", digest)``, so
*value-equal* automata and schedulers share entries within and across
processes.  Until then (and always, when no persistent store is active)
keys stay ``("id", id(obj))``: fingerprints are never computed on the hot
path, so the store-less configuration is byte- and cost-identical to the
identity-keyed cache.  Every store keeps a strong reference to the objects
behind its keys (the *keepalive*), so an id-derived key can never be
recycled by the allocator while its entries are live.  The cost is that
cached objects stay alive until their entries are evicted — the LRU bounds
below cap that.

Invalidation
------------
Mutating an automaton in place (e.g. editing a ``TablePSIOA`` table) makes
its cached transitions stale.  Call :func:`invalidate` with the mutated
object to drop every entry derived from it (transitions, decisions,
memoized measures, derived values) from **both tiers**: in-memory entries
under its identity *and* under its stale fingerprint are dropped, the
fingerprint memo forgets the object, and any active persistent store
(:mod:`repro.perf.store`) removes the entries that depended on the stale
digest.  :func:`clear` drops everything in-memory.  Fresh-per-run
isolation is automatic in the experiment harness: the guarded runner
clears the cache at the start of every experiment child.

Configuration
-------------
The environment variable ``REPRO_CACHE`` (``on``/``off``, default ``on``)
sets the initial state; :func:`configure` overrides it at runtime.  All
stores publish ``perf.cache.<store>.{hits,misses,evictions}`` counters and
``perf.intern.<kind>.{hits,misses}`` counters on the global
:mod:`repro.obs.metrics` registry, so cache behaviour shows up in run
reports and bench trajectories without extra plumbing.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs.metrics import counter as _counter
from repro.perf import fingerprint as _fingerprint
from repro.perf import store as _store

__all__ = [
    "CACHE",
    "cache_enabled",
    "configure",
    "owner_key",
    "cached_transition",
    "cached_decision",
    "cached_derived",
    "measure_cache_get",
    "measure_cache_put",
    "intern_fragment",
    "intern_measure",
    "invalidate",
    "clear",
    "stats",
]

#: Default size bounds.  Per-owner entry caps bound the width of a single
#: automaton's table; owner caps bound how many distinct automata/scheduler
#: pairs are tracked at once (least-recently-used owners are dropped whole).
DEFAULT_BOUNDS = {
    "transition_owners": 256,
    "transition_entries": 16384,
    "decision_owners": 512,
    "decision_entries": 16384,
    "measure_owners": 256,
    "measure_entries": 512,
    "derived_owners": 512,
    "derived_entries": 64,
    "intern_fragments": 65536,
    "intern_measures": 16384,
}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


class _BoundedStore:
    """A two-level LRU store: owner -> (keepalive, key -> value).

    ``owner`` is an id-derived hashable; ``keepalive`` is the object (or
    tuple of objects) whose identity the owner encodes — held strongly so
    the id stays valid for the lifetime of the entries.
    """

    __slots__ = ("name", "max_owners", "max_entries", "_owners", "hits", "misses", "evictions")

    def __init__(self, name: str, max_owners: int, max_entries: int) -> None:
        self.name = name
        self.max_owners = max_owners
        self.max_entries = max_entries
        #: owner -> [keepalive, OrderedDict(key -> value)]
        self._owners: "OrderedDict[Hashable, Tuple[Any, OrderedDict]]" = OrderedDict()
        self.hits = _counter(f"perf.cache.{name}.hits")
        self.misses = _counter(f"perf.cache.{name}.misses")
        self.evictions = _counter(f"perf.cache.{name}.evictions")

    def get(self, owner: Hashable, key: Hashable) -> Optional[Any]:
        slot = self._owners.get(owner)
        if slot is None:
            self.misses.inc()
            return None
        entries = slot[1]
        value = entries.get(key)
        if value is None:
            self.misses.inc()
            return None
        entries.move_to_end(key)
        self._owners.move_to_end(owner)
        self.hits.inc()
        return value

    def put(self, owner: Hashable, keepalive: Any, key: Hashable, value: Any) -> None:
        slot = self._owners.get(owner)
        if slot is None:
            while len(self._owners) >= self.max_owners:
                _, (_, dropped) = self._owners.popitem(last=False)
                self.evictions.inc(len(dropped))
            slot = (keepalive, OrderedDict())
            self._owners[owner] = slot
        entries = slot[1]
        while len(entries) >= self.max_entries:
            entries.popitem(last=False)
            self.evictions.inc()
        entries[key] = value
        self._owners.move_to_end(owner)

    def invalidate_object(self, obj: Any) -> int:
        """Drop every owner whose keepalive contains ``obj`` (by identity)."""
        stale = []
        for owner, (keepalive, _entries) in self._owners.items():
            if keepalive is obj or (
                isinstance(keepalive, tuple) and any(part is obj for part in keepalive)
            ):
                stale.append(owner)
        dropped = 0
        for owner in stale:
            dropped += len(self._owners.pop(owner)[1])
        return dropped

    def invalidate_key(self, part: Hashable) -> int:
        """Drop every owner keyed by ``part`` (an :func:`owner_key` value),
        including composite owners that embed it.  Fingerprint-keyed entries
        can be shared by several value-equal objects, so identity scans
        alone cannot reach them."""
        stale = [
            owner
            for owner in self._owners
            if owner == part or (isinstance(owner, tuple) and part in owner)
        ]
        dropped = 0
        for owner in stale:
            dropped += len(self._owners.pop(owner)[1])
        return dropped

    def clear(self) -> None:
        self._owners.clear()

    def size(self) -> int:
        return sum(len(entries) for _, entries in self._owners.values())


class _Interner:
    """Hash-consing table: maps a value-equal object to its canonical twin.

    Tables are **scoped per owner** (per automaton identity).  Cross-owner
    unification would be unsound: automaton equality is *name*-based
    (Definition 2.1 identifies automata by their id), so two value-equal
    configurations built by different PCA objects may embed behaviorally
    different sub-automata.  Within one automaton, value-equal fragments and
    measures are interchangeable — the reachability and unfolding engines
    already dedup on exactly that equality.
    """

    __slots__ = ("name", "cap", "_owners", "hits", "misses")

    def __init__(self, name: str, cap: int) -> None:
        self.name = name
        self.cap = cap
        #: owner -> (keepalive, {obj: canonical twin})
        self._owners: "OrderedDict[Hashable, Tuple[Any, Dict[Any, Any]]]" = OrderedDict()
        self.hits = _counter(f"perf.intern.{name}.hits")
        self.misses = _counter(f"perf.intern.{name}.misses")

    def intern(self, owner: Hashable, keepalive: Any, obj: Any) -> Any:
        slot = self._owners.get(owner)
        if slot is None:
            # Bound the number of tracked owners at the table cap's square
            # root heuristic is overkill; reuse the entry cap and drop the
            # least-recently-used owner whole.  Dropping loses sharing only.
            while len(self._owners) >= 64:
                self._owners.popitem(last=False)
            slot = (keepalive, {})
            self._owners[owner] = slot
        table = slot[1]
        canonical = table.get(obj)
        if canonical is not None:
            self.hits.inc()
            return canonical
        self.misses.inc()
        if len(table) >= self.cap:
            # FIFO eviction: dropping a canonical twin only loses sharing,
            # never correctness.
            table.pop(next(iter(table)))
        table[obj] = obj
        return obj

    def invalidate_object(self, obj: Any) -> int:
        stale = [
            owner
            for owner, (keepalive, _table) in self._owners.items()
            if keepalive is obj
        ]
        dropped = 0
        for owner in stale:
            dropped += len(self._owners.pop(owner)[1])
        return dropped

    def invalidate_key(self, part: Hashable) -> int:
        stale = [
            owner
            for owner in self._owners
            if owner == part or (isinstance(owner, tuple) and part in owner)
        ]
        dropped = 0
        for owner in stale:
            dropped += len(self._owners.pop(owner)[1])
        return dropped

    def clear(self) -> None:
        self._owners.clear()

    def size(self) -> int:
        return sum(len(table) for _, table in self._owners.values())


def _weights_exact(measure: Any) -> bool:
    """True when every weight participates in exact rational arithmetic.

    Interning float-weighted measures would canonicalize values that are
    only *tolerance*-equal, silently changing downstream float arithmetic;
    exact weights compare by true equality, so unification is lossless.
    """
    for _outcome, weight in measure.items():
        if not isinstance(weight, (int, Fraction)) or isinstance(weight, bool):
            return False
    return True


class PerfCache:
    """The process-global cache bundle (see the module docstring)."""

    def __init__(self, bounds: Optional[Dict[str, int]] = None) -> None:
        b = dict(DEFAULT_BOUNDS)
        if bounds:
            b.update(bounds)
        self.enabled: bool = _env_enabled()
        self.transitions = _BoundedStore(
            "transition", b["transition_owners"], b["transition_entries"]
        )
        self.decisions = _BoundedStore(
            "decision", b["decision_owners"], b["decision_entries"]
        )
        self.measures = _BoundedStore("measure", b["measure_owners"], b["measure_entries"])
        self.derived = _BoundedStore("derived", b["derived_owners"], b["derived_entries"])
        self.fragments = _Interner("fragment", b["intern_fragments"])
        self.measure_interner = _Interner("measure", b["intern_measures"])
        self._stores = (self.transitions, self.decisions, self.measures, self.derived)

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        for store in self._stores:
            store.clear()
        self.fragments.clear()
        self.measure_interner.clear()

    def invalidate(self, obj: Any) -> int:
        """Drop every cached value derived from ``obj`` — entries whose
        keepalive holds it by identity plus entries keyed under its
        memoized fingerprint (which value-equal twins may share)."""
        targets = self._stores + (self.fragments, self.measure_interner)
        dropped = sum(target.invalidate_object(obj) for target in targets)
        stale_fp = _fingerprint.peek(obj)
        if stale_fp is not None:
            part = ("fp", stale_fp)
            dropped += sum(target.invalidate_key(part) for target in targets)
        return dropped

    def stats(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for store in self._stores:
            out[store.name] = {
                "size": store.size(),
                "hits": store.hits.value,
                "misses": store.misses.value,
                "evictions": store.evictions.value,
            }
        for interner in (self.fragments, self.measure_interner):
            out[f"intern.{interner.name}"] = {
                "size": interner.size(),
                "hits": interner.hits.value,
                "misses": interner.misses.value,
            }
        return out


#: The singleton every call site binds against.
CACHE = PerfCache()


def cache_enabled() -> bool:
    return CACHE.enabled


def configure(*, enabled: Optional[bool] = None) -> None:
    """Override the cache switch; ``enabled=None`` re-reads ``REPRO_CACHE``."""
    CACHE.enabled = _env_enabled() if enabled is None else bool(enabled)


def clear() -> None:
    # Forgetting memoized fingerprints alongside the entries they key keeps
    # recycled ids from ever resolving to a stale digest.
    CACHE.clear()
    _fingerprint.clear_memo()


def invalidate(obj: Any) -> int:
    """Drop every cached value derived from ``obj`` from both tiers.

    In-memory entries go first (identity scan plus fingerprint-keyed
    scan), then the fingerprint memo forgets the object — a later
    fingerprint call re-hashes the mutated structure — and finally any
    active persistent store drops the entries that depended on the stale
    digest."""
    stale_fp = _fingerprint.peek(obj)
    dropped = CACHE.invalidate(obj)
    _fingerprint.forget(obj)
    if stale_fp is not None:
        persistent = _store.active_store()
        if persistent is not None:
            persistent.invalidate(stale_fp)
    return dropped


def stats() -> Dict[str, Dict[str, int]]:
    return CACHE.stats()


# -- call-site helpers ----------------------------------------------------------
#
# These are invoked from the hot paths (PSIOA.transition,
# Scheduler.decide_checked, execution_measure) *after* the enabled check, so
# the disabled path pays only one attribute read.


def owner_key(obj: Any) -> Tuple[str, Any]:
    """The cache owner key for ``obj``: its content hash when one is already
    memoized, its identity otherwise.

    This never *computes* a fingerprint (``peek`` is a dict probe), so hot
    paths pay O(1) and the identity-keyed behaviour is preserved exactly
    until a memo boundary — the persistent unfolding memo or the sweep
    memo — has fingerprinted the object once.  From then on value-equal
    objects resolve to the same owner and share entries.
    """
    digest = _fingerprint.peek(obj)
    if digest is not None:
        return ("fp", digest)
    return ("id", id(obj))


def cached_transition(automaton: Any, state: Hashable, action: Hashable) -> Any:
    """Memoized ``eta_(A, q, a)`` — calls the automaton's raw transition
    function on a miss.  Lookup failures (disabled actions) propagate and
    are never cached."""
    owner = owner_key(automaton)
    key = (state, action)
    eta = CACHE.transitions.get(owner, key)
    if eta is not None:
        return eta
    eta = automaton._transition(state, action)
    eta = intern_measure(automaton, eta)
    CACHE.transitions.put(owner, automaton, key, eta)
    return eta


def cached_decision(scheduler: Any, automaton: Any, fragment: Hashable) -> Any:
    """Memoized validated scheduler decision for ``(automaton, fragment)``."""
    owner = (owner_key(scheduler), owner_key(automaton))
    decision = CACHE.decisions.get(owner, fragment)
    if decision is not None:
        return decision
    decision = scheduler._decide_checked_uncached(automaton, fragment)
    CACHE.decisions.put(owner, (scheduler, automaton), fragment, decision)
    return decision


def cached_derived(owner_obj: Any, key: Hashable, compute: Callable[[], Any]) -> Any:
    """Generic per-object memo for derived values (e.g. ``acts(A)``)."""
    if not CACHE.enabled:
        return compute()
    owner = owner_key(owner_obj)
    value = CACHE.derived.get(owner, key)
    if value is not None:
        return value
    value = compute()
    CACHE.derived.put(owner, owner_obj, key, value)
    return value


def measure_cache_get(automaton: Any, scheduler: Any, key: Hashable) -> Optional[Any]:
    """Lookup of a memoized full unfolding; the key already encodes the
    scheduler's owner key plus the unfolding parameters."""
    return CACHE.measures.get(owner_key(automaton), key)


def measure_cache_put(automaton: Any, scheduler: Any, key: Hashable, measure: Any) -> None:
    # The scheduler rides inside the keepalive so the identity behind its
    # owner key (part of the entry key) cannot be recycled while the entry
    # lives.
    CACHE.measures.put(owner_key(automaton), (automaton, scheduler), key, measure)


def intern_fragment(automaton: Any, fragment: Any) -> Any:
    """Return the canonical twin of ``fragment`` within ``automaton``'s scope
    (equal and hash-equal; see :class:`_Interner` for why scoping matters)."""
    return CACHE.fragments.intern(owner_key(automaton), automaton, fragment)


def intern_measure(automaton: Any, measure: Any) -> Any:
    """Return the canonical twin of an exact-weighted measure within
    ``automaton``'s scope.

    Measures with float weights are returned unchanged: their equality is
    tolerance-based, so unifying them could alter float results downstream.
    """
    if not _weights_exact(measure):
        return measure
    return CACHE.measure_interner.intern(owner_key(automaton), automaton, measure)
