"""Disk-backed persistent cache keyed by structural fingerprints.

The store turns the in-process perf cache into a cross-process,
cross-restart one: entries are keyed by the content hashes of
:mod:`repro.perf.fingerprint`, so a fork child, a socket worker, or a
fresh interpreter computing the same unfolding (or the same whole sweep)
finds the result on disk instead of recomputing it.

Activation is purely environmental: ``REPRO_CACHE_DIR`` names the cache
directory (the runner's ``--cache-dir`` flag exports it, and both the
fork backend — via copy-on-write — and the socket transport — via the
worker CLI and the run-frame context — propagate it to workers).  When
the variable is unset, :func:`active_store` returns ``None`` and the perf
layer behaves exactly as before; nothing else in the process needs
configuring, which is what keeps experiment child processes and remote
workers in agreement without a handshake.

On-disk format
--------------

::

    <REPRO_CACHE_DIR>/
      v<STORE_FORMAT>.<FINGERPRINT_VERSION>-py<major>.<minor>/
        unfold/<automaton-fingerprint>/<entry-fingerprint>.pkl
        sweep/<shard>/<entry-fingerprint>.pkl

The version segment bakes in the entry format, the fingerprint encoding
version, and the Python minor version (pickled bytecode-adjacent values
must not cross interpreters), so incompatible writers simply land in
sibling trees.  Each entry is a pickled dict carrying ``format``,
``kind`` and ``key`` echoes that are validated on read — a truncated,
corrupt, or foreign file is a miss, never an error.  Writes go through a
temporary file and :func:`os.replace`, so concurrent writers (fork
children, socket workers on a shared filesystem) race benignly: last
write wins, readers always see a complete entry.  The ``unfold`` kind is
sharded by the *dependency* fingerprint (the automaton), which is what
makes :func:`invalidate` cheap; ``sweep`` entries have no single
dependency, so invalidation conservatively drops that whole kind.

Entries are trusted input: only point ``REPRO_CACHE_DIR`` at directories
written by processes you trust, as entries are unpickled on read.
"""

from __future__ import annotations

import os
import pickle
import shutil
import sys
import tempfile
from typing import Any, Dict, Optional

from repro.obs import metrics as _metrics
from repro.perf.fingerprint import FINGERPRINT_VERSION

__all__ = [
    "STORE_FORMAT",
    "PersistentStore",
    "active_store",
    "cache_dir",
    "version_tag",
]

#: Bump when the entry layout below changes shape.
STORE_FORMAT = 1

_HITS = _metrics.counter("perf.cache.persistent.hits")
_MISSES = _metrics.counter("perf.cache.persistent.misses")
_WRITES = _metrics.counter("perf.cache.persistent.writes")
_INVALIDATIONS = _metrics.counter("perf.cache.persistent.invalidations")


def cache_dir() -> Optional[str]:
    """The persistent cache directory from ``REPRO_CACHE_DIR``, or None."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return raw or None


def version_tag() -> str:
    """Directory segment isolating incompatible entry formats."""
    return "v{}.{}-py{}.{}".format(
        STORE_FORMAT,
        FINGERPRINT_VERSION,
        sys.version_info[0],
        sys.version_info[1],
    )


def active_store() -> Optional["PersistentStore"]:
    """A store over ``REPRO_CACHE_DIR``, or ``None`` when unset.

    Reads the environment on every call — construction does no I/O, so
    this is cheap enough for memo-boundary checks and means children that
    inherited (or were handed) the variable need no further setup.
    """
    base = cache_dir()
    if base is None:
        return None
    return PersistentStore(base)


class PersistentStore:
    """Content-addressed pickle store under a versioned root.

    All failure modes are soft: unreadable entries are misses, unwritable
    directories make :meth:`put` a no-op.  The store must never be able
    to fail a run that would have succeeded without it.
    """

    __slots__ = ("base", "root")

    def __init__(self, base: str) -> None:
        self.base = base
        self.root = os.path.join(base, version_tag())

    def _path(self, kind: str, key: str, dep: Optional[str]) -> str:
        return os.path.join(self.root, kind, dep or key[:2], key + ".pkl")

    def get(self, kind: str, key: str, dep: Optional[str] = None) -> Any:
        """The stored value for ``(kind, key)``, or ``None`` on any miss."""
        try:
            with open(self._path(kind, key, dep), "rb") as handle:
                entry = pickle.load(handle)
            if (
                not isinstance(entry, dict)
                or entry.get("format") != STORE_FORMAT
                or entry.get("kind") != kind
                or entry.get("key") != key
            ):
                raise ValueError("entry failed validation")
        except Exception:
            _MISSES.inc()
            return None
        _HITS.inc()
        return entry["value"]

    def put(self, kind: str, key: str, value: Any, dep: Optional[str] = None) -> bool:
        """Atomically persist ``value``; best-effort, False on failure."""
        path = self._path(kind, key, dep)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        {
                            "format": STORE_FORMAT,
                            "kind": kind,
                            "key": key,
                            "value": value,
                        },
                        handle,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return False
        _WRITES.inc()
        return True

    def invalidate(self, dep_fp: str) -> None:
        """Drop every entry depending on the fingerprint ``dep_fp``.

        Removes the ``unfold`` shard keyed by the automaton's fingerprint
        and — because sweep entries fold their dependencies into one
        opaque key — conservatively clears the whole ``sweep`` kind.
        """
        shutil.rmtree(os.path.join(self.root, "unfold", dep_fp), ignore_errors=True)
        shutil.rmtree(os.path.join(self.root, "sweep"), ignore_errors=True)
        _INVALIDATIONS.inc()

    def clear(self) -> None:
        """Remove every entry written under the current version tag."""
        shutil.rmtree(self.root, ignore_errors=True)

    def stats(self) -> Dict[str, Any]:
        """Snapshot ``{dir, entries, bytes}`` for ``summary.cache.persistent``."""
        entries = 0
        size = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                entries += 1
                try:
                    size += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    pass
        return {"dir": self.base, "entries": entries, "bytes": size}
