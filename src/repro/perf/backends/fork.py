"""The single-host fork backend (spec ``fork:N``) — PR 3's transport, extracted.

One raw ``os.fork`` child per chunk, length-prefixed pickles over a pipe.
Raw fork (not :mod:`multiprocessing`) because sweeps routinely run *inside*
the crash-isolated experiment children, which are daemonic and cannot have
``multiprocessing`` children of their own.  Children inherit the mapped
function and every captured object through copy-on-write memory, so nothing
but the results ever crosses the pipe.

:func:`run_chunk_in_fork` — fork one child for one chunk and collect its
``(results, metrics snapshot)`` payload — is also the execution primitive
of the socket worker (:mod:`repro.perf.worker`): a worker process forks per
chunk so each chunk gets a zeroed metrics registry and crash isolation for
free.
"""

from __future__ import annotations

import os
import pickle
import struct
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import distributed as _distributed
from repro.obs import log as _obs_log
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf.backends import (
    BackendSpecError,
    Chunk,
    ChunkOutcome,
    ExecutionBackend,
    register_backend,
)

__all__ = ["ForkBackend", "run_chunk_in_fork"]

_FORKS = _counter("perf.parallel.forks")

_LEN = struct.Struct(">Q")


def _write_all(fd: int, payload: bytes) -> None:
    view = memoryview(payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, size: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _chunk_child(
    write_fd: int,
    fn: Callable[[Any], Any],
    chunk: Chunk,
    trace: Optional[bool] = None,
    lane: str = "fork",
    profile: Optional[bool] = None,
    job: Optional[str] = None,
) -> None:
    """Child body: compute the chunk, ship ``(results, metrics, trace,
    profile)`` back.

    Runs under ``os._exit`` discipline — no atexit hooks, no parent test
    harness teardown.  The inherited metrics registry is zeroed and the
    inherited span buffer cleared so the shipped payloads are exactly this
    child's contribution.  ``trace`` overrides the inherited tracer switch
    (``True``/``False``; ``None`` keeps whatever the parent had — the fork
    backend's children inherit the caller's setting through memory, the
    socket worker's children take the caller's wish from the run frame).
    ``profile`` is the same three-way switch for the phase profiler; when
    profiling is (or stays) on, the hook is re-installed post-fork — a
    ``sys.setprofile`` hook does not survive into a forked child's new
    frames reliably, and the accumulated parent totals are not this
    chunk's work either.
    """
    exit_code = 0
    try:
        if job is not None:
            # Socket workers pass the run frame's correlation id down here so
            # the chunk's trace payload comes back job-tagged; fork-backend
            # children inherit the caller's id through memory instead.
            _obs_log.set_correlation(job)
        _metrics.reset()
        _trace.TRACER.clear()  # buffered parent events are not this chunk's work
        if trace is True:
            _trace.TRACER.enable()
        elif trace is False:
            _trace.TRACER.disable()
        if profile is True or (profile is None and _profile.PROFILER.enabled):
            _profile.PROFILER.clear()
            _profile.PROFILER.enable()
        elif profile is False:
            _profile.PROFILER.disable()
        # Chaos hook (tests/CI only): REPRO_CHAOS_FORK arms seeded mid-chunk
        # kill/hang/delay faults so the supervision layer's lost-chunk and
        # deadline paths can be driven deterministically.  Unset, this is
        # one environment lookup per chunk.
        from repro.perf import chaos as _chaos

        fault_plan = _chaos.fork_fault_plan(chunk)
        results: List[Tuple[int, Optional[str], Any]] = []
        with _trace.span("backend.chunk", lane=lane, items=len(chunk)):
            for position, (index, item) in enumerate(chunk):
                if fault_plan is not None and position == fault_plan["at_item"]:
                    _chaos.apply_fork_fault(fault_plan)  # kill/hang never return
                item_span = (
                    _trace.TRACER.span("backend.item", index=index)
                    if _trace.TRACER.enabled
                    else _trace.NULL_SPAN
                )
                try:
                    with item_span:
                        results.append((index, None, fn(item)))
                except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
                    results.append((index, traceback.format_exc(), None))
        profile_payload = _profile.chunk_profile_payload(lane)
        payload = pickle.dumps(
            (
                results,
                _metrics.snapshot(),
                _distributed.chunk_payload(lane),
                profile_payload,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        _write_all(write_fd, _LEN.pack(len(payload)) + payload)
    except BaseException:
        exit_code = 1
    finally:
        try:
            os.close(write_fd)
        except OSError:
            pass
        os._exit(exit_code)


def _collect(read_fd: int, pid: int):
    """Read one child's length-prefixed payload; ``None`` if it died silently."""
    payload: Optional[bytes] = None
    try:
        header = _read_exact(read_fd, _LEN.size)
        if header is not None:
            payload = _read_exact(read_fd, _LEN.unpack(header)[0])
    finally:
        os.close(read_fd)
        os.waitpid(pid, 0)
    if payload is None:
        return None
    return pickle.loads(payload)


def run_chunk_in_fork(
    fn: Callable[[Any], Any],
    chunk: Chunk,
    trace: Optional[bool] = None,
    lane: str = "fork",
    profile: Optional[bool] = None,
    job: Optional[str] = None,
) -> Optional[
    Tuple[
        List[Tuple[int, Optional[str], Any]],
        Dict[str, Any],
        Optional[Dict[str, Any]],
        Optional[Dict[str, Any]],
    ]
]:
    """Execute one chunk in a fresh forked child.

    Returns the child's ``(results, metrics snapshot, trace payload,
    profile payload)``, or ``None`` when the child died without reporting.
    The trace payload is ``None`` unless the child traced (see ``trace`` on
    :func:`_chunk_child`) and carries no clock domain yet — the transport
    that ships it onward stamps ``shared`` or ``remote``.  The profile
    payload is ``None`` unless the child profiled (``profile`` switch, same
    contract); phase totals are durations, so they need no clock domain at
    all.  Requires ``os.fork``.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        _chunk_child(write_fd, fn, chunk, trace=trace, lane=lane, profile=profile, job=job)
        # _chunk_child never returns
    _FORKS.inc()
    os.close(write_fd)
    return _collect(read_fd, pid)


class ForkBackend(ExecutionBackend):
    """One forked child per chunk on the local host."""

    name = "fork"

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = (
            max(1, int(workers)) if workers is not None else (os.cpu_count() or 1)
        )

    @property
    def spec(self) -> str:
        return f"fork:{self._workers}"

    @property
    def parallelism(self) -> int:
        # Without fork support (non-POSIX) the resolved parallelism is 1,
        # which makes parallel_map run serially in the caller instead.
        return self._workers if hasattr(os, "fork") else 1

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> List[ChunkOutcome]:
        # Fork every child first (concurrency), then collect in chunk order.
        children: List[Tuple[int, int]] = []
        for chunk in chunks:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                for other_read, _other_pid in children:
                    try:
                        os.close(other_read)
                    except OSError:
                        pass
                _chunk_child(write_fd, fn, chunk)
                # _chunk_child never returns
            _FORKS.inc()
            os.close(write_fd)
            children.append((read_fd, pid))

        outcomes: List[ChunkOutcome] = []
        for read_fd, pid in children:
            collected = _collect(read_fd, pid)
            if collected is None:
                outcomes.append(
                    ChunkOutcome(results=None, detail="forked child died without reporting")
                )
            else:
                results, snapshot, trace_payload, profile_payload = collected
                if trace_payload is not None:
                    # Same host, same monotonic clock: timestamps need no
                    # offset.  (A receive-time offset would be wrong here —
                    # payloads wait in the pipe while earlier chunks drain.)
                    trace_payload["clock"] = "shared"
                outcomes.append(
                    ChunkOutcome(
                        results=results,
                        metrics=snapshot,
                        trace=trace_payload,
                        profile=profile_payload,
                    )
                )
            _progress.advance()
        return outcomes


def _factory(rest):
    if rest is None or rest == "":
        return ForkBackend()
    try:
        workers = int(rest)
    except ValueError:
        raise BackendSpecError(f"fork worker count must be an integer, got {rest!r}")
    return ForkBackend(workers)


register_backend("fork", _factory)
