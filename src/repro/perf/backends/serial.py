"""The in-process backend (spec ``serial``).

The reference transport: chunks run in the caller's process, one after the
other, metrics land directly in the caller's registry (no snapshot/merge
round-trip).  ``parallel_map`` short-circuits to a plain comprehension when
the resolved parallelism is 1, so this class is mostly exercised when a
caller drives a backend instance directly.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, List, Sequence

from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.perf.backends import Chunk, ChunkOutcome, ExecutionBackend, register_backend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every chunk in the calling process."""

    name = "serial"

    @property
    def spec(self) -> str:
        return "serial"

    @property
    def parallelism(self) -> int:
        return 1

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> List[ChunkOutcome]:
        outcomes: List[ChunkOutcome] = []
        for chunk in chunks:
            results = []
            # Spans land directly in the caller's tracer (no payload needed);
            # the chunk span keeps serial traces shaped like remote ones.
            with _trace.span("backend.chunk", lane="serial", items=len(chunk)):
                for index, item in chunk:
                    try:
                        results.append((index, None, fn(item)))
                    except Exception:  # noqa: BLE001 - shipped like a remote traceback
                        results.append((index, traceback.format_exc(), None))
            # metrics=None: the work already counted in the caller's registry.
            outcomes.append(ChunkOutcome(results=results, metrics=None))
            _progress.advance()
        return outcomes


def _factory(rest):
    if rest:
        from repro.perf.backends import BackendSpecError

        raise BackendSpecError(f"serial takes no parameters, got {rest!r}")
    return SerialBackend()


register_backend("serial", _factory)
