"""The distributed TCP backend (spec ``socket:host:port[,host:port...][;opt=v...]``).

Chunks are pickled (closures included, :mod:`repro.perf.pickling`) and
shipped to a pool of workers started with::

    python -m repro.perf.worker --listen HOST:PORT

one chunk in flight per worker connection, all chunks concurrently across
the pool.  The wire protocol is deliberately small:

* **framing** — every message is an 8-byte big-endian length followed by a
  pickle of a tuple; requests are ``("ping",)`` and
  ``("run", fn_blob, chunk_blob, ctx)`` where ``ctx`` carries the caller's
  trace wish (``{"trace": bool}``), its persistent cache directory when one
  is active (``{"cache_dir": str}``), the active job correlation id when
  one is set (``{"job": str}`` — see :mod:`repro.obs.log`) and, for
  supervised v3 pools, the heartbeat cadence
  (``{"heartbeat_s": float}``); replies are
  ``("pong", info)``, ``("ok", results, metrics_snapshot, trace_payload)``,
  ``("lost", detail)``, ``("fatal", traceback)`` and — protocol v3 —
  ``("hb", seq)`` liveness frames interleaved while a chunk runs.  The
  trace payload (:func:`repro.obs.distributed.chunk_payload` or ``None``)
  rides in the same frame as the results, so a chunk's spans are exactly
  as atomic as its results and metrics;
* **clock alignment** — a worker's monotonic clock is unrelated to the
  caller's, so the caller stamps its own clock the moment the reply frame
  arrives (``recv_ns``) and marks the payload ``clock: "remote"``; the
  merger (:func:`repro.obs.distributed.absorb_chunk_trace`) then offsets
  worker timestamps by ``recv_ns - now_ns``, accurate to one reply-transport
  latency (each chunk has a dedicated receive thread, so the stamp is
  prompt);
* **handshake** — on connect the client pings and verifies the worker's
  protocol version (v3 and v2 workers are both accepted; v2 workers simply
  never heartbeat) and Python ``major.minor`` (marshal'd code objects are
  not portable across interpreter versions; a mismatched pool fails loudly
  at connect, never with a corrupt sweep);
* **deadlines** — the receive path is never unbounded: each reply waits at
  most the per-chunk wall-clock deadline
  (:class:`~repro.perf.supervise.SupervisionPolicy.chunk_deadline_s`,
  default 600 s, ``REPRO_CHUNK_DEADLINE`` / ``;deadline=`` to change,
  ``0``/``off`` to disable), and a supervised v3 worker that stops
  heartbeating is declared dead after a few missed beats — a worker that
  accepts a chunk and never replies can no longer hang a sweep;
* **retry on another worker** — a connection that dies, hangs past its
  deadline, or returns an undecodable frame is marked dead and the chunk
  is resubmitted to the next live worker; chunk results depend only on the
  items, so retries cannot change the sweep outcome.  With supervision on,
  dead endpoints are redialed under seeded-deterministic backoff
  (:func:`repro.perf.supervise.backoff_delay`), repeatedly failing
  endpoints are ejected by a per-worker circuit breaker, and a **poison
  chunk** that kills ``poison_threshold`` distinct workers is quarantined
  (reported lost so ``parallel_map`` recomputes it in the caller) instead
  of cascading through the pool.  With no live workers left the chunk is
  reported lost and ``parallel_map`` recomputes it in the caller;
* **atomic payloads** — a worker ships results and its per-chunk metrics
  snapshot in one frame, so a dead, hung or byzantine worker contributed
  nothing and the retry/fallback path can never double-count metrics.

Workers execute each chunk in a forked child
(:func:`repro.perf.backends.fork.run_chunk_in_fork`), giving every chunk a
zeroed metrics registry, a cold cache, and crash isolation — exactly the
fork backend's semantics, one network hop away.

Security: frames are pickles — run workers only on hosts and networks you
trust, and bind them to loopback or private interfaces.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import log as _obs_log
from repro.obs import profile as _profile
from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf import pickling
from repro.perf.backends import (
    BackendSpecError,
    Chunk,
    ChunkOutcome,
    ExecutionBackend,
    register_backend,
)

__all__ = [
    "ACCEPTED_PROTOCOLS",
    "PROTOCOL_VERSION",
    "BackendProtocolError",
    "FrameError",
    "SocketBackend",
    "parse_addresses",
    "parse_options",
    "parse_socket_spec",
    "recv_frame",
    "send_frame",
    "worker_info",
]

PROTOCOL_VERSION = 3  # v3: heartbeat frames while a chunk runs
#: Protocol versions this client can drive (v2 workers never heartbeat, so
#: only the chunk deadline bounds their silence).
ACCEPTED_PROTOCOLS = (2, 3)

#: A frame longer than this is treated as garbage, not allocated.
MAX_FRAME_BYTES = 1 << 30

_CHUNKS = _counter("perf.parallel.socket.chunks")
_RETRIES = _counter("perf.parallel.socket.retries")
_DEAD = _counter("perf.parallel.socket.dead_workers")
_HEARTBEATS = _counter("perf.supervise.heartbeats")
_DEADLINE_MISSES = _counter("perf.supervise.deadline_misses")
_RECONNECT_ATTEMPTS = _counter("perf.supervise.reconnect_attempts")
_RECONNECTS = _counter("perf.supervise.reconnects")
_BREAKER_OPENS = _counter("perf.supervise.breaker_opens")
_QUARANTINED = _counter("perf.supervise.quarantined_chunks")

_LEN = struct.Struct(">Q")


def _supervision():
    # Deferred: repro.perf.supervise subclasses SocketBackend, so importing
    # it at this module's top would be circular.
    from repro.perf import supervise

    return supervise


class BackendProtocolError(RuntimeError):
    """A worker speaks a different protocol or interpreter version."""


class FrameError(RuntimeError):
    """A frame arrived but its payload is not a well-formed message —
    a byzantine peer (truncated or garbage bytes), not a dead one."""


class _DeadlineExceeded(RuntimeError):
    """The per-chunk wall-clock deadline or heartbeat window elapsed."""


def worker_info() -> Dict[str, Any]:
    """The handshake payload both sides compare."""
    return {
        "protocol": PROTOCOL_VERSION,
        "python": "{}.{}".format(*sys.version_info[:2]),
    }


def send_frame(sock: socket.socket, message: Tuple[Any, ...]) -> None:
    """Ship one length-prefixed message (closure-capable pickling)."""
    payload = pickling.dumps(message)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[Any, ...]:
    """Read one length-prefixed message.

    Raises ``EOFError`` on a closed peer and :class:`FrameError` when the
    peer is alive but byzantine — the frame's length is absurd or its
    payload does not unpickle (truncated or corrupted bytes).
    """
    header = _recv_exact(sock, _LEN.size)
    (size,) = _LEN.unpack(header)
    if size > MAX_FRAME_BYTES:
        raise FrameError(f"frame header claims {size} bytes (>{MAX_FRAME_BYTES})")
    payload = _recv_exact(sock, size)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is byzantine
        raise FrameError(f"frame payload does not unpickle: {exc!r}")


def parse_addresses(rest: Optional[str]) -> List[Tuple[str, int]]:
    """Parse ``host:port[,host:port...]`` (the address part of the spec)."""
    if not rest:
        raise BackendSpecError(
            "socket spec needs at least one host:port, e.g. socket:127.0.0.1:9001"
        )
    addresses: List[Tuple[str, int]] = []
    for entry in rest.split(","):
        entry = entry.strip()
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise BackendSpecError(f"socket address {entry!r} is not host:port")
        try:
            port = int(port_text)
        except ValueError:
            raise BackendSpecError(f"socket port in {entry!r} is not an integer")
        addresses.append((host, port))
    return addresses


def parse_options(text: Optional[str]) -> Dict[str, str]:
    """Parse ``key=value[;key=value...]`` backend-spec options."""
    options: Dict[str, str] = {}
    if not text:
        return options
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        key, sep, value = entry.partition("=")
        if not sep or not key.strip():
            raise BackendSpecError(f"backend option {entry!r} is not key=value")
        options[key.strip()] = value.strip()
    return options


def parse_socket_spec(rest: Optional[str]) -> Tuple[List[Tuple[str, int]], Dict[str, str]]:
    """Split a ``socket:`` spec body into addresses and supervision options
    (``host:port,host:port;deadline=30;supervise=on``)."""
    if not rest:
        return parse_addresses(rest), {}
    address_text, _, option_text = rest.partition(";")
    return parse_addresses(address_text.strip()), parse_options(option_text)


class _WorkerConnection:
    """One worker endpoint: its address, live socket (if any), a lock
    serializing the send/receive round-trip of a chunk, and the endpoint's
    supervision state (negotiated protocol, circuit breaker, next allowed
    reconnect time)."""

    __slots__ = (
        "index",
        "address",
        "sock",
        "alive",
        "attempted",
        "lock",
        "protocol",
        "breaker",
        "next_attempt_at",
    )

    def __init__(self, index: int, address: Tuple[str, int], breaker) -> None:
        self.index = index
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.attempted = False
        self.lock = threading.Lock()
        self.protocol = PROTOCOL_VERSION
        self.breaker = breaker
        self.next_attempt_at = 0.0


class SocketBackend(ExecutionBackend):
    """Fan chunks over a TCP worker pool, under a supervision policy."""

    name = "socket"
    remote = True  # a one-worker pool still offloads (don't run in-caller)

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        options: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not addresses:
            raise BackendSpecError("socket backend needs at least one worker address")
        supervise = _supervision()
        self._options = dict(options or {})
        self._policy = supervise.SupervisionPolicy.from_env(self._options)
        self._log = supervise.SupervisionLog()
        self._connections = [
            _WorkerConnection(
                index,
                tuple(address),
                supervise.CircuitBreaker(
                    self._policy.breaker_threshold, self._policy.breaker_cooldown_s
                ),
            )
            for index, address in enumerate(addresses)
        ]
        self._pool_lock = threading.Lock()

    def _options_suffix(self) -> str:
        return "".join(f";{k}={v}" for k, v in sorted(self._options.items()))

    @property
    def spec(self) -> str:
        addresses = ",".join(f"{h}:{p}" for h, p in self.addresses)
        return f"socket:{addresses}" + self._options_suffix()

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [c.address for c in self._connections]

    @property
    def parallelism(self) -> int:
        return len(self._connections)

    @property
    def policy(self):
        """The resolved :class:`~repro.perf.supervise.SupervisionPolicy`."""
        return self._policy

    @property
    def supervision_log(self):
        """The backend's :class:`~repro.perf.supervise.SupervisionLog`."""
        return self._log

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["addresses"] = [f"{h}:{p}" for h, p in self.addresses]
        info["supervised"] = self._policy.enabled
        info["chunk_deadline_s"] = self._policy.chunk_deadline_s
        return info

    # -- connection management -------------------------------------------------

    def _worker_key(self, conn: _WorkerConnection) -> str:
        # Backoff schedules are keyed by pool slot, not host:port: a
        # respawned pool worker changes its port but keeps its slot, so the
        # supervision log stays a pure function of the seed and the
        # failure sequence.
        return f"worker{conn.index}"

    def _note_failure(self, conn: _WorkerConnection, at: str) -> None:
        """Shared failure bookkeeping: breaker, backoff schedule, log."""
        opened = conn.breaker.record_failure()
        attempt = conn.breaker.failures - 1
        delay = _supervision().backoff_delay(self._policy, self._worker_key(conn), attempt)
        conn.next_attempt_at = time.monotonic() + delay
        self._log.record(
            "backoff",
            worker=self._worker_key(conn),
            attempt=attempt,
            delay_s=round(delay, 9),
            at=at,
        )
        if opened:
            _BREAKER_OPENS.inc()
            _trace.instant(
                "supervise.breaker_open",
                worker="{}:{}".format(*conn.address),
                failures=conn.breaker.failures,
            )
            self._log.record(
                "breaker_open",
                worker=self._worker_key(conn),
                failures=conn.breaker.failures,
            )

    def _connect_one(self, conn: _WorkerConnection) -> bool:
        conn.attempted = True
        try:
            sock = socket.create_connection(
                conn.address, timeout=self._policy.connect_timeout_s
            )
        except OSError:
            _DEAD.inc()
            _trace.instant(
                "backend.worker_dead", worker="{}:{}".format(*conn.address), at="connect"
            )
            self._note_failure(conn, at="connect")
            return False
        try:
            sock.settimeout(self._policy.connect_timeout_s)
            send_frame(sock, ("ping",))
            reply = recv_frame(sock)
        except (OSError, EOFError, FrameError):
            sock.close()
            _DEAD.inc()
            _trace.instant(
                "backend.worker_dead", worker="{}:{}".format(*conn.address), at="handshake"
            )
            self._note_failure(conn, at="handshake")
            return False
        if not (isinstance(reply, tuple) and reply and reply[0] == "pong"):
            sock.close()
            raise BackendProtocolError(
                f"worker {conn.address} sent {reply!r} instead of a pong"
            )
        info = reply[1] if len(reply) > 1 else {}
        mine = worker_info()
        if (
            info.get("protocol") not in ACCEPTED_PROTOCOLS
            or info.get("python") != mine["python"]
        ):
            sock.close()
            raise BackendProtocolError(
                f"worker {conn.address} is incompatible: it runs "
                f"protocol {info.get('protocol')!r} on Python {info.get('python')!r}, "
                f"this client accepts protocols {ACCEPTED_PROTOCOLS} on Python {mine['python']!r}"
            )
        sock.settimeout(self._policy.connect_timeout_s)
        conn.protocol = int(info["protocol"])
        conn.sock = sock
        conn.alive = True
        conn.breaker.record_success()
        self._log.record(
            "connected", worker=self._worker_key(conn), protocol=conn.protocol
        )
        return True

    def _ensure_connected(self) -> None:
        with self._pool_lock:
            for conn in self._connections:
                if not conn.attempted:
                    self._connect_one(conn)

    def _mark_dead(self, conn: _WorkerConnection, at: str = "chunk") -> None:
        with self._pool_lock:
            if conn.alive:
                conn.alive = False
                _DEAD.inc()
                _trace.instant(
                    "backend.worker_dead", worker="{}:{}".format(*conn.address), at=at
                )
                self._note_failure(conn, at=at)
            if conn.sock is not None:
                # shutdown() before close(): close alone neither wakes a
                # sibling chunk thread blocked in recv() on this socket nor
                # sends a FIN while that syscall pins the file description.
                try:
                    conn.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.sock.close()
                except OSError:
                    pass
                conn.sock = None

    def _pick(self, chunk_index: int) -> Optional[_WorkerConnection]:
        with self._pool_lock:
            live = [c for c in self._connections if c.alive]
            if not live:
                return None
            return live[chunk_index % len(live)]

    # -- revival ---------------------------------------------------------------

    def _prepare_revival(self, conn: _WorkerConnection) -> bool:
        """Hook for subclasses that own their workers (respawn); the plain
        socket backend has nothing to prepare.  False ends revival for
        ``conn`` (nothing left to dial)."""
        return True

    def _revive(self, *, blocking: bool) -> bool:
        """Redial dead endpoints under the backoff schedule; True when at
        least one worker is live afterwards.  Non-blocking passes only dial
        endpoints whose backoff delay has elapsed and whose breaker admits
        a trial; a blocking pass (a starved chunk) waits the schedule out
        for up to ``max_reconnect_attempts`` rounds."""
        if not self._policy.enabled:
            with self._pool_lock:
                return any(c.alive for c in self._connections)
        rounds = max(1, self._policy.max_reconnect_attempts) if blocking else 1
        for _round in range(rounds):
            with self._pool_lock:
                if any(c.alive for c in self._connections):
                    return True
                dead = [c for c in self._connections if not c.alive]
            candidates = [c for c in dead if c.breaker.allow()]
            if not candidates:
                if not blocking:
                    return False
                # Everything is breaker-ejected: wait out the shortest
                # cooldown once rather than spinning.
                soonest = min(
                    (c.breaker.cooldown_s for c in dead), default=self._policy.breaker_cooldown_s
                )
                time.sleep(min(soonest, self._policy.backoff_max_s))
                candidates = [c for c in dead if c.breaker.allow()]
            for conn in candidates:
                wait = conn.next_attempt_at - time.monotonic()
                if wait > 0:
                    if not blocking:
                        continue
                    time.sleep(min(wait, self._policy.backoff_max_s))
                if not self._prepare_revival(conn):
                    continue
                _RECONNECT_ATTEMPTS.inc()
                with self._pool_lock:
                    if conn.alive:
                        continue
                    revived = self._connect_one(conn)
                if revived:
                    _RECONNECTS.inc()
                    _trace.instant(
                        "supervise.reconnect", worker="{}:{}".format(*conn.address)
                    )
        with self._pool_lock:
            return any(c.alive for c in self._connections)

    # -- the submission path ---------------------------------------------------

    def _receive_reply(self, conn: _WorkerConnection) -> Tuple[Any, int]:
        """Read frames until a non-heartbeat reply arrives, under both the
        per-frame silence window and the total chunk deadline."""
        deadline = self._policy.chunk_deadline_s
        frame_timeout = self._policy.frame_timeout_s(conn.protocol)
        started = time.monotonic()
        while True:
            timeout = frame_timeout
            if deadline is not None:
                remaining = deadline - (time.monotonic() - started)
                if remaining <= 0:
                    raise _DeadlineExceeded(
                        f"no reply within the {deadline:.6g}s chunk deadline"
                    )
                timeout = remaining if timeout is None else min(timeout, remaining)
            conn.sock.settimeout(timeout)
            try:
                reply = recv_frame(conn.sock)
                recv_ns = time.perf_counter_ns()  # clock-alignment stamp
            except socket.timeout:
                if timeout == frame_timeout and (deadline is None or timeout < deadline):
                    raise _DeadlineExceeded(
                        f"{timeout:.6g}s of silence (missed heartbeats)"
                    )
                raise _DeadlineExceeded(
                    f"no reply within the {deadline:.6g}s chunk deadline"
                )
            if isinstance(reply, tuple) and reply and reply[0] == "hb":
                _HEARTBEATS.inc()
                continue
            return reply, recv_ns

    def _quarantine(self, chunk_index: int, killers: set) -> ChunkOutcome:
        _QUARANTINED.inc()
        workers = sorted("{}:{}".format(*address) for address in killers)
        _trace.instant(
            "supervise.quarantine", chunk=chunk_index, workers=", ".join(workers)
        )
        self._log.record("quarantine", chunk=chunk_index, killed=len(killers))
        return ChunkOutcome(
            results=None,
            detail=(
                f"poison chunk quarantined after killing {len(killers)} "
                f"workers ({', '.join(workers)})"
            ),
            quarantined=True,
        )

    def _run_chunk(
        self,
        fn_blob: bytes,
        chunk: Chunk,
        chunk_index: int,
        outcomes: List[Optional[ChunkOutcome]],
    ) -> None:
        _CHUNKS.inc()
        chunk_blob = pickling.dumps(list(chunk))
        killers: set = set()
        while True:
            conn = self._pick(chunk_index)
            if conn is None:
                if self._revive(blocking=True):
                    continue
                outcomes[chunk_index] = ChunkOutcome(
                    results=None, detail="no live socket workers"
                )
                _progress.advance()
                return
            ctx: Dict[str, Any] = {
                "trace": _trace.TRACER.enabled,
                "profile": _profile.PROFILER.enabled,
            }
            job = _obs_log.correlation()
            if job is not None:
                # Workers are fresh interpreters (possibly other hosts), so
                # the correlation id rides the run frame instead of the
                # environment; the worker re-installs it around the chunk.
                ctx["job"] = job
            cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
            if cache_dir:
                # Ship the caller's persistent cache directory; meaningful
                # for loopback pools and shared filesystems.  A worker with
                # its own --cache-dir (or inherited env) ignores it.
                ctx["cache_dir"] = cache_dir
            if self._policy.enabled and conn.protocol >= 3:
                ctx["heartbeat_s"] = self._policy.heartbeat_s
            try:
                with conn.lock:
                    sock = conn.sock
                    if sock is None or not conn.alive:
                        continue  # died while we waited for the round-trip lock
                    sock.settimeout(self._policy.connect_timeout_s)  # bound the send
                    send_frame(sock, ("run", fn_blob, chunk_blob, ctx))
                    reply, recv_ns = self._receive_reply(conn)
            except _DeadlineExceeded as exc:
                # Hung or overloaded worker: the socket holds a half-read
                # conversation, so the connection is unusable — declare the
                # worker dead and retry the whole chunk elsewhere.  Nothing
                # arrived, so nothing can be double-counted.
                _DEADLINE_MISSES.inc()
                _trace.instant(
                    "supervise.heartbeat_miss",
                    chunk=chunk_index,
                    worker="{}:{}".format(*conn.address),
                    detail=str(exc),
                )
                killers.add(conn.address)
                self._mark_dead(conn, at="deadline")
                _RETRIES.inc()
                _trace.instant(
                    "backend.retry",
                    chunk=chunk_index,
                    worker="{}:{}".format(*conn.address),
                    why="deadline",
                )
                self._log.record(
                    "retry", worker=self._worker_key(conn), chunk=chunk_index, why="deadline"
                )
            except FrameError:
                # Byzantine worker: a frame arrived but its bytes are
                # garbage.  The stream offset is unknowable now, so the
                # connection is unusable — same recovery as a dead one.
                killers.add(conn.address)
                self._mark_dead(conn, at="garbage")
                _RETRIES.inc()
                _trace.instant(
                    "backend.retry",
                    chunk=chunk_index,
                    worker="{}:{}".format(*conn.address),
                    why="garbage",
                )
                self._log.record(
                    "retry", worker=self._worker_key(conn), chunk=chunk_index, why="garbage"
                )
            except (OSError, EOFError):
                # Dead connection: retry the whole chunk on another worker.
                # Results depend only on the items, so this cannot change
                # the sweep outcome; the dead worker's payload never
                # arrived, so nothing can be double-counted.
                killers.add(conn.address)
                self._mark_dead(conn)
                _RETRIES.inc()
                _trace.instant(
                    "backend.retry",
                    chunk=chunk_index,
                    worker="{}:{}".format(*conn.address),
                    why="dead",
                )
                self._log.record(
                    "retry", worker=self._worker_key(conn), chunk=chunk_index, why="dead"
                )
            else:
                if not (isinstance(reply, tuple) and reply and isinstance(reply[0], str)):
                    killers.add(conn.address)
                    self._mark_dead(conn, at="protocol")
                    _RETRIES.inc()
                    _trace.instant(
                        "backend.retry",
                        chunk=chunk_index,
                        worker="{}:{}".format(*conn.address),
                        why="protocol",
                    )
                    self._log.record(
                        "retry",
                        worker=self._worker_key(conn),
                        chunk=chunk_index,
                        why="protocol",
                    )
                elif reply[0] == "ok":
                    trace_payload = reply[3] if len(reply) > 3 else None
                    if trace_payload is not None:
                        trace_payload["clock"] = "remote"
                        trace_payload["recv_ns"] = recv_ns
                        trace_payload["lane"] = "worker {}:{}".format(*conn.address)
                    # Older workers send 4-element ok-frames (no profile
                    # slot) — absent means "did not profile", not an error.
                    profile_payload = reply[4] if len(reply) > 4 else None
                    if profile_payload is not None:
                        profile_payload["lane"] = "worker {}:{}".format(*conn.address)
                    outcomes[chunk_index] = ChunkOutcome(
                        results=reply[1],
                        metrics=reply[2],
                        trace=trace_payload,
                        profile=profile_payload,
                    )
                    _progress.advance()
                    return
                else:  # "lost" (worker's chunk child died) or "fatal" (bad payload)
                    outcomes[chunk_index] = ChunkOutcome(
                        results=None, detail=str(reply[1]) if len(reply) > 1 else reply[0]
                    )
                    _progress.advance()
                    return
            # A worker just failed this chunk.  A chunk that keeps killing
            # its hosts is poison: quarantine it instead of feeding it the
            # rest of the pool.
            if self._policy.enabled and len(killers) >= self._policy.poison_threshold:
                outcomes[chunk_index] = self._quarantine(chunk_index, killers)
                _progress.advance()
                return

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> List[ChunkOutcome]:
        self._ensure_connected()
        fn_blob = pickling.dumps(fn)
        outcomes: List[Optional[ChunkOutcome]] = [None] * len(chunks)
        threads = [
            threading.Thread(
                target=self._run_chunk, args=(fn_blob, chunk, index, outcomes), daemon=True
            )
            for index, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [
            outcome
            if outcome is not None
            else ChunkOutcome(results=None, detail="chunk thread died")
            for outcome in outcomes
        ]

    def close(self) -> None:
        with self._pool_lock:
            for conn in self._connections:
                if conn.sock is not None:
                    try:
                        conn.sock.close()
                    except OSError:
                        pass
                    conn.sock = None
                conn.alive = False


def _factory(rest):
    addresses, options = parse_socket_spec(rest)
    return SocketBackend(addresses, options=options)


register_backend("socket", _factory)
