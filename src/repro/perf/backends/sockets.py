"""The distributed TCP backend (spec ``socket:host:port[,host:port...]``).

Chunks are pickled (closures included, :mod:`repro.perf.pickling`) and
shipped to a pool of workers started with::

    python -m repro.perf.worker --listen HOST:PORT

one chunk in flight per worker connection, all chunks concurrently across
the pool.  The wire protocol is deliberately small:

* **framing** — every message is an 8-byte big-endian length followed by a
  pickle of a tuple; requests are ``("ping",)`` and
  ``("run", fn_blob, chunk_blob, ctx)`` where ``ctx`` is the trace context
  (currently ``{"trace": bool}`` — the caller's wish that the chunk record
  spans); replies are ``("pong", info)``,
  ``("ok", results, metrics_snapshot, trace_payload)``, ``("lost", detail)``
  and ``("fatal", traceback)``.  The trace payload
  (:func:`repro.obs.distributed.chunk_payload` or ``None``) rides in the
  same frame as the results, so a chunk's spans are exactly as atomic as
  its results and metrics;
* **clock alignment** — a worker's monotonic clock is unrelated to the
  caller's, so the caller stamps its own clock the moment the reply frame
  arrives (``recv_ns``) and marks the payload ``clock: "remote"``; the
  merger (:func:`repro.obs.distributed.absorb_chunk_trace`) then offsets
  worker timestamps by ``recv_ns - now_ns``, accurate to one reply-transport
  latency (each chunk has a dedicated receive thread, so the stamp is
  prompt);
* **handshake** — on connect the client pings and verifies the worker's
  protocol version and Python ``major.minor`` (marshal'd code objects are
  not portable across interpreter versions; a mismatched pool fails loudly
  at connect, never with a corrupt sweep);
* **retry on another worker** — a connection that dies mid-chunk (send or
  receive fails) is marked dead and the chunk is resubmitted to the next
  live worker; chunk results depend only on the items, so retries cannot
  change the sweep outcome.  With no live workers left the chunk is
  reported lost and ``parallel_map`` recomputes it in the caller;
* **atomic payloads** — a worker ships results and its per-chunk metrics
  snapshot in one frame, so a dead worker contributed nothing and the
  retry/fallback path can never double-count metrics.

Workers execute each chunk in a forked child
(:func:`repro.perf.backends.fork.run_chunk_in_fork`), giving every chunk a
zeroed metrics registry, a cold cache, and crash isolation — exactly the
fork backend's semantics, one network hop away.

Security: frames are pickles — run workers only on hosts and networks you
trust, and bind them to loopback or private interfaces.
"""

from __future__ import annotations

import pickle
import socket
import struct
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf import pickling
from repro.perf.backends import (
    BackendSpecError,
    Chunk,
    ChunkOutcome,
    ExecutionBackend,
    register_backend,
)

__all__ = [
    "PROTOCOL_VERSION",
    "BackendProtocolError",
    "SocketBackend",
    "parse_addresses",
    "recv_frame",
    "send_frame",
    "worker_info",
]

PROTOCOL_VERSION = 2  # v2: run frames carry a trace ctx, ok replies a trace payload

#: Seconds allowed for connect + handshake (chunk execution is unbounded).
CONNECT_TIMEOUT = 10.0

_CHUNKS = _counter("perf.parallel.socket.chunks")
_RETRIES = _counter("perf.parallel.socket.retries")
_DEAD = _counter("perf.parallel.socket.dead_workers")

_LEN = struct.Struct(">Q")


class BackendProtocolError(RuntimeError):
    """A worker speaks a different protocol or interpreter version."""


def worker_info() -> Dict[str, Any]:
    """The handshake payload both sides compare."""
    return {
        "protocol": PROTOCOL_VERSION,
        "python": "{}.{}".format(*sys.version_info[:2]),
    }


def send_frame(sock: socket.socket, message: Tuple[Any, ...]) -> None:
    """Ship one length-prefixed message (closure-capable pickling)."""
    payload = pickling.dumps(message)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[Any, ...]:
    """Read one length-prefixed message (raises ``EOFError`` on a closed peer)."""
    header = _recv_exact(sock, _LEN.size)
    return pickle.loads(_recv_exact(sock, _LEN.unpack(header)[0]))


def parse_addresses(rest: Optional[str]) -> List[Tuple[str, int]]:
    """Parse ``host:port[,host:port...]`` (the text after ``socket:``)."""
    if not rest:
        raise BackendSpecError(
            "socket spec needs at least one host:port, e.g. socket:127.0.0.1:9001"
        )
    addresses: List[Tuple[str, int]] = []
    for entry in rest.split(","):
        entry = entry.strip()
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise BackendSpecError(f"socket address {entry!r} is not host:port")
        try:
            port = int(port_text)
        except ValueError:
            raise BackendSpecError(f"socket port in {entry!r} is not an integer")
        addresses.append((host, port))
    return addresses


class _WorkerConnection:
    """One worker endpoint: its address, live socket (if any), and a lock
    serializing the send/receive round-trip of a chunk."""

    __slots__ = ("address", "sock", "alive", "attempted", "lock")

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.attempted = False
        self.lock = threading.Lock()


class SocketBackend(ExecutionBackend):
    """Fan chunks over a TCP worker pool."""

    name = "socket"
    remote = True  # a one-worker pool still offloads (don't run in-caller)

    def __init__(self, addresses: Sequence[Tuple[str, int]]) -> None:
        if not addresses:
            raise BackendSpecError("socket backend needs at least one worker address")
        self._connections = [_WorkerConnection(tuple(a)) for a in addresses]
        self._pool_lock = threading.Lock()

    @property
    def spec(self) -> str:
        return "socket:" + ",".join(f"{h}:{p}" for h, p in self.addresses)

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [c.address for c in self._connections]

    @property
    def parallelism(self) -> int:
        return len(self._connections)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["addresses"] = [f"{h}:{p}" for h, p in self.addresses]
        return info

    # -- connection management -------------------------------------------------

    def _connect_one(self, conn: _WorkerConnection) -> None:
        conn.attempted = True
        try:
            sock = socket.create_connection(conn.address, timeout=CONNECT_TIMEOUT)
        except OSError:
            _DEAD.inc()
            _trace.instant(
                "backend.worker_dead", worker="{}:{}".format(*conn.address), at="connect"
            )
            return
        try:
            send_frame(sock, ("ping",))
            reply = recv_frame(sock)
        except (OSError, EOFError):
            sock.close()
            _DEAD.inc()
            _trace.instant(
                "backend.worker_dead", worker="{}:{}".format(*conn.address), at="handshake"
            )
            return
        if not (isinstance(reply, tuple) and reply and reply[0] == "pong"):
            sock.close()
            raise BackendProtocolError(
                f"worker {conn.address} sent {reply!r} instead of a pong"
            )
        info = reply[1] if len(reply) > 1 else {}
        mine = worker_info()
        if info.get("protocol") != mine["protocol"] or info.get("python") != mine["python"]:
            sock.close()
            raise BackendProtocolError(
                f"worker {conn.address} is incompatible: it runs "
                f"protocol {info.get('protocol')!r} on Python {info.get('python')!r}, "
                f"this client runs protocol {mine['protocol']!r} on Python {mine['python']!r}"
            )
        sock.settimeout(None)
        conn.sock = sock
        conn.alive = True

    def _ensure_connected(self) -> None:
        with self._pool_lock:
            for conn in self._connections:
                if not conn.attempted:
                    self._connect_one(conn)

    def _mark_dead(self, conn: _WorkerConnection) -> None:
        with self._pool_lock:
            if conn.alive:
                conn.alive = False
                _DEAD.inc()
                _trace.instant(
                    "backend.worker_dead", worker="{}:{}".format(*conn.address)
                )
            if conn.sock is not None:
                try:
                    conn.sock.close()
                except OSError:
                    pass
                conn.sock = None

    def _pick(self, chunk_index: int) -> Optional[_WorkerConnection]:
        with self._pool_lock:
            live = [c for c in self._connections if c.alive]
            if not live:
                return None
            return live[chunk_index % len(live)]

    # -- the submission path ---------------------------------------------------

    def _run_chunk(
        self,
        fn_blob: bytes,
        chunk: Chunk,
        chunk_index: int,
        outcomes: List[Optional[ChunkOutcome]],
    ) -> None:
        _CHUNKS.inc()
        chunk_blob = pickling.dumps(list(chunk))
        ctx = {"trace": _trace.TRACER.enabled}
        while True:
            conn = self._pick(chunk_index)
            if conn is None:
                outcomes[chunk_index] = ChunkOutcome(
                    results=None, detail="no live socket workers"
                )
                _progress.advance()
                return
            try:
                with conn.lock:
                    send_frame(conn.sock, ("run", fn_blob, chunk_blob, ctx))
                    reply = recv_frame(conn.sock)
                    recv_ns = time.perf_counter_ns()  # clock-alignment stamp
            except (OSError, EOFError):
                # Dead connection: retry the whole chunk on another worker.
                # Results depend only on the items, so this cannot change
                # the sweep outcome; the dead worker's payload never
                # arrived, so nothing can be double-counted.
                self._mark_dead(conn)
                _RETRIES.inc()
                _trace.instant(
                    "backend.retry",
                    chunk=chunk_index,
                    worker="{}:{}".format(*conn.address),
                )
                continue
            kind = reply[0]
            if kind == "ok":
                trace_payload = reply[3] if len(reply) > 3 else None
                if trace_payload is not None:
                    trace_payload["clock"] = "remote"
                    trace_payload["recv_ns"] = recv_ns
                    trace_payload["lane"] = "worker {}:{}".format(*conn.address)
                outcomes[chunk_index] = ChunkOutcome(
                    results=reply[1], metrics=reply[2], trace=trace_payload
                )
            else:  # "lost" (worker's chunk child died) or "fatal" (bad payload)
                outcomes[chunk_index] = ChunkOutcome(results=None, detail=str(reply[1]))
            _progress.advance()
            return

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> List[ChunkOutcome]:
        self._ensure_connected()
        fn_blob = pickling.dumps(fn)
        outcomes: List[Optional[ChunkOutcome]] = [None] * len(chunks)
        threads = [
            threading.Thread(
                target=self._run_chunk, args=(fn_blob, chunk, index, outcomes), daemon=True
            )
            for index, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [
            outcome
            if outcome is not None
            else ChunkOutcome(results=None, detail="chunk thread died")
            for outcome in outcomes
        ]

    def close(self) -> None:
        with self._pool_lock:
            for conn in self._connections:
                if conn.sock is not None:
                    try:
                        conn.sock.close()
                    except OSError:
                        pass
                    conn.sock = None
                conn.alive = False


def _factory(rest):
    return SocketBackend(parse_addresses(rest))


register_backend("socket", _factory)
