"""Pluggable execution backends for ``repro.perf.parallel_map``.

PR 3 established that the sweep contract — deterministic round-robin
partitioning by item index, in-order reassembly, fork-boundary metrics
merging, lowest-index error propagation — is independent of *where* the
chunks actually execute.  This package makes that explicit: transports are
:class:`ExecutionBackend` implementations behind a registry, and
``parallel_map`` is a thin front-end that partitions, submits, merges and
re-raises identically for every backend.  Three transports ship:

* ``serial`` — in-process, no partitioning overhead (the default);
* ``fork`` — one ``os.fork`` child per chunk on the local host
  (:class:`~repro.perf.backends.fork.ForkBackend`, PR 3's transport,
  extracted);
* ``socket`` — chunks pickled to a TCP worker pool
  (:class:`~repro.perf.backends.sockets.SocketBackend`; stand workers up
  with ``python -m repro.perf.worker --listen HOST:PORT``);
* ``pool`` — a supervised loopback pool that launches (and respawns) its
  own worker subprocesses (:class:`~repro.perf.supervise.LocalPoolBackend`).

Backend specs
-------------
A backend is named by a **spec string**::

    serial                                  # in-process
    fork            # one chunk per CPU     # fork:<os.cpu_count()>
    fork:4                                  # 4 forked chunks
    socket:host1:9001,host2:9001            # TCP worker pool, one chunk per worker
    socket:host1:9001;deadline=30;supervise=on   # ;key=value supervision options
    pool:4                                  # 4 self-launched loopback workers

Resolution order for the process-wide default:
:func:`configure_backend` argument, else the ``REPRO_BACKEND`` environment
variable, else ``serial``.

Fork hygiene
------------
Backend instances may hold live connections, so they are **per-process**:
:func:`get_backend` rebuilds the active backend whenever the caller's pid
differs from the pid that built it (a forked experiment child must open its
own connections, never reuse the parent's).  The inherited instance is
abandoned, not closed — its file descriptors are shared with the parent.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "BackendSpecError",
    "ChunkOutcome",
    "ExecutionBackend",
    "configure_backend",
    "current_spec",
    "get_backend",
    "make_backend",
    "normalize_spec",
    "register_backend",
]

#: One work chunk: ``(original item index, item)`` pairs.
Chunk = Sequence[Tuple[int, Any]]


class BackendSpecError(ValueError):
    """A backend spec string could not be parsed or names no registered backend."""


@dataclass
class ChunkOutcome:
    """What a backend reports for one submitted chunk.

    ``results`` holds ``(index, error_traceback_or_None, value)`` per item,
    or ``None`` when the chunk was **lost** (its executor died without
    reporting) — ``parallel_map`` then recomputes the chunk in the caller.
    ``metrics`` is the executor's :func:`repro.obs.metrics.snapshot` delta
    for the chunk (``None`` when the work ran in the caller's own registry,
    or when the chunk was lost).  ``trace`` is the executor's span payload
    (:func:`repro.obs.distributed.chunk_payload`, clock-stamped by the
    transport; ``None`` when tracing is off, the chunk ran in-process, or
    the chunk was lost).  ``profile`` is the executor's phase-profile
    payload (:func:`repro.obs.profile.chunk_profile_payload`; ``None``
    when profiling is off, the chunk ran in-process, or the chunk was
    lost — phase totals are durations, so unlike ``trace`` they carry no
    clock domain).  Result payloads are atomic: a lost chunk contributed
    *nothing* — no results, no metrics, no spans and no phase totals — so
    the caller-side recompute can never double-count.  ``quarantined``
    marks the special lost case where supervision ejected a **poison
    chunk** (one that killed several distinct workers) rather than losing
    its executor.
    """

    results: Optional[List[Tuple[int, Optional[str], Any]]]
    metrics: Optional[Dict[str, Any]] = None
    detail: Optional[str] = None
    trace: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None
    quarantined: bool = False

    @property
    def lost(self) -> bool:
        return self.results is None


class ExecutionBackend(ABC):
    """Where ``parallel_map`` chunks execute.

    Implementations own only the *transport*; partitioning, in-order
    reassembly, metrics merging, lost-chunk fallback and error propagation
    live in :func:`repro.perf.parallel.parallel_map` and are identical for
    every backend — that is the redesigned contract.
    """

    #: registry name ("serial", "fork", "socket", ...)
    name: str = "?"

    #: True when chunks leave the caller's machine/process *by design*
    #: (``parallel_map`` then ships even a single chunk instead of running
    #: it in the caller — a one-worker pool still offloads).
    remote: bool = False

    @property
    @abstractmethod
    def spec(self) -> str:
        """The normalized spec string this backend was built from."""

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """How many chunks a sweep should be partitioned into (>= 1)."""

    @abstractmethod
    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> List[ChunkOutcome]:
        """Execute every chunk; return one :class:`ChunkOutcome` per chunk,
        aligned with ``chunks``.  Must not raise for per-item ``fn``
        failures (ship the traceback in the outcome) nor for dead executors
        (report the chunk as lost)."""

    def close(self) -> None:
        """Release transport resources (idempotent; default: nothing)."""

    def describe(self) -> Dict[str, Any]:
        """Static JSON-safe description (lands in run-report summaries)."""
        return {"name": self.name, "spec": self.spec, "parallelism": self.parallelism}


# -- spec parsing and the registry ---------------------------------------------

#: name -> factory(rest-of-spec or None) -> ExecutionBackend
_FACTORIES: Dict[str, Callable[[Optional[str]], "ExecutionBackend"]] = {}


def register_backend(name: str, factory: Callable[[Optional[str]], "ExecutionBackend"]) -> None:
    """Register ``factory`` under ``name`` (``factory(rest)`` gets the spec
    text after ``name:``, or ``None`` when the spec is the bare name)."""
    _FACTORIES[name] = factory


def _split_spec(spec: str) -> Tuple[str, Optional[str]]:
    if not isinstance(spec, str) or not spec.strip():
        raise BackendSpecError(f"backend spec must be a non-empty string, got {spec!r}")
    name, sep, rest = spec.strip().partition(":")
    name = name.strip().lower()
    if name not in _FACTORIES:
        raise BackendSpecError(
            f"unknown backend {name!r} (known: {', '.join(sorted(_FACTORIES))})"
        )
    return name, (rest.strip() if sep else None)


def make_backend(spec: str) -> "ExecutionBackend":
    """Build a backend instance from a spec string (raises
    :class:`BackendSpecError` for malformed or unknown specs)."""
    name, rest = _split_spec(spec)
    return _FACTORIES[name](rest)


def normalize_spec(spec: str) -> str:
    """The canonical form of ``spec`` (e.g. ``"fork"`` -> ``"fork:8"``)."""
    return make_backend(spec).spec


# -- the process-wide default backend ------------------------------------------

#: What configure_backend installed: a spec string, a live instance, or None.
_CONFIGURED: Union[None, str, "ExecutionBackend"] = None
_CONFIGURED_PID: Optional[int] = None

_ACTIVE: Optional["ExecutionBackend"] = None
_ACTIVE_KEY: Optional[Tuple[int, str]] = None


def configure_backend(spec: Union[None, str, "ExecutionBackend"]) -> None:
    """Install the process-wide default backend.

    ``spec`` is a spec string (validated immediately), an
    :class:`ExecutionBackend` instance (used as-is by this process; forked
    children rebuild from its spec), or ``None`` to drop the explicit
    configuration and re-read the environment (``REPRO_BACKEND``)."""
    global _CONFIGURED, _CONFIGURED_PID
    if isinstance(spec, str):
        spec = normalize_spec(spec)  # raise now, not at first sweep
    _CONFIGURED = spec
    _CONFIGURED_PID = os.getpid()


def _spec_from_environment() -> str:
    return os.environ.get("REPRO_BACKEND", "").strip() or "serial"


def current_spec() -> str:
    """The spec the *next* :func:`get_backend` call will resolve to."""
    if isinstance(_CONFIGURED, ExecutionBackend):
        return _CONFIGURED.spec
    if _CONFIGURED is not None:
        return _CONFIGURED
    return normalize_spec(_spec_from_environment())


def get_backend() -> "ExecutionBackend":
    """The process-wide backend for the *current* process.

    Lazily built from :func:`current_spec` and cached per ``(pid, spec)``;
    after a fork the child abandons the inherited instance (shared file
    descriptors stay untouched) and builds its own."""
    global _ACTIVE, _ACTIVE_KEY
    pid = os.getpid()
    if isinstance(_CONFIGURED, ExecutionBackend) and _CONFIGURED_PID == pid:
        return _CONFIGURED
    spec = current_spec()
    if _ACTIVE is not None and _ACTIVE_KEY == (pid, spec):
        return _ACTIVE
    if _ACTIVE is not None and _ACTIVE_KEY is not None and _ACTIVE_KEY[0] == pid:
        _ACTIVE.close()
    _ACTIVE = make_backend(spec)
    _ACTIVE_KEY = (pid, spec)
    return _ACTIVE


def abandon_inherited() -> None:
    """Drop backend state inherited through a fork without closing it.

    Called by the guarded experiment runner's child bootstrap: the
    inherited instance's sockets belong to the parent, so the child must
    forget them (not close them) and rebuild on first use."""
    global _ACTIVE, _ACTIVE_KEY, _CONFIGURED, _CONFIGURED_PID
    pid = os.getpid()
    if _ACTIVE_KEY is not None and _ACTIVE_KEY[0] != pid:
        _ACTIVE = None
        _ACTIVE_KEY = None
    if isinstance(_CONFIGURED, ExecutionBackend) and _CONFIGURED_PID != pid:
        _CONFIGURED = _CONFIGURED.spec
        _CONFIGURED_PID = pid


# Transports register themselves at import; importing them here makes the
# registry complete whenever the package is imported.
from repro.perf.backends import fork as _fork  # noqa: E402  (registration import)
from repro.perf.backends import serial as _serial  # noqa: E402
from repro.perf.backends import sockets as _sockets  # noqa: E402
from repro.perf import supervise as _supervise  # noqa: E402  (registers "pool")

SerialBackend = _serial.SerialBackend
ForkBackend = _fork.ForkBackend
SocketBackend = _sockets.SocketBackend
LocalPoolBackend = _supervise.LocalPoolBackend

__all__ += [
    "SerialBackend",
    "ForkBackend",
    "SocketBackend",
    "LocalPoolBackend",
    "abandon_inherited",
]
