"""``parallel_map`` — one sweep contract over pluggable execution backends.

Fans a list of independent work items across an execution backend
(:mod:`repro.perf.backends`) and reassembles results **in input order**, so
callers observe exactly the semantics of ``[fn(x) for x in items]``
regardless of whether chunks ran in-process, in forked children, or on a
TCP worker pool:

* **Deterministic partitioning** — chunk ``w`` of ``n`` gets items
  ``w, w+n, w+2n, ...`` (round-robin by index).  The partition is a pure
  function of ``(len(items), n)``, never of timing, and each item's result
  depends only on the item itself, so any seeds baked into the items are
  honoured identically at every parallelism (*seed-stable*).
* **Exactness** — results cross process boundaries by pickling;
  ``Fraction`` weights round-trip losslessly, so fanned sweeps are
  bit-identical to serial ones on every backend.
* **Boundary metrics merging** — remote executors start from a zeroed
  :mod:`repro.obs.metrics` registry and ship per-chunk snapshots back with
  the results; the parent folds them in, in chunk order, so per-experiment
  counters survive the fan-out.
* **Span collection and heartbeats** — with tracing on, executors buffer
  their spans and ship them in the same atomic payload; the caller
  clock-aligns them into its own tracer as named per-worker process lanes
  (:mod:`repro.obs.distributed`) and marks dispatch/retry/fallback/death
  with instant events.  Each completed chunk also advances the live
  progress line (:mod:`repro.obs.progress`); both facilities are off by
  default with near-free disabled paths.
* **Degradation, not failure** — a resolved parallelism of 1 (serial spec,
  single item, no ``fork`` support) runs the plain comprehension in the
  caller.  A chunk whose executor died without reporting (hard crash, dead
  worker pool) is re-run serially in the caller — counted in
  ``perf.parallel.chunk_fallbacks`` — and because result payloads are
  atomic, the lost executor contributed neither results nor metrics, so
  nothing is ever double-counted.  An exception raised by ``fn`` remotely
  is re-raised here as :class:`ParallelWorkerError` carrying the executor's
  traceback; when several items fail, the **lowest item index** wins.

Backend resolution, in order: the ``backend`` argument (an
:class:`~repro.perf.backends.ExecutionBackend` instance or a spec string),
the legacy ``workers`` argument (mapped to ``fork:N``), then the
process-wide default (:func:`repro.perf.backends.configure_backend`, else
``REPRO_BACKEND``, else serial).  The experiment runner's ``--parallel``
flag deliberately does *not* configure a backend: runner parallelism fans
whole experiments, and nesting both layers oversubscribes the host (see
``docs/performance.md``).

**Sweep memoization** — with the cache enabled *and* a persistent store
active (``REPRO_CACHE_DIR``; :mod:`repro.perf.store`), a whole sweep whose
``(fn, items)`` pair has a canonical structural fingerprint is memoized on
disk: an identical sweep (same closure structure, same captured automata
and parameters, same items — seeds ride in the items, so seed rotation
naturally re-keys) skips dispatch entirely and returns the stored results,
counted in ``perf.cache.sweep.{hits,misses}``.  Only *successful* sweeps
are persisted, and unfingerprintable sweeps simply run — memoization is
strictly best-effort and invisible in results.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.obs import distributed as _distributed
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf import cache as _perf_cache
from repro.perf import fingerprint as _fingerprint
from repro.perf import store as _perf_store
from repro.perf.backends import (
    ExecutionBackend,
    get_backend,
    make_backend,
)

__all__ = [
    "ParallelWorkerError",
    "parallel_map",
]

_MAPS = _counter("perf.parallel.maps")
_ITEMS = _counter("perf.parallel.items")
_FALLBACKS = _counter("perf.parallel.chunk_fallbacks")
_SWEEP_HITS = _counter("perf.cache.sweep.hits")
_SWEEP_MISSES = _counter("perf.cache.sweep.misses")


class ParallelWorkerError(RuntimeError):
    """``fn`` raised inside an executor; carries the remote traceback text."""

    def __init__(self, index: int, child_traceback: str) -> None:
        super().__init__(
            f"parallel_map item {index} raised in worker:\n{child_traceback.rstrip()}"
        )
        self.index = index
        self.child_traceback = child_traceback


def _sweep_memo(fn: Any, work: List[Any]):
    """``(store, entry_fingerprint)`` when this sweep is disk-memoizable.

    Requires the cache switch on, an active persistent store, and a
    canonical fingerprint for ``(fn, items)`` — the function encodes by
    value when it is a local closure, so captured automata, schedulers and
    bounds all participate in the key."""
    if not _perf_cache.CACHE.enabled:
        return None
    store = _perf_store.active_store()
    if store is None:
        return None
    key = _fingerprint.try_fingerprint(("parallel_map", fn, work))
    if key is None:
        return None
    return store, key


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: Optional[int] = None,
    merge_metrics: bool = True,
    backend: Union[None, str, ExecutionBackend] = None,
) -> List[Any]:
    """``[fn(x) for x in items]`` fanned across an execution backend (see
    module docstring for the determinism contract)."""
    work = list(items)
    if not work:
        return []
    memo = _sweep_memo(fn, work)
    if memo is not None:
        store, entry_fp = memo
        stored = store.get("sweep", entry_fp)
        if stored is not None:
            _SWEEP_HITS.inc()
            return list(stored)
        _SWEEP_MISSES.inc()
    results = _dispatch(fn, work, workers=workers, merge_metrics=merge_metrics, backend=backend)
    if memo is not None:
        store.put("sweep", entry_fp, results)
    return results


def _dispatch(
    fn: Callable[[Any], Any],
    work: List[Any],
    *,
    workers: Optional[int],
    merge_metrics: bool,
    backend: Union[None, str, ExecutionBackend],
) -> List[Any]:
    owned = False
    if backend is not None:
        resolved = backend if isinstance(backend, ExecutionBackend) else make_backend(backend)
        owned = not isinstance(backend, ExecutionBackend)
    elif workers is not None:
        count = max(1, int(workers))
        if count <= 1:
            return [fn(item) for item in work]
        resolved = make_backend(f"fork:{count}")
        owned = True
    else:
        resolved = get_backend()

    try:
        count = min(resolved.parallelism, len(work))
        if not work or (count <= 1 and not resolved.remote):
            # A single local chunk gains nothing from the transport; a
            # single *remote* chunk still offloads (that's the point of
            # pointing a weak host at a one-worker pool).
            return [fn(item) for item in work]
        count = max(1, count)

        _MAPS.inc()
        _ITEMS.inc(len(work))
        indexed = list(enumerate(work))
        chunks = [indexed[w::count] for w in range(count)]
        _trace.instant(
            "parallel.dispatch", backend=resolved.spec, chunks=len(chunks), items=len(work)
        )
        _progress.begin(f"parallel map [{resolved.spec}]", len(chunks), "chunks")
        try:
            with _trace.span(
                "parallel.map", backend=resolved.spec, chunks=len(chunks), items=len(work)
            ):
                outcomes = resolved.submit_chunks(fn, chunks)
        finally:
            _progress.finish()
    finally:
        if owned:
            resolved.close()

    results: List[Any] = [None] * len(work)
    failures: List[Tuple[int, str]] = []
    for chunk_index, (chunk, outcome) in enumerate(zip(chunks, outcomes)):
        if outcome is None or outcome.lost:
            # The executor died without reporting (or supervision
            # quarantined a poison chunk): recompute the chunk here.  Its
            # payload (results + metrics + spans) is atomic and never
            # arrived, so merging nothing and recomputing counts each
            # item's work exactly once.
            _FALLBACKS.inc()
            _trace.instant(
                "parallel.chunk_quarantined"
                if getattr(outcome, "quarantined", False)
                else "parallel.chunk_fallback",
                chunk=chunk_index,
                detail=getattr(outcome, "detail", None),
            )
            for index, item in chunk:
                results[index] = fn(item)
            continue
        if merge_metrics and outcome.metrics is not None:
            _metrics.merge_snapshot(outcome.metrics)
        _distributed.absorb_chunk_trace(outcome.trace)
        _profile.absorb_chunk_profile(outcome.profile)
        for index, error, value in outcome.results:
            if error is not None:
                failures.append((index, error))
            else:
                results[index] = value
    if failures:
        index, error = min(failures)
        raise ParallelWorkerError(index, error)
    return results
