"""``parallel_map`` — one sweep contract over pluggable execution backends.

Fans a list of independent work items across an execution backend
(:mod:`repro.perf.backends`) and reassembles results **in input order**, so
callers observe exactly the semantics of ``[fn(x) for x in items]``
regardless of whether chunks ran in-process, in forked children, or on a
TCP worker pool:

* **Deterministic partitioning** — chunk ``w`` of ``n`` gets items
  ``w, w+n, w+2n, ...`` (round-robin by index).  The partition is a pure
  function of ``(len(items), n)``, never of timing, and each item's result
  depends only on the item itself, so any seeds baked into the items are
  honoured identically at every parallelism (*seed-stable*).
* **Exactness** — results cross process boundaries by pickling;
  ``Fraction`` weights round-trip losslessly, so fanned sweeps are
  bit-identical to serial ones on every backend.
* **Boundary metrics merging** — remote executors start from a zeroed
  :mod:`repro.obs.metrics` registry and ship per-chunk snapshots back with
  the results; the parent folds them in, in chunk order, so per-experiment
  counters survive the fan-out.
* **Span collection and heartbeats** — with tracing on, executors buffer
  their spans and ship them in the same atomic payload; the caller
  clock-aligns them into its own tracer as named per-worker process lanes
  (:mod:`repro.obs.distributed`) and marks dispatch/retry/fallback/death
  with instant events.  Each completed chunk also advances the live
  progress line (:mod:`repro.obs.progress`); both facilities are off by
  default with near-free disabled paths.
* **Degradation, not failure** — a resolved parallelism of 1 (serial spec,
  single item, no ``fork`` support) runs the plain comprehension in the
  caller.  A chunk whose executor died without reporting (hard crash, dead
  worker pool) is re-run serially in the caller — counted in
  ``perf.parallel.chunk_fallbacks`` — and because result payloads are
  atomic, the lost executor contributed neither results nor metrics, so
  nothing is ever double-counted.  An exception raised by ``fn`` remotely
  is re-raised here as :class:`ParallelWorkerError` carrying the executor's
  traceback; when several items fail, the **lowest item index** wins.

Backend resolution, in order: the ``backend`` argument (an
:class:`~repro.perf.backends.ExecutionBackend` instance or a spec string),
the deprecated ``workers`` argument (mapped to ``fork:N``), then the
process-wide default (:func:`repro.perf.backends.configure_backend`, else
``REPRO_BACKEND``, else the deprecated ``REPRO_PARALLEL`` integer, else
serial).  The experiment runner's ``--parallel`` flag deliberately does
*not* configure a backend: runner parallelism fans whole experiments, and
nesting both layers oversubscribes the host (see ``docs/performance.md``).

Deprecated (one release, shims below): :func:`configure_workers` /
:func:`default_workers` and bare ``REPRO_PARALLEL`` integers — use
:func:`~repro.perf.backends.configure_backend` with ``fork:N`` specs.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.obs import distributed as _distributed
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.obs.metrics import counter as _counter
from repro.perf.backends import (
    ExecutionBackend,
    configure_backend,
    get_backend,
    make_backend,
)

__all__ = [
    "ParallelWorkerError",
    "parallel_map",
    "configure_workers",
    "default_workers",
]

_MAPS = _counter("perf.parallel.maps")
_ITEMS = _counter("perf.parallel.items")
_FALLBACKS = _counter("perf.parallel.chunk_fallbacks")


class ParallelWorkerError(RuntimeError):
    """``fn`` raised inside an executor; carries the remote traceback text."""

    def __init__(self, index: int, child_traceback: str) -> None:
        super().__init__(
            f"parallel_map item {index} raised in worker:\n{child_traceback.rstrip()}"
        )
        self.index = index
        self.child_traceback = child_traceback


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: Optional[int] = None,
    merge_metrics: bool = True,
    backend: Union[None, str, ExecutionBackend] = None,
) -> List[Any]:
    """``[fn(x) for x in items]`` fanned across an execution backend (see
    module docstring for the determinism contract)."""
    work = list(items)
    owned = False
    if backend is not None:
        resolved = backend if isinstance(backend, ExecutionBackend) else make_backend(backend)
        owned = not isinstance(backend, ExecutionBackend)
    elif workers is not None:
        count = max(1, int(workers))
        if count <= 1:
            return [fn(item) for item in work]
        resolved = make_backend(f"fork:{count}")
        owned = True
    else:
        resolved = get_backend()

    try:
        count = min(resolved.parallelism, len(work))
        if not work or (count <= 1 and not resolved.remote):
            # A single local chunk gains nothing from the transport; a
            # single *remote* chunk still offloads (that's the point of
            # pointing a weak host at a one-worker pool).
            return [fn(item) for item in work]
        count = max(1, count)

        _MAPS.inc()
        _ITEMS.inc(len(work))
        indexed = list(enumerate(work))
        chunks = [indexed[w::count] for w in range(count)]
        _trace.instant(
            "parallel.dispatch", backend=resolved.spec, chunks=len(chunks), items=len(work)
        )
        _progress.begin(f"parallel map [{resolved.spec}]", len(chunks), "chunks")
        try:
            with _trace.span(
                "parallel.map", backend=resolved.spec, chunks=len(chunks), items=len(work)
            ):
                outcomes = resolved.submit_chunks(fn, chunks)
        finally:
            _progress.finish()
    finally:
        if owned:
            resolved.close()

    results: List[Any] = [None] * len(work)
    failures: List[Tuple[int, str]] = []
    for chunk_index, (chunk, outcome) in enumerate(zip(chunks, outcomes)):
        if outcome is None or outcome.lost:
            # The executor died without reporting (or supervision
            # quarantined a poison chunk): recompute the chunk here.  Its
            # payload (results + metrics + spans) is atomic and never
            # arrived, so merging nothing and recomputing counts each
            # item's work exactly once.
            _FALLBACKS.inc()
            _trace.instant(
                "parallel.chunk_quarantined"
                if getattr(outcome, "quarantined", False)
                else "parallel.chunk_fallback",
                chunk=chunk_index,
                detail=getattr(outcome, "detail", None),
            )
            for index, item in chunk:
                results[index] = fn(item)
            continue
        if merge_metrics and outcome.metrics is not None:
            _metrics.merge_snapshot(outcome.metrics)
        _distributed.absorb_chunk_trace(outcome.trace)
        _profile.absorb_chunk_profile(outcome.profile)
        for index, error, value in outcome.results:
            if error is not None:
                failures.append((index, error))
            else:
                results[index] = value
    if failures:
        index, error = min(failures)
        raise ParallelWorkerError(index, error)
    return results


# -- deprecated shims (kept for one release) -----------------------------------


def configure_workers(workers: Optional[int]) -> None:
    """Deprecated: use ``configure_backend("fork:N")`` (or ``None``).

    ``configure_workers(n)`` maps to ``configure_backend(f"fork:{n}")``;
    ``configure_workers(None)`` drops the explicit configuration so the
    environment is re-read, exactly like ``configure_backend(None)``.
    """
    warnings.warn(
        "configure_workers is deprecated; use "
        "repro.perf.configure_backend('fork:N') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    configure_backend(None if workers is None else f"fork:{max(1, int(workers))}")


def default_workers() -> int:
    """Deprecated: the resolved default backend's parallelism
    (use ``get_backend().parallelism``)."""
    warnings.warn(
        "default_workers is deprecated; use "
        "repro.perf.get_backend().parallelism instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_backend().parallelism
