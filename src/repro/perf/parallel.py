"""Fork-based ``parallel_map`` for experiment sweeps.

Fans a list of independent work items across worker processes created with
raw ``os.fork`` — the same isolation primitive the guarded experiment
runner builds on — and reassembles results **in input order**, so callers
observe exactly the semantics of ``[fn(x) for x in items]``:

* **Deterministic partitioning** — worker ``w`` of ``n`` gets items
  ``w, w+n, w+2n, ...`` (round-robin by index).  The partition is a pure
  function of ``(len(items), n)``, never of timing, and each item's result
  depends only on the item itself, so any seeds baked into the items are
  honoured identically at every worker count (*seed-stable*: the same item
  computes under the same seed whether ``n`` is 1 or 16).
* **Exactness** — results cross the fork boundary by pickling; ``Fraction``
  weights round-trip losslessly, so parallel sweeps are bit-identical to
  serial ones.
* **Fork-boundary metrics merging** — each worker starts from a zeroed
  :mod:`repro.obs.metrics` registry and ships its snapshot back with the
  results; the parent folds every worker's counters, gauges and histograms
  into its own registry, so per-experiment counters survive the fan-out.
* **Degradation, not failure** — with ``workers <= 1``, a single item, or
  no ``fork`` support (non-POSIX platforms), the map runs serially in the
  caller.  A worker that dies without reporting (hard crash) has its chunk
  re-run serially in the parent, preserving results at the cost of the
  speedup.  An exception raised by ``fn`` in a worker is re-raised in the
  parent as :class:`ParallelWorkerError` carrying the child traceback.

The worker count resolves, in order: the ``workers`` argument, the value
set via :func:`configure_workers`, the ``REPRO_PARALLEL`` environment
variable, then 1 (serial).  The experiment runner's ``--parallel`` flag
deliberately does *not* set ``REPRO_PARALLEL``: runner parallelism fans
whole experiments, and nesting both layers would oversubscribe the host
(see ``docs/performance.md``).
"""

from __future__ import annotations

import os
import pickle
import struct
import traceback
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs.metrics import counter as _counter

__all__ = ["ParallelWorkerError", "parallel_map", "configure_workers", "default_workers"]

_MAPS = _counter("perf.parallel.maps")
_FORKS = _counter("perf.parallel.forks")
_ITEMS = _counter("perf.parallel.items")
_FALLBACKS = _counter("perf.parallel.chunk_fallbacks")

_CONFIGURED_WORKERS: Optional[int] = None

_LEN = struct.Struct(">Q")


class ParallelWorkerError(RuntimeError):
    """``fn`` raised inside a worker; carries the child's traceback text."""

    def __init__(self, index: int, child_traceback: str) -> None:
        super().__init__(
            f"parallel_map item {index} raised in worker:\n{child_traceback.rstrip()}"
        )
        self.index = index
        self.child_traceback = child_traceback


def configure_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` re-reads the env)."""
    global _CONFIGURED_WORKERS
    _CONFIGURED_WORKERS = None if workers is None else max(1, int(workers))


def default_workers() -> int:
    """The worker count used when ``parallel_map`` is called without one."""
    if _CONFIGURED_WORKERS is not None:
        return _CONFIGURED_WORKERS
    raw = os.environ.get("REPRO_PARALLEL", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _write_all(fd: int, payload: bytes) -> None:
    view = memoryview(payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, size: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _child_main(write_fd: int, fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]) -> None:
    """Worker body: compute the chunk, ship ``(results, metrics)`` back.

    Runs under ``os._exit`` discipline — no atexit hooks, no parent test
    harness teardown.  The inherited metrics registry is zeroed so the
    shipped snapshot is exactly this worker's contribution.
    """
    exit_code = 0
    try:
        _metrics.reset()
        results: List[Tuple[int, Optional[str], Any]] = []
        for index, item in chunk:
            try:
                results.append((index, None, fn(item)))
            except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
                results.append((index, traceback.format_exc(), None))
        payload = pickle.dumps(
            (results, _metrics.snapshot()), protocol=pickle.HIGHEST_PROTOCOL
        )
        _write_all(write_fd, _LEN.pack(len(payload)) + payload)
    except BaseException:
        exit_code = 1
    finally:
        try:
            os.close(write_fd)
        except OSError:
            pass
        os._exit(exit_code)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: Optional[int] = None,
    merge_metrics: bool = True,
) -> List[Any]:
    """``[fn(x) for x in items]`` fanned across forked workers (see module
    docstring for the determinism contract)."""
    work = list(items)
    count = default_workers() if workers is None else max(1, int(workers))
    count = min(count, len(work))
    if count <= 1 or not hasattr(os, "fork"):
        return [fn(item) for item in work]

    _MAPS.inc()
    _ITEMS.inc(len(work))
    indexed = list(enumerate(work))
    chunks = [indexed[w::count] for w in range(count)]

    children: List[Tuple[int, int, Sequence[Tuple[int, Any]]]] = []
    for chunk in chunks:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            for other_read, _other_pid, _other_chunk in children:
                try:
                    os.close(other_read)
                except OSError:
                    pass
            _child_main(write_fd, fn, chunk)
            # _child_main never returns
        _FORKS.inc()
        os.close(write_fd)
        children.append((read_fd, pid, chunk))

    results: List[Any] = [None] * len(work)
    failures: List[Tuple[int, str]] = []
    for read_fd, pid, chunk in children:
        payload: Optional[bytes] = None
        try:
            header = _read_exact(read_fd, _LEN.size)
            if header is not None:
                payload = _read_exact(read_fd, _LEN.unpack(header)[0])
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        if payload is None:
            # The worker died without reporting: recompute its chunk here.
            _FALLBACKS.inc()
            for index, item in chunk:
                results[index] = fn(item)
            continue
        chunk_results, snapshot = pickle.loads(payload)
        if merge_metrics:
            _metrics.merge_snapshot(snapshot)
        for index, error, value in chunk_results:
            if error is not None:
                failures.append((index, error))
            else:
                results[index] = value
    if failures:
        index, error = min(failures)
        raise ParallelWorkerError(index, error)
    return results
