"""Canonical, process-stable structural fingerprints of repro values.

``fingerprint(obj)`` returns a SHA-256 hex digest of a *canonical byte
encoding* of the value's structure.  Two value-equal objects — the same
automaton tables, the same scheduler parameters, the same measure weights
— fingerprint identically in any process, which is what lets the perf
cache key entries by content instead of ``id()`` and lets the persistent
store (:mod:`repro.perf.store`) share entries across workers and restarts.

Canonical means explicitly independent of:

* ``id()`` and allocation order — nothing derived from object identity
  ever reaches the encoding;
* dict / set iteration order — mappings and sets are encoded as their
  items sorted by the items' *encoded bytes*, never by insertion or hash
  order;
* interpreter hash salt (``PYTHONHASHSEED``) — no salted ``hash()`` value
  is ever encoded, and frozensets buried in code constants are re-encoded
  element-wise rather than marshalled.

Encoding model
--------------

Primitives (``None``/``bool``/``int``/``float``/``Fraction``/``complex``/
``str``/``bytes``) and containers (tuple/list/dict/set/frozenset) encode
structurally with type tags and length framing.  Domain values register an
*extractor* keyed by ``module:qualname`` (resolved over the MRO, so
subclasses inherit it):

* :class:`~repro.core.signature.Signature`, fragments, fault plans — via
  the generic frozen-dataclass rule (compare fields only);
* discrete measures — concrete class plus the exact weight mapping;
* schedulers — concrete class, ``cacheable`` flag, and the instance
  parameters (callables encoded by reference when importable, else by
  value: code attributes, defaults, closure cells, referenced globals);
* :class:`~repro.config.configuration.Configuration` — the member
  automata and their local states;
* :class:`~repro.core.psioa.TablePSIOA` — its literal tables;
* intensional PSIOA/PCA — a bounded behavioural traversal: every
  reachable state's signature and transition measures (plus hidden
  actions and created automata for PCA), capped by
  ``REPRO_FINGERPRINT_MAX_STATES`` (default ``2048``); past the cap the
  value is :class:`Unfingerprintable` and callers fall back to identity
  keys.

Domain values hash as a Merkle tree: each one contributes
``sha256(class, payload)`` to its parent's encoding, and that digest is
memoized per object (identity-keyed, with a strong keepalive so ids can't
recycle).  The memo makes repeated fingerprints of the same automaton
O(1), and :func:`peek` exposes it *without ever computing* — the cache's
owner keys stay on ``id()`` until a memo boundary has paid for the
fingerprint once.  Mutating a fingerprinted object requires
:func:`repro.perf.cache.invalidate`, which calls :func:`forget` here.

Cycle safety: the encoder keeps an in-flight stack; re-encountering an
object mid-encoding emits a back-reference by stack distance (canonical
for self-contained cycles), and digests whose encoding escaped their own
subtree are never memoized.  The module is not thread-safe; like the rest
of the perf layer it assumes the single-threaded unfolding engine.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import sys
import types
from collections import OrderedDict
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "FINGERPRINT_VERSION",
    "DEFAULT_MAX_STATES",
    "Unfingerprintable",
    "fingerprint",
    "fingerprint_cached",
    "try_fingerprint",
    "try_fingerprint_cached",
    "peek",
    "forget",
    "clear_memo",
]

#: Bump when the canonical encoding changes shape: persisted entries keyed
#: under another version must never be read back (the store embeds this in
#: its directory layout).
FINGERPRINT_VERSION = 1

#: Behavioural-traversal cap for intensional automata; override with
#: ``REPRO_FINGERPRINT_MAX_STATES``.
DEFAULT_MAX_STATES = 2048


class Unfingerprintable(TypeError):
    """The value has no canonical structural encoding (opaque type, an
    automaton whose reachable state space exceeds the traversal cap, or a
    callable whose closure reaches an unencodable object)."""


# --------------------------------------------------------------------------
# cross-call digest memo (identity-keyed, keepalive, bounded FIFO)

_MEMO: "OrderedDict[int, Tuple[Any, Optional[str]]]" = OrderedDict()
_MEMO_CAP = 4096

#: Ids currently being encoded (cycle guard / in-flight guard for peek).
_FLIGHT: List[int] = []
_FLIGHT_SET: set = set()

_NO_BACKREF = sys.maxsize
#: Smallest flight index referenced by a back-reference emitted since the
#: innermost frame snapshot — used to refuse memoization of digests whose
#: encoding depends on enclosing context.
_MIN_BACKREF = _NO_BACKREF


def _memo_put(oid: int, obj: Any, digest: Optional[str]) -> None:
    _MEMO[oid] = (obj, digest)
    _MEMO.move_to_end(oid)
    while len(_MEMO) > _MEMO_CAP:
        _MEMO.popitem(last=False)


def peek(obj: Any) -> Optional[str]:
    """The memoized fingerprint of ``obj``, or ``None`` — never computes.

    Returns ``None`` while ``obj`` is mid-encoding so cache lookups issued
    from inside an automaton's own behavioural traversal fall back to
    identity keys instead of recursing.
    """
    entry = _MEMO.get(id(obj))
    if entry is None or entry[0] is not obj or entry[1] is None:
        return None
    if id(obj) in _FLIGHT_SET:
        return None
    return entry[1]


def forget(obj: Any) -> None:
    """Drop the memoized fingerprint of ``obj`` (after a mutation)."""
    entry = _MEMO.get(id(obj))
    if entry is not None and entry[0] is obj:
        del _MEMO[id(obj)]


def clear_memo() -> None:
    """Drop every memoized fingerprint (wired into ``perf.cache.clear``)."""
    _MEMO.clear()


# --------------------------------------------------------------------------
# framing and primitive encoders

def _frame(tag: bytes, *parts: bytes) -> bytes:
    out = [tag, len(parts).to_bytes(4, "big")]
    for part in parts:
        out.append(len(part).to_bytes(8, "big"))
        out.append(part)
    return b"".join(out)


def _classname(cls: type) -> bytes:
    return (cls.__module__ + ":" + cls.__qualname__).encode("utf-8")


_PRIMITIVES: Dict[type, Callable[[Any], bytes]] = {
    type(None): lambda v: b"N",
    bool: lambda v: b"T1" if v else b"T0",
    int: lambda v: _frame(b"I", b"%d" % v),
    float: lambda v: _frame(b"D", repr(v).encode("ascii")),
    complex: lambda v: _frame(
        b"Cx", repr(v.real).encode("ascii"), repr(v.imag).encode("ascii")
    ),
    Fraction: lambda v: _frame(b"R", b"%d" % v.numerator, b"%d" % v.denominator),
    str: lambda v: _frame(b"S", v.encode("utf-8", "surrogatepass")),
    bytes: lambda v: _frame(b"B", v),
}


class _Context:
    """Per-top-level-call state: an id-keyed byte memo for repeated
    sub-objects plus strong keepalives so those ids stay stable."""

    __slots__ = ("local", "keep")

    def __init__(self) -> None:
        self.local: Dict[int, Tuple[Any, bytes]] = {}
        self.keep: List[Any] = []


# --------------------------------------------------------------------------
# extractor registry (module:qualname -> payload builder, resolved on MRO)

_EXTRACTORS: Dict[str, Callable[[Any], Any]] = {}
_TYPE_EXTRACTORS: Dict[type, Optional[Callable[[Any], Any]]] = {}


def _extractor_for(cls: type) -> Optional[Callable[[Any], Any]]:
    try:
        return _TYPE_EXTRACTORS[cls]
    except KeyError:
        pass
    found = None
    for base in cls.__mro__:
        found = _EXTRACTORS.get(base.__module__ + ":" + base.__qualname__)
        if found is not None:
            break
    _TYPE_EXTRACTORS[cls] = found
    return found


def _max_states() -> int:
    raw = os.environ.get("REPRO_FINGERPRINT_MAX_STATES", "")
    try:
        value = int(raw)
    except ValueError:
        value = 0
    return value if value > 0 else DEFAULT_MAX_STATES


def _behavior_table(automaton: Any, *, pca: bool) -> Dict[Any, Any]:
    """Reachable-state table ``{state: (signature, {action: measure}, ...)}``.

    Traversal order is irrelevant — the dict encoder sorts by encoded
    bytes — only termination matters, so this is a plain capped BFS over
    the public behavioural interface (mirroring
    :func:`repro.core.psioa.reachable_states`).
    """
    limit = _max_states()
    table: Dict[Any, Any] = {}
    seen = {automaton.start}
    frontier = [automaton.start]
    while frontier:
        state = frontier.pop()
        if len(table) >= limit:
            raise Unfingerprintable(
                f"automaton {automaton.name!r} exceeds the fingerprint "
                f"traversal cap of {limit} reachable states "
                f"(REPRO_FINGERPRINT_MAX_STATES)"
            )
        acts: Dict[Any, Any] = {}
        for action in automaton.enabled(state):
            eta = automaton.transition(state, action)
            acts[action] = eta
            for target in eta.support():
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        if pca:
            created = {action: automaton.created(state, action) for action in acts}
            table[state] = (
                automaton.signature(state),
                acts,
                automaton.hidden_actions(state),
                created,
            )
        else:
            table[state] = (automaton.signature(state), acts)
    return table


def _extract_psioa(automaton: Any) -> Any:
    return ("psioa", automaton.name, automaton.start, _behavior_table(automaton, pca=False))


def _extract_pca(automaton: Any) -> Any:
    return ("pca", automaton.name, automaton.start, _behavior_table(automaton, pca=True))


def _extract_table_psioa(automaton: Any) -> Any:
    return (
        "table-psioa",
        automaton.name,
        automaton.start,
        dict(automaton.signatures),
        dict(automaton.transitions),
    )


def _extract_measure(measure: Any) -> Any:
    return ("measure", dict(measure._weights))


def _extract_scheduler(scheduler: Any) -> Any:
    return ("scheduler", bool(getattr(scheduler, "cacheable", True)), dict(vars(scheduler)))


def _extract_configuration(configuration: Any) -> Any:
    return (
        "configuration",
        {automaton: state for automaton, state in configuration.items()},
    )


_EXTRACTORS.update(
    {
        "repro.core.psioa:PSIOA": _extract_psioa,
        "repro.core.psioa:TablePSIOA": _extract_table_psioa,
        "repro.config.pca:PCA": _extract_pca,
        "repro.probability.measures:DiscreteMeasure": _extract_measure,
        "repro.semantics.scheduler:Scheduler": _extract_scheduler,
        "repro.config.configuration:Configuration": _extract_configuration,
    }
)


# --------------------------------------------------------------------------
# callables: by reference when importable, else by value

def _importable(fn: Any) -> bool:
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or module in ("__main__", "__mp_main__"):
        return False
    resolved = sys.modules.get(module)
    if resolved is None:
        return False
    obj: Any = resolved
    for part in qualname.split("."):
        if part == "<locals>":
            return False
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _global_names(code: types.CodeType) -> set:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _referenced_globals(fn: Any) -> Dict[str, Any]:
    globs = fn.__globals__
    return {
        name: globs[name] for name in _global_names(fn.__code__) if name in globs
    }


def _encode_code(code: types.CodeType, ctx: _Context) -> bytes:
    # Code constants are encoded element-wise with the canonical encoders
    # (never marshalled whole): frozensets in co_consts iterate in salted
    # order, and line/file metadata must not leak into the digest.
    const_parts = []
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            const_parts.append(_encode_code(const, ctx))
        else:
            const_parts.append(_encode(const, ctx))
    header = ",".join(
        str(value)
        for value in (
            code.co_argcount,
            code.co_posonlyargcount,
            code.co_kwonlyargcount,
            code.co_nlocals,
            code.co_flags,
        )
    ).encode("ascii")
    return _frame(
        b"Co",
        header,
        code.co_code,
        _frame(b"t", *const_parts),
        _encode(code.co_names, ctx),
        _encode(code.co_varnames, ctx),
        _encode(code.co_freevars, ctx),
        _encode(code.co_cellvars, ctx),
    )


def _encode_function(fn: types.FunctionType, ctx: _Context) -> bytes:
    if _importable(fn):
        return _frame(
            b"Fr", fn.__module__.encode("utf-8"), fn.__qualname__.encode("utf-8")
        )
    cell_parts = []
    for cell in fn.__closure__ or ():
        try:
            cell_parts.append(_frame(b"c", _encode(cell.cell_contents, ctx)))
        except ValueError:  # empty cell
            cell_parts.append(b"c0")
    return _frame(
        b"Fv",
        _encode_code(fn.__code__, ctx),
        _encode(fn.__defaults__, ctx),
        _encode(fn.__kwdefaults__, ctx),
        _frame(b"cs", *cell_parts),
        _encode(_referenced_globals(fn), ctx),
    )


_BUILTIN_CALLABLES = (
    types.BuiltinFunctionType,
    types.BuiltinMethodType,
    types.MethodDescriptorType,
    types.WrapperDescriptorType,
    types.MethodWrapperType,
)


# --------------------------------------------------------------------------
# the encoder

def _encode_inner(obj: Any, cls: type, ctx: _Context) -> bytes:
    if cls is tuple:
        return _frame(b"t", *[_encode(item, ctx) for item in obj])
    if cls is list:
        return _frame(b"l", *[_encode(item, ctx) for item in obj])
    if cls is dict:
        pairs = sorted(
            ((_encode(key, ctx), _encode(value, ctx)) for key, value in obj.items()),
            key=lambda pair: pair[0],
        )
        return _frame(b"d", *[part for pair in pairs for part in pair])
    if cls is set:
        return _frame(b"s", *sorted(_encode(item, ctx) for item in obj))
    if cls is frozenset:
        return _frame(b"f", *sorted(_encode(item, ctx) for item in obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (field.name, getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if field.compare
        )
        return _frame(b"DC", _classname(cls), _encode(fields, ctx))
    if cls is types.FunctionType:
        return _encode_function(obj, ctx)
    if cls is types.MethodType:
        return _frame(b"Fm", _encode(obj.__func__, ctx), _encode(obj.__self__, ctx))
    if cls is functools.partial:
        return _frame(
            b"Fp",
            _encode(obj.func, ctx),
            _encode(tuple(obj.args), ctx),
            _encode(dict(obj.keywords), ctx),
        )
    if isinstance(obj, _BUILTIN_CALLABLES):
        module = getattr(obj, "__module__", None) or "builtins"
        return _frame(b"Fb", module.encode("utf-8"), obj.__qualname__.encode("utf-8"))
    if isinstance(obj, type):
        return _frame(b"K", _classname(obj))
    if cls is types.ModuleType:
        return _frame(b"Mo", obj.__name__.encode("utf-8"))
    raise Unfingerprintable(
        f"no canonical encoding for {cls.__module__}.{cls.__qualname__}"
    )


def _encode(obj: Any, ctx: _Context) -> bytes:
    global _MIN_BACKREF
    cls = type(obj)
    primitive = _PRIMITIVES.get(cls)
    if primitive is not None:
        return primitive(obj)
    oid = id(obj)
    if oid in _FLIGHT_SET:
        position = _FLIGHT.index(oid)
        if position < _MIN_BACKREF:
            _MIN_BACKREF = position
        return _frame(b"~", b"%d" % (len(_FLIGHT) - 1 - position))
    hit = ctx.local.get(oid)
    if hit is not None:
        return hit[1]
    extractor = _extractor_for(cls)
    if extractor is not None:
        entry = _MEMO.get(oid)
        if entry is not None and entry[0] is obj:
            if entry[1] is None:
                raise Unfingerprintable(
                    f"{cls.__qualname__} previously failed to fingerprint"
                )
            return _frame(b"M", entry[1].encode("ascii"))
    saved = _MIN_BACKREF
    _MIN_BACKREF = _NO_BACKREF
    my_pos = len(_FLIGHT)
    _FLIGHT.append(oid)
    _FLIGHT_SET.add(oid)
    failed = False
    try:
        if extractor is not None:
            try:
                body = _encode(extractor(obj), ctx)
            except Unfingerprintable:
                failed = True
                raise
            except RecursionError:
                raise
            except Exception as exc:
                failed = True
                raise Unfingerprintable(
                    f"extracting {cls.__qualname__} failed: {exc}"
                ) from exc
        else:
            data = _encode_inner(obj, cls, ctx)
    finally:
        _FLIGHT.pop()
        _FLIGHT_SET.discard(oid)
        escaped = _MIN_BACKREF < my_pos
        if saved < _MIN_BACKREF:
            _MIN_BACKREF = saved
        if failed:
            _memo_put(oid, obj, None)
    if extractor is not None:
        digest = hashlib.sha256(_frame(b"X", _classname(cls), body)).hexdigest()
        if not escaped:
            _memo_put(oid, obj, digest)
        data = _frame(b"M", digest.encode("ascii"))
    if not escaped:
        ctx.local[oid] = (obj, data)
        ctx.keep.append(obj)
    return data


# --------------------------------------------------------------------------
# public API

def fingerprint(obj: Any) -> str:
    """Canonical structural SHA-256 hex digest of ``obj``.

    Raises :class:`Unfingerprintable` for values without a canonical
    encoding.  For registered domain values the digest is memoized by
    identity, so repeated calls on the same object are O(1).
    """
    ctx = _Context()
    if _extractor_for(type(obj)) is not None:
        data = _encode(obj, ctx)
        entry = _MEMO.get(id(obj))
        if entry is not None and entry[0] is obj and entry[1] is not None:
            return entry[1]
        # M-frame: tag + count + length + the 64 hex chars of the digest.
        return data[-64:].decode("ascii")
    return hashlib.sha256(_encode(obj, ctx)).hexdigest()


def fingerprint_cached(obj: Any) -> str:
    """Like :func:`fingerprint`, but returns the memoized digest when one
    exists (O(1) for warm automata and schedulers)."""
    digest = peek(obj)
    if digest is not None:
        return digest
    return fingerprint(obj)


def try_fingerprint(obj: Any) -> Optional[str]:
    """:func:`fingerprint`, with ``None`` instead of an exception."""
    try:
        return fingerprint(obj)
    except Unfingerprintable:
        return None


def try_fingerprint_cached(obj: Any) -> Optional[str]:
    """:func:`fingerprint_cached`, with ``None`` instead of an exception."""
    try:
        return fingerprint_cached(obj)
    except Unfingerprintable:
        return None
