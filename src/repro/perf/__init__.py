"""``repro.perf`` — the performance layer: memoization + parallel sweeps.

Two orthogonal tools, both contract-bound to change *nothing* about
results (the differential suite ``tests/test_perf_differential.py`` is the
enforcement arm):

* :mod:`repro.perf.cache` — transparent, identity-keyed memoization of
  transitions, scheduler decisions and whole unfoldings, plus hash-consing
  (interning) of :class:`~repro.core.executions.Fragment` and exact
  :class:`~repro.probability.measures.DiscreteMeasure` objects.  Gated by
  ``REPRO_CACHE`` (default on).
* :mod:`repro.perf.parallel` — fork-based :func:`parallel_map` with
  seed-stable partitioning and fork-boundary metrics merging.  Worker
  count from ``REPRO_PARALLEL`` (default 1, i.e. serial).

See ``docs/performance.md`` for the cache semantics, invalidation rules
and the parallel determinism contract.
"""

from repro.perf.cache import (
    CACHE,
    cache_enabled,
    cached_derived,
    clear as clear_caches,
    configure as configure_cache,
    intern_fragment,
    intern_measure,
    invalidate,
    stats as cache_stats,
)
from repro.perf.parallel import (
    ParallelWorkerError,
    configure_workers,
    default_workers,
    parallel_map,
)

__all__ = [
    "CACHE",
    "cache_enabled",
    "cached_derived",
    "clear_caches",
    "configure_cache",
    "intern_fragment",
    "intern_measure",
    "invalidate",
    "cache_stats",
    "ParallelWorkerError",
    "configure_workers",
    "default_workers",
    "parallel_map",
]
