"""``repro.perf`` — the performance layer: memoization + parallel sweeps.

Two orthogonal tools, both contract-bound to change *nothing* about
results (the differential suite ``tests/test_perf_differential.py`` is the
enforcement arm):

* :mod:`repro.perf.cache` — transparent memoization of transitions,
  scheduler decisions and whole unfoldings, plus hash-consing (interning)
  of :class:`~repro.core.executions.Fragment` and exact
  :class:`~repro.probability.measures.DiscreteMeasure` objects.  Gated by
  ``REPRO_CACHE`` (default on).  Entries are keyed by the canonical
  structural fingerprints of :mod:`repro.perf.fingerprint` once those are
  paid for (identity until then), and ``REPRO_CACHE_DIR`` /
  ``--cache-dir`` layers the disk-backed :mod:`repro.perf.store` on top:
  unfoldings and whole sweep results persist across processes and
  restarts, and fork/socket workers dedupe against the same tree.
* :func:`parallel_map` over pluggable **execution backends**
  (:mod:`repro.perf.backends`): ``serial`` (in-process), ``fork:N``
  (forked children on this host) and ``socket:host:port,...`` (a TCP
  worker pool started with ``python -m repro.perf.worker``) and ``pool:N``
  (a supervised loopback pool that launches and respawns its own
  workers).  The sweep contract — seed-stable partitioning, in-order
  reassembly, boundary metrics merging, lowest-index error propagation —
  is identical on every backend, so results are byte-for-byte
  backend-independent.  The remote transports run under a supervision
  policy (:mod:`repro.perf.supervise`): per-chunk deadlines, heartbeats,
  seeded backoff, circuit breakers and poison-chunk quarantine; the chaos
  harness (:mod:`repro.perf.chaos`) proves those paths differentially
  (see ``docs/resilience.md``).

The supported public surface of the parallel half is

    ``parallel_map``, ``configure_backend``, ``get_backend``,
    ``ExecutionBackend``, ``ParallelWorkerError``

(see ``docs/performance.md``).
"""

from repro.perf.backends import (
    BackendSpecError,
    ChunkOutcome,
    ExecutionBackend,
    ForkBackend,
    SerialBackend,
    SocketBackend,
    configure_backend,
    current_spec,
    get_backend,
    make_backend,
    register_backend,
)
from repro.perf.cache import (
    CACHE,
    cache_enabled,
    cached_derived,
    clear as clear_caches,
    configure as configure_cache,
    intern_fragment,
    intern_measure,
    invalidate,
    owner_key,
    stats as cache_stats,
)
# Importing the submodule binds ``repro.perf.fingerprint`` (the module) as a
# package attribute; the ``fingerprint`` *function* deliberately stays inside
# it (``repro.perf.fingerprint.fingerprint``) so the submodule is never
# shadowed for ``from repro.perf import fingerprint`` importers.
from repro.perf.fingerprint import (
    Unfingerprintable,
    try_fingerprint,
)
from repro.perf.parallel import (
    ParallelWorkerError,
    parallel_map,
)
from repro.perf.store import PersistentStore, active_store
from repro.perf.supervise import (
    LocalPoolBackend,
    SupervisionLog,
    SupervisionPolicy,
    backoff_delay,
)

__all__ = [
    "CACHE",
    "cache_enabled",
    "cached_derived",
    "clear_caches",
    "configure_cache",
    "intern_fragment",
    "intern_measure",
    "invalidate",
    "cache_stats",
    "ParallelWorkerError",
    "parallel_map",
    "configure_backend",
    "get_backend",
    "make_backend",
    "register_backend",
    "current_spec",
    "ExecutionBackend",
    "SerialBackend",
    "ForkBackend",
    "SocketBackend",
    "LocalPoolBackend",
    "SupervisionLog",
    "SupervisionPolicy",
    "backoff_delay",
    "ChunkOutcome",
    "BackendSpecError",
    "fingerprint",
    "try_fingerprint",
    "Unfingerprintable",
    "owner_key",
    "PersistentStore",
    "active_store",
]
