"""Validator for the PCA constraints of Definition 2.16.

:class:`~repro.config.pca.CanonicalPCA` satisfies the constraints by
construction; this module re-derives them for *any* PCA (including composed
and hidden ones) over its finite-reachable state space:

1. **start preservation** — the start configuration places every member at
   its own start state;
2. **top/down simulation** — every transition of ``psioa(X)`` corresponds,
   through ``config(X)`` in the sense of Definition 2.15, to an intrinsic
   transition of the configuration with creation set ``created(X)(q)(a)``;
3. **bottom/up simulation** — every intrinsic transition of the current
   configuration is matched by a transition of ``psioa(X)``;
4. **action hiding** — ``sig(X)(q) = hide(sig(config(X)(q)),
   hidden-actions(X)(q))`` and hidden actions are configuration outputs.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.config.pca import PCA
from repro.config.transitions import intrinsic_transition
from repro.core.psioa import PsioaError, reachable_states
from repro.core.signature import hide_signature
from repro.probability.measures import measures_correspond

__all__ = ["validate_pca", "PcaError"]

State = Hashable


class PcaError(PsioaError):
    """Raised when a PCA violates one of the constraints of Definition 2.16."""


def validate_pca(
    pca: PCA,
    *,
    states: Optional[Iterable[State]] = None,
    max_states: int = 50_000,
) -> None:
    """Check constraints 1–4 of Definition 2.16 over a finite state set.

    Raises :class:`PcaError` with a witness on the first violation.
    """
    universe = list(states) if states is not None else reachable_states(pca, max_states=max_states)

    # Constraint 1: start preservation.
    start_config = pca.config(pca.start)
    for automaton, state in start_config.items():
        if state != automaton.start:
            raise PcaError(
                f"constraint 1: member {automaton.name!r} of the start configuration is at "
                f"{state!r}, not its start state {automaton.start!r}"
            )

    for q in universe:
        configuration = pca.config(q)

        # The configuration attached to a state must be reduced and compatible.
        if not configuration.is_reduced():
            raise PcaError(f"config({q!r}) is not reduced: {configuration!r}")
        if not configuration.is_compatible():
            raise PcaError(
                f"config({q!r}) incompatible: {configuration.incompatibility_reason()}"
            )

        # Constraint 4: action hiding.
        hidden = pca.hidden_actions(q)
        config_sig = configuration.signature()
        if not hidden <= config_sig.outputs:
            raise PcaError(
                f"constraint 4: hidden-actions({q!r}) = {sorted(map(repr, hidden))} "
                f"not a subset of out(config) = {sorted(map(repr, config_sig.outputs))}"
            )
        expected_sig = hide_signature(config_sig, hidden)
        actual_sig = pca.signature(q)
        if actual_sig != expected_sig:
            raise PcaError(
                f"constraint 4: sig(X)({q!r}) = {actual_sig!r} differs from "
                f"hide(sig(config), hidden) = {expected_sig!r}"
            )

        # Constraints 2 and 3: the enabled action sets of the PCA state and of
        # its configuration coincide (hiding preserves sig-hat), and for each
        # action the PCA transition corresponds to the intrinsic transition
        # through config(X).
        if actual_sig.all_actions != config_sig.all_actions:
            raise PcaError(
                f"sig-hat mismatch at {q!r}: PCA has {sorted(map(repr, actual_sig.all_actions))}, "
                f"config has {sorted(map(repr, config_sig.all_actions))}"
            )
        for action in actual_sig.all_actions:
            phi = pca.created(q, action)
            clash = {a.name for a in phi} & set(configuration.ids())
            if clash:
                raise PcaError(
                    f"created({q!r})({action!r}) overlaps the configuration: "
                    f"{sorted(map(repr, clash))}"
                )
            try:
                eta_x = pca.transition(q, action)  # top/down direction
            except Exception as exc:  # noqa: BLE001
                raise PcaError(
                    f"constraint 3 (bottom/up): intrinsic transition via {action!r} exists at "
                    f"{q!r} but psioa(X) offers none: {exc}"
                ) from exc
            eta_conf = intrinsic_transition(configuration, action, phi)
            if not measures_correspond(eta_x, eta_conf, pca.config):
                raise PcaError(
                    f"constraint 2 (top/down): transition of psioa(X) at ({q!r}, {action!r}) "
                    f"does not correspond to the intrinsic transition through config(X)"
                )
