"""Configurations of dynamic systems (paper Definitions 2.9–2.12).

A configuration ``C = (A, S)`` is a finite set of PSIOA identifiers ``A``
together with a map ``S`` assigning each member its current state.  Unlike
the classical distributed-computing notion, the *set of automata itself*
evolves over time: automata are created by intrinsic transitions and
destroyed by reaching a state with the empty signature (Definition 2.12).

Configurations here are immutable value objects: equality and hashing are
by ``{(automaton id, state)}``, which makes them directly usable as the
states of a :class:`~repro.config.pca.CanonicalPCA`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.psioa import PSIOA, PsioaError
from repro.core.signature import (
    Signature,
    compose_signatures,
    incompatibility_reason,
    signatures_compatible,
)

__all__ = ["Configuration"]

State = Hashable
AutomatonId = Hashable


class Configuration:
    """A configuration ``(A, S)`` (Definition 2.9).

    Parameters
    ----------
    members:
        Mapping (or iterable of pairs) from :class:`~repro.core.psioa.PSIOA`
        objects to their current states.  Identifiers must be unique.

    The intrinsic attributes of Definition 2.11 are exposed as
    :meth:`auts`, :meth:`state_of` (the map ``S``) and :meth:`signature`.
    """

    __slots__ = ("_automata", "_states", "_key", "_sig_cache")

    def __init__(self, members: Mapping[PSIOA, State] | Iterable[Tuple[PSIOA, State]]) -> None:
        pairs = members.items() if isinstance(members, Mapping) else members
        automata: Dict[AutomatonId, PSIOA] = {}
        states: Dict[AutomatonId, State] = {}
        for automaton, state in pairs:
            if automaton.name in automata:
                raise PsioaError(f"duplicate automaton id {automaton.name!r} in configuration")
            automata[automaton.name] = automaton
            states[automaton.name] = state
        self._automata = automata
        self._states = states
        self._key = frozenset((name, state) for name, state in states.items())
        self._sig_cache: Optional[Signature] = None

    # -- intrinsic attributes (Definition 2.11) ---------------------------------

    def auts(self) -> Tuple[PSIOA, ...]:
        """``auts(C)``: the automata of the configuration, in id order."""
        return tuple(self._automata[name] for name in sorted(self._automata, key=repr))

    def ids(self) -> frozenset:
        return frozenset(self._automata)

    def state_of(self, automaton: PSIOA | AutomatonId) -> State:
        """``map(C)(A)``: the current state of a member automaton."""
        name = automaton.name if isinstance(automaton, PSIOA) else automaton
        return self._states[name]

    def automaton(self, name: AutomatonId) -> PSIOA:
        return self._automata[name]

    def items(self) -> Iterator[Tuple[PSIOA, State]]:
        for name in sorted(self._automata, key=repr):
            yield self._automata[name], self._states[name]

    def local_signatures(self) -> Tuple[Signature, ...]:
        return tuple(a.signature(s) for a, s in self.items())

    def is_compatible(self) -> bool:
        """Definition 2.10: the member signatures are pairwise compatible."""
        return signatures_compatible(self.local_signatures())

    def incompatibility_reason(self) -> str | None:
        return incompatibility_reason(self.local_signatures())

    def signature(self) -> Signature:
        """``sig(C)``: the intrinsic signature (Definition 2.11).

        ``out(C)`` / ``int(C)`` are unions of the member outputs/internals;
        ``in(C)`` is the union of member inputs minus ``out(C)`` — which is
        exactly signature composition (Definition 2.4) of the member
        signatures, applicable because the configuration is compatible.
        """
        if self._sig_cache is None:
            signatures = self.local_signatures()
            if not signatures_compatible(signatures):
                raise PsioaError(
                    f"configuration incompatible: {incompatibility_reason(signatures)}"
                )
            self._sig_cache = compose_signatures(signatures)
        return self._sig_cache

    # -- reduction (Definition 2.12) ----------------------------------------------

    def reduce(self) -> "Configuration":
        """``reduce(C)``: drop automata whose current signature is empty.

        Reaching the empty signature is the formal notion of *destruction*
        (Section 2.5 discussion after Definition 2.16).
        """
        return Configuration(
            [(a, s) for a, s in self.items() if not a.signature(s).is_empty]
        )

    def is_reduced(self) -> bool:
        return all(not a.signature(s).is_empty for a, s in self.items())

    # -- algebra --------------------------------------------------------------------

    def union(self, other: "Configuration") -> "Configuration":
        """``C1 (+) C2`` — disjoint union of configurations.

        Used by PCA composition (Definition 2.19):
        ``config(X)(q) = U_i config(X_i)(q |` X_i)``.  Requires disjoint
        automaton id sets.
        """
        overlap = self.ids() & other.ids()
        if overlap:
            raise PsioaError(f"configuration union with shared automata {sorted(map(repr, overlap))}")
        return Configuration(list(self.items()) + list(other.items()))

    def replace_states(self, new_states: Mapping[AutomatonId, State]) -> "Configuration":
        """A configuration with the same automata and updated states."""
        return Configuration(
            [(a, new_states.get(a.name, s)) for a, s in self.items()]
        )

    def with_members(self, extra: Iterable[Tuple[PSIOA, State]]) -> "Configuration":
        return Configuration(list(self.items()) + list(extra))

    def restrict(self, names: Iterable[AutomatonId]) -> "Configuration":
        """``S |` A`` — restriction to a subset of the automata."""
        keep = set(names)
        return Configuration([(a, s) for a, s in self.items() if a.name in keep])

    # -- value semantics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._automata)

    def __contains__(self, automaton: PSIOA | AutomatonId) -> bool:
        name = automaton.name if isinstance(automaton, PSIOA) else automaton
        return name in self._automata

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        body = ", ".join(f"{a.name!r}@{s!r}" for a, s in self.items())
        return f"Configuration({body})"

    @staticmethod
    def empty() -> "Configuration":
        return Configuration([])

    @staticmethod
    def initial(automata: Iterable[PSIOA]) -> "Configuration":
        """The configuration placing every automaton at its start state."""
        return Configuration([(a, a.start) for a in automata])
