"""Configurations and probabilistic configuration automata (paper Section 2.5).

This package implements the *dynamic* half of the formalism:

* :class:`~repro.config.configuration.Configuration` — a finite set of
  PSIOA identifiers with their current states (Definitions 2.9–2.12),
* preserving transitions ``C -a-> eta_p`` and intrinsic transitions
  ``C =a=>_phi eta`` in which automata are created and destroyed
  (Definitions 2.13–2.14),
* :class:`~repro.config.pca.CanonicalPCA` — probabilistic configuration
  automata (Definition 2.16) built from a dynamic-system specification so
  the simulation constraints hold by construction,
* PCA hiding and partial composition (Definitions 2.17 and 2.19),
* :func:`~repro.config.validate.validate_pca` — a checker for the four PCA
  constraints over any finite-reachable PCA.
"""

from repro.config.configuration import Configuration
from repro.config.transitions import preserving_transition, intrinsic_transition
from repro.config.pca import PCA, CanonicalPCA, ComposedPCA, compose_pca, hide_pca
from repro.config.validate import validate_pca, PcaError

__all__ = [
    "Configuration",
    "preserving_transition",
    "intrinsic_transition",
    "PCA",
    "CanonicalPCA",
    "ComposedPCA",
    "compose_pca",
    "hide_pca",
    "validate_pca",
    "PcaError",
]
