"""Preserving and intrinsic configuration transitions (paper Defs 2.13–2.14).

* The *preserving* transition ``C -a-> eta_p`` is the static step: the
  member automata with ``a`` in their current signature move jointly, the
  others stay, and the automaton set is unchanged.

* The *intrinsic* transition ``C =a=>_phi eta`` layers dynamics on top:
  the set ``phi`` of fresh automata is created with probability 1 (each at
  its start state), and the outcome is *reduced* — automata whose new
  signature is empty are destroyed, with their probability mass flowing to
  the reduced configuration (the ``eta_r`` construction of Definition 2.14).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.config.configuration import Configuration
from repro.core.psioa import PSIOA, PsioaError
from repro.core.signature import Action
from repro.obs.metrics import counter as _counter
from repro.probability.measures import DiscreteMeasure, dirac, product

__all__ = ["preserving_transition", "intrinsic_transition"]

#: PCA transition-expansion instruments: one increment per expansion, plus
#: the support sizes enumerated while reducing intrinsic outcomes.
_PRESERVING_CALLS = _counter("pca.transitions.preserving")
_INTRINSIC_CALLS = _counter("pca.transitions.intrinsic")
_SUPPORT_ENUMERATED = _counter("pca.support.enumerated")


def preserving_transition(configuration: Configuration, action: Action) -> DiscreteMeasure:
    """``C -a-> eta_p`` (Definition 2.13).

    Every member automaton with ``a`` in its current signature takes its own
    transition measure; the others contribute a Dirac factor.  The product
    measure over joint states is pushed onto configurations over the *same*
    automaton set (first bullet of Definition 2.13).
    """
    _PRESERVING_CALLS.inc()
    if not configuration.is_compatible():
        raise PsioaError(
            f"preserving transition from incompatible configuration: "
            f"{configuration.incompatibility_reason()}"
        )
    if action not in configuration.signature().all_actions:
        raise PsioaError(f"action {action!r} not in sig-hat of {configuration!r}")
    members: List[Tuple[PSIOA, object]] = list(configuration.items())
    factors: List[DiscreteMeasure] = []
    for automaton, state in members:
        if action in automaton.signature(state).all_actions:
            factors.append(automaton.transition(state, action))
        else:
            factors.append(dirac(state))
    joint = product(*factors)

    automata = [a for a, _ in members]

    def to_configuration(joint_state: Tuple) -> Configuration:
        return Configuration(list(zip(automata, joint_state)))

    return joint.map(to_configuration)


def intrinsic_transition(
    configuration: Configuration,
    action: Action,
    created: Iterable[PSIOA] = (),
) -> DiscreteMeasure:
    """``C =a=>_phi eta`` (Definition 2.14).

    Parameters
    ----------
    configuration:
        A *reduced*, compatible configuration.
    action:
        An action of ``sig-hat(C)``.
    created:
        The creation set ``phi`` — PSIOA whose identifiers must be disjoint
        from ``auts(C)`` (creation is deterministic; probabilistic creation
        is modelled by branching *before* the creating action, per the
        paper's footnote 3).

    Returns the reduced measure ``eta_r``: created automata are appended at
    their start states to every outcome of the preserving transition
    (``eta_nr``), and each outcome is then reduced, destroyed automata
    dropping out with their mass merged (last bullet of Definition 2.14).
    """
    _INTRINSIC_CALLS.inc()
    if not configuration.is_reduced():
        raise PsioaError(f"intrinsic transition requires a reduced configuration: {configuration!r}")
    phi: Sequence[PSIOA] = tuple(created)
    phi_names = [a.name for a in phi]
    if len(set(phi_names)) != len(phi_names):
        raise PsioaError(f"duplicate identifiers in creation set: {phi_names!r}")
    clash = set(phi_names) & set(configuration.ids())
    if clash:
        raise PsioaError(f"creation set overlaps configuration: {sorted(map(repr, clash))}")

    eta_p = preserving_transition(configuration, action)

    fresh: List[Tuple[PSIOA, object]] = [(a, a.start) for a in phi]

    reduced_weights: Dict[Configuration, object] = {}
    outcomes_enumerated = 0
    for outcome, weight in eta_p.items():
        outcomes_enumerated += 1
        non_reduced = outcome.with_members(fresh)  # eta_nr outcome
        reduced = non_reduced.reduce()  # eta_r merges mass over reduce fibres
        reduced_weights[reduced] = reduced_weights.get(reduced, 0) + weight
    _SUPPORT_ENUMERATED.inc(outcomes_enumerated)
    return DiscreteMeasure(reduced_weights)
