"""Probabilistic configuration automata (paper Definitions 2.16–2.19).

A PCA ``X`` is a PSIOA ``psioa(X)`` equipped with three extra mappings:

* ``config(X)`` — each state corresponds to a reduced compatible
  configuration,
* ``created(X)(q)(a)`` — the identifiers created when ``a`` fires at ``q``,
* ``hidden-actions(X)(q)`` — outputs of the configuration hidden at ``q``,

subject to the four constraints of Definition 2.16 (start preservation,
top/down simulation, bottom/up simulation, action hiding).

The library's primary constructor is :class:`CanonicalPCA`, whose states
*are* canonical reduced configurations; the simulation constraints then
hold by construction (the transition relation is literally the intrinsic
transition of Definition 2.14).  Arbitrary PCA can also be assembled and
checked with :func:`~repro.config.validate.validate_pca`.

PCA subclasses :class:`~repro.core.psioa.PSIOA`, so every PSIOA operation
(composition with environments, scheduling, renaming) applies unchanged —
this mirrors the paper's convention ``states(X) = states(psioa(X))`` etc.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Sequence, Tuple

from repro.config.configuration import Configuration
from repro.config.transitions import intrinsic_transition
from repro.core.composition import ComposedPSIOA
from repro.core.psioa import PSIOA, PsioaError
from repro.core.signature import Action, Signature, hide_signature
from repro.probability.measures import DiscreteMeasure

__all__ = ["PCA", "CanonicalPCA", "ComposedPCA", "HiddenPCA", "compose_pca", "hide_pca"]

State = Hashable


class PCA(PSIOA):
    """Abstract base of probabilistic configuration automata (Definition 2.16).

    Subclasses provide the three PCA mappings on top of the inherited PSIOA
    behaviour.  ``psioa(X)`` is the object itself (exposed as
    :attr:`as_psioa` for notational parity with the paper).
    """

    __slots__ = ()

    @property
    def as_psioa(self) -> PSIOA:
        """``psioa(X)`` — the underlying PSIOA (the PCA object itself)."""
        return self

    def config(self, state: State) -> Configuration:
        """``config(X)(q)`` — the reduced compatible configuration at ``q``."""
        raise NotImplementedError

    def created(self, state: State, action: Action) -> Tuple[PSIOA, ...]:
        """``created(X)(q)(a)`` — automata created when ``a`` fires at ``q``."""
        raise NotImplementedError

    def hidden_actions(self, state: State) -> frozenset:
        """``hidden-actions(X)(q)`` — configuration outputs hidden at ``q``."""
        raise NotImplementedError


class CanonicalPCA(PCA):
    """A PCA whose states are canonical reduced configurations.

    Parameters
    ----------
    name:
        PCA identifier.
    initial:
        Either a :class:`Configuration` placing every member at its start
        state, or an iterable of PSIOA (placed at their start states).
        Constraint 1 of Definition 2.16 (start preservation) is enforced.
    created:
        ``(configuration, action) -> iterable of PSIOA`` — the creation
        mapping; defaults to creating nothing.  Must return identifiers
        disjoint from the configuration (Definition 2.14).
    hidden:
        ``configuration -> iterable of actions`` — outputs to hide;
        defaults to hiding nothing.  Values are intersected with the
        configuration's outputs so constraint 4 cannot be violated.

    Constraints 2 and 3 (top/down and bottom/up simulation) hold by
    construction: the transition out of a state is *defined as* the
    intrinsic transition of its configuration, with ``config`` the identity
    correspondence.
    """

    __slots__ = ("_created_fn", "_hidden_fn", "_sig_cache")

    def __init__(
        self,
        name: Hashable,
        initial: Configuration | Iterable[PSIOA],
        *,
        created: Optional[Callable[[Configuration, Action], Iterable[PSIOA]]] = None,
        hidden: Optional[Callable[[Configuration], Iterable[Action]]] = None,
    ) -> None:
        if not isinstance(initial, Configuration):
            initial = Configuration.initial(initial)
        for automaton, state in initial.items():
            if state != automaton.start:
                raise PsioaError(
                    f"constraint 1 (start preservation): {automaton.name!r} starts at "
                    f"{state!r} instead of {automaton.start!r}"
                )
        start = initial.reduce()
        if not start.is_compatible():
            raise PsioaError(
                f"initial configuration incompatible: {start.incompatibility_reason()}"
            )
        self._created_fn = created or (lambda _c, _a: ())
        self._hidden_fn = hidden or (lambda _c: ())
        self._sig_cache: Dict[Configuration, Signature] = {}
        super().__init__(name, start, self._pca_signature, self._pca_transition)

    # -- PCA mappings -------------------------------------------------------------

    def config(self, state: State) -> Configuration:
        if not isinstance(state, Configuration):
            raise PsioaError(f"state of {self.name!r} must be a Configuration, got {state!r}")
        return state

    def created(self, state: State, action: Action) -> Tuple[PSIOA, ...]:
        return tuple(self._created_fn(self.config(state), action))

    def hidden_actions(self, state: State) -> frozenset:
        configuration = self.config(state)
        return frozenset(self._hidden_fn(configuration)) & configuration.signature().outputs

    # -- PSIOA behaviour ------------------------------------------------------------

    def _pca_signature(self, state: State) -> Signature:
        configuration = self.config(state)
        cached = self._sig_cache.get(configuration)
        if cached is None:
            cached = hide_signature(configuration.signature(), self.hidden_actions(state))
            self._sig_cache[configuration] = cached
        return cached

    def _pca_transition(self, state: State, action: Action) -> DiscreteMeasure:
        configuration = self.config(state)
        if action not in self._pca_signature(state).all_actions:
            raise PsioaError(f"action {action!r} not enabled at {configuration!r}")
        return intrinsic_transition(configuration, action, self.created(state, action))


class ComposedPCA(PCA):
    """Partial composition of PCA (Definition 2.19).

    ``psioa(X1 || ... || Xn) = psioa(X1) || ... || psioa(Xn)`` — realized by
    delegating PSIOA behaviour to a :class:`~repro.core.composition.ComposedPSIOA`
    over the component PCA.  The PCA mappings are pointwise unions:

    * ``config(q) = U_i config(X_i)(q |` X_i)`` (disjoint union),
    * ``created(q)(a) = U_i created(X_i)(q |` X_i)(a)`` with the convention
      that a component not having ``a`` in its signature contributes nothing,
    * ``hidden-actions(q) = U_i hidden-actions(X_i)(q |` X_i)``.
    """

    __slots__ = ("components", "_product")

    def __init__(self, components: Sequence[PCA], *, name: Optional[Hashable] = None) -> None:
        for component in components:
            if not isinstance(component, PCA):
                raise PsioaError(f"ComposedPCA requires PCA components, got {component!r}")
        self.components: Tuple[PCA, ...] = tuple(components)
        self._product = ComposedPSIOA(components, name=name)
        super().__init__(
            self._product.name,
            self._product.start,
            self._product.signature,
            self._product.transition,
        )

    def config(self, state: State) -> Configuration:
        configuration = Configuration.empty()
        for component, local in zip(self.components, state):
            configuration = configuration.union(component.config(local))
        return configuration

    def created(self, state: State, action: Action) -> Tuple[PSIOA, ...]:
        out: list = []
        seen = set()
        for component, local in zip(self.components, state):
            if action in component.signature(local).all_actions:
                for automaton in component.created(local, action):
                    if automaton.name not in seen:
                        seen.add(automaton.name)
                        out.append(automaton)
        return tuple(out)

    def hidden_actions(self, state: State) -> frozenset:
        hidden: frozenset = frozenset()
        for component, local in zip(self.components, state):
            hidden |= component.hidden_actions(local)
        return hidden


class HiddenPCA(PCA):
    """``hide(X, h)`` on PCA (Definition 2.17).

    Differs from ``X`` only in the signature and hidden-actions mappings:
    ``sig(X')(q) = hide(sig(X)(q), h(q))`` and
    ``hidden-actions(X')(q) = hidden-actions(X)(q) | h(q)``.
    """

    __slots__ = ("base", "_extra_hidden")

    def __init__(
        self,
        base: PCA,
        extra_hidden: Callable[[State], Iterable[Action]],
        *,
        name: Optional[Hashable] = None,
    ) -> None:
        self.base = base
        self._extra_hidden = extra_hidden
        derived_name = name if name is not None else ("hide", base.name)
        super().__init__(derived_name, base.start, self._hidden_signature, base.transition)

    def _hidden_signature(self, state: State) -> Signature:
        return hide_signature(self.base.signature(state), self._extra_hidden(state))

    def config(self, state: State) -> Configuration:
        return self.base.config(state)

    def created(self, state: State, action: Action) -> Tuple[PSIOA, ...]:
        return self.base.created(state, action)

    def hidden_actions(self, state: State) -> frozenset:
        extra = frozenset(self._extra_hidden(state)) & self.base.signature(state).outputs
        return self.base.hidden_actions(state) | extra


def compose_pca(*pcas: PCA, name: Optional[Hashable] = None) -> ComposedPCA:
    """Build ``X1 || ... || Xn`` (Definition 2.19)."""
    return ComposedPCA(pcas, name=name)


def hide_pca(
    pca: PCA,
    hidden: Callable[[State], Iterable[Action]],
    *,
    name: Optional[Hashable] = None,
) -> HiddenPCA:
    """``hide(X, h)`` (Definition 2.17)."""
    return HiddenPCA(pca, hidden, name=name)
