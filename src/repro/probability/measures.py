"""Discrete (sub-)probability measures (paper Section 2.1).

A *discrete probability measure* on a countable set ``S`` is a measure
``eta`` on ``(S, 2^S)`` with ``eta(C) = sum_{c in C} eta({c})`` and total
mass 1.  ``Disc(S)`` is the set of such measures.  This module provides a
sparse, immutable representation together with the operations the framework
needs:

* Dirac measures ``delta_s`` (Section 2.1),
* product measures ``eta_1 (x) eta_2`` (Section 2.1),
* pushforward (image) measures, used for insight functions (Definition 3.5),
* convex combinations, used by randomized schedulers (Definition 3.1),
* total-variation distance, which realizes the supremum in the balanced
  scheduler relation (Definition 3.6),
* the correspondence ``eta <-f-> eta'`` of Definition 2.15, used by the
  top/down and bottom/up simulation constraints of PCA (Definition 2.16).

Weights are arbitrary ``numbers.Real`` values; exact arithmetic (``int``,
``fractions.Fraction``) flows through untouched so that downstream theorem
checks can assert exact equalities.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.obs.metrics import counter as _counter

#: Hot-path instruments (bound once; an event is one attribute increment).
_COMPOSE_CALLS = _counter("measure.compose.calls")
_CONVEX_CALLS = _counter("measure.convex.calls")
_CORRESPONDENCE_CHECKS = _counter("measure.correspondence.checks")

__all__ = [
    "DiscreteMeasure",
    "SubDiscreteMeasure",
    "dirac",
    "uniform",
    "bernoulli",
    "from_pairs",
    "product",
    "convex_combination",
    "pushforward",
    "total_variation",
    "measures_correspond",
    "correspondence_bijection",
]

Outcome = Hashable

#: Tolerance used when weights are floats.  Exact weights ignore it.
FLOAT_TOLERANCE = 1e-9


def _is_exact(value: Any) -> bool:
    """True when ``value`` participates in exact (rational) arithmetic."""
    return isinstance(value, (int, Fraction)) and not isinstance(value, bool)


class DiscreteMeasure:
    """An immutable discrete measure with countable (finite) support.

    The measure is represented sparsely: only outcomes with non-zero weight
    are stored.  Instances are hashable and comparable by value, which makes
    them usable as transition targets inside automata tables.

    Parameters
    ----------
    weights:
        Mapping from outcome to weight.  Zero weights are dropped; negative
        weights are rejected.
    require_probability:
        When true (default), the total mass must equal 1 (within
        :data:`FLOAT_TOLERANCE` for floats).  Sub-probability measures (used
        by schedulers, Definition 3.1) set this to false via
        :class:`SubDiscreteMeasure`.
    """

    __slots__ = ("_weights", "_total", "_hash")

    def __init__(
        self,
        weights: Mapping[Outcome, Any],
        *,
        require_probability: bool = True,
    ) -> None:
        cleaned: Dict[Outcome, Any] = {}
        total: Any = 0
        for outcome, weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight {weight!r} for outcome {outcome!r}")
            if weight == 0:
                continue
            cleaned[outcome] = weight
            total = total + weight
        if require_probability:
            if _is_exact(total):
                if total != 1:
                    raise ValueError(f"total mass {total!r} != 1 for a probability measure")
            elif abs(total - 1.0) > FLOAT_TOLERANCE:
                raise ValueError(f"total mass {total!r} != 1 for a probability measure")
        else:
            if _is_exact(total):
                if total > 1:
                    raise ValueError(f"total mass {total!r} > 1 for a sub-probability measure")
            elif total - 1.0 > FLOAT_TOLERANCE:
                raise ValueError(f"total mass {total!r} > 1 for a sub-probability measure")
        self._weights: Dict[Outcome, Any] = cleaned
        self._total = total
        self._hash: int | None = None

    # -- basic protocol -----------------------------------------------------

    def __call__(self, outcome: Outcome) -> Any:
        """Measure of the singleton ``{outcome}`` (paper's ``eta(s)``)."""
        return self._weights.get(outcome, 0)

    def probability_of(self, event: Iterable[Outcome]) -> Any:
        """Measure of an arbitrary event ``C subset S``."""
        total: Any = 0
        for outcome in set(event):
            total = total + self._weights.get(outcome, 0)
        return total

    def support(self) -> frozenset:
        """``supp(eta)``: outcomes with non-zero mass (Section 2.1)."""
        return frozenset(self._weights)

    def items(self) -> Iterator[Tuple[Outcome, Any]]:
        return iter(self._weights.items())

    def outcomes(self) -> Iterator[Outcome]:
        return iter(self._weights)

    @property
    def total_mass(self) -> Any:
        return self._total

    @property
    def halting_mass(self) -> Any:
        """``1 - eta(S)``: the deficiency of a sub-probability measure.

        For schedulers this is the probability of halting after the current
        fragment (Definition 3.1).
        """
        return 1 - self._total

    def is_dirac(self) -> bool:
        return len(self._weights) == 1 and self._total == 1

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[Outcome]:
        return iter(self._weights)

    def __contains__(self, outcome: Outcome) -> bool:
        return outcome in self._weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteMeasure):
            return NotImplemented
        if self._weights.keys() != other._weights.keys():
            return False
        for outcome, weight in self._weights.items():
            other_weight = other._weights[outcome]
            if _is_exact(weight) and _is_exact(other_weight):
                if weight != other_weight:
                    return False
            elif abs(weight - other_weight) > FLOAT_TOLERANCE:
                return False
        return True

    def __hash__(self) -> int:
        if self._hash is None:
            # Hash on support only; weight-level equality stays semantic.
            self._hash = hash(frozenset(self._weights.keys()))
        return self._hash

    # The lazily cached hash is salted per interpreter (PYTHONHASHSEED), so
    # it must never survive a pickle round-trip into another process — the
    # persistent perf store ships measures across exactly that boundary.
    def __getstate__(self):
        return (self._weights, self._total)

    def __setstate__(self, state) -> None:
        self._weights = state[0]
        self._total = state[1]
        self._hash = None

    def __repr__(self) -> str:
        body = ", ".join(f"{o!r}: {w}" for o, w in sorted(self._weights.items(), key=repr))
        return f"DiscreteMeasure({{{body}}})"

    # -- operations ----------------------------------------------------------

    def map(self, function: Callable[[Outcome], Outcome]) -> "DiscreteMeasure":
        """Pushforward (image) measure under ``function``.

        This is the image-measure construction of Definition 3.5 (``f-dist``)
        restricted to measures with finite support.
        """
        image: Dict[Outcome, Any] = {}
        for outcome, weight in self._weights.items():
            target = function(outcome)
            image[target] = image.get(target, 0) + weight
        return DiscreteMeasure(image, require_probability=False if self._total != 1 else True)

    def product(self, other: "DiscreteMeasure") -> "DiscreteMeasure":
        """Product measure ``self (x) other`` over pairs (Section 2.1)."""
        return product(self, other)

    def condition(self, event: Iterable[Outcome]) -> "DiscreteMeasure":
        """Measure conditioned on ``event`` (renormalized restriction)."""
        event_set = set(event)
        restricted = {o: w for o, w in self._weights.items() if o in event_set}
        mass = sum(restricted.values())
        if mass == 0:
            raise ValueError("conditioning on a null event")
        if _is_exact(mass):
            scaled = {o: Fraction(w) / mass for o, w in restricted.items()}
        else:
            scaled = {o: w / mass for o, w in restricted.items()}
        return DiscreteMeasure(scaled)

    def scale(self, factor: Any) -> "SubDiscreteMeasure":
        """Scale all weights by ``factor in [0, 1]`` (sub-probability result)."""
        if factor < 0 or factor > 1:
            raise ValueError(f"scale factor {factor!r} outside [0, 1]")
        return SubDiscreteMeasure({o: w * factor for o, w in self._weights.items()})

    def as_probability(self) -> "DiscreteMeasure":
        """Re-validate as a full probability measure (mass 1)."""
        return DiscreteMeasure(dict(self._weights))

    def expectation(self, value: Callable[[Outcome], float]) -> float:
        """Expected value of a real-valued function of the outcome."""
        return sum(float(w) * value(o) for o, w in self._weights.items())


class SubDiscreteMeasure(DiscreteMeasure):
    """A discrete *sub*-probability measure: total mass at most 1.

    Used for scheduler decisions (``SubDisc(dtrans(A))`` in Definition 3.1),
    where the deficiency ``1 - sigma(alpha)(dtrans(A))`` is the probability
    of halting after the fragment ``alpha``.
    """

    __slots__ = ()

    def __init__(self, weights: Mapping[Outcome, Any]) -> None:
        super().__init__(weights, require_probability=False)

    @staticmethod
    def halt() -> "SubDiscreteMeasure":
        """The zero measure: halt with probability 1."""
        return SubDiscreteMeasure({})


# -- constructors -------------------------------------------------------------


def dirac(outcome: Outcome) -> DiscreteMeasure:
    """The Dirac measure ``delta_outcome`` (Section 2.1)."""
    return DiscreteMeasure({outcome: 1})


def uniform(outcomes: Iterable[Outcome], *, exact: bool = True) -> DiscreteMeasure:
    """Uniform measure over ``outcomes`` (exact rational weights by default)."""
    items = list(outcomes)
    if not items:
        raise ValueError("uniform measure over an empty set")
    if len(set(items)) != len(items):
        raise ValueError("uniform measure requires distinct outcomes")
    weight: Any = Fraction(1, len(items)) if exact else 1.0 / len(items)
    return DiscreteMeasure({o: weight for o in items})


def bernoulli(p: Any, *, true=True, false=False) -> DiscreteMeasure:
    """Two-point measure assigning ``p`` to ``true`` and ``1-p`` to ``false``."""
    if p == 0:
        return dirac(false)
    if p == 1:
        return dirac(true)
    return DiscreteMeasure({true: p, false: 1 - p})


def from_pairs(pairs: Iterable[Tuple[Outcome, Any]]) -> DiscreteMeasure:
    """Build a probability measure from (outcome, weight) pairs, summing duplicates."""
    weights: Dict[Outcome, Any] = {}
    for outcome, weight in pairs:
        weights[outcome] = weights.get(outcome, 0) + weight
    return DiscreteMeasure(weights)


def product(*measures: DiscreteMeasure) -> DiscreteMeasure:
    """Product measure over tuples: ``(eta_1 (x) ... (x) eta_n)(C1 x ... x Cn)
    = eta_1(C1) ... eta_n(Cn)`` (Section 2.1).

    The outcome space is the Cartesian product; outcomes are tuples.
    """
    _COMPOSE_CALLS.inc()
    if not measures:
        return dirac(())
    weights: Dict[Outcome, Any] = {(): 1}
    for eta in measures:
        new_weights: Dict[Outcome, Any] = {}
        for prefix, prefix_weight in weights.items():
            for outcome, weight in eta.items():
                new_weights[prefix + (outcome,)] = prefix_weight * weight
        weights = new_weights
    return DiscreteMeasure(weights, require_probability=all(m.total_mass == 1 for m in measures))


def convex_combination(
    components: Iterable[Tuple[Any, DiscreteMeasure]],
) -> DiscreteMeasure:
    """Mixture ``sum_i p_i . eta_i`` where the ``p_i`` sum to at most 1.

    Returns a probability measure when the coefficients sum to exactly 1 and
    every component is a probability measure; otherwise a sub-probability
    measure is returned.
    """
    _CONVEX_CALLS.inc()
    weights: Dict[Outcome, Any] = {}
    coefficient_total: Any = 0
    probability = True
    for coefficient, eta in components:
        if coefficient < 0:
            raise ValueError("negative mixture coefficient")
        coefficient_total = coefficient_total + coefficient
        if eta.total_mass != 1:
            probability = False
        for outcome, weight in eta.items():
            weights[outcome] = weights.get(outcome, 0) + coefficient * weight
    if probability and coefficient_total == 1:
        return DiscreteMeasure(weights)
    return SubDiscreteMeasure(weights)


def pushforward(eta: DiscreteMeasure, function: Callable[[Outcome], Outcome]) -> DiscreteMeasure:
    """Module-level alias of :meth:`DiscreteMeasure.map`."""
    return eta.map(function)


# -- comparisons ---------------------------------------------------------------


def total_variation(eta: DiscreteMeasure, theta: DiscreteMeasure) -> Any:
    """Total-variation distance ``sup_C |eta(C) - theta(C)|``.

    Definition 3.6 bounds, over every countable family of insight values, the
    absolute sum of pointwise differences; for discrete measures with finite
    support that supremum is exactly the total-variation distance computed
    here (take the family of outcomes where one measure exceeds the other).
    For sub-probability measures the halting deficiencies are treated as mass
    on a distinguished extra point, so two schedulers that halt with
    different probabilities are distinguishable.
    """
    positive: Any = 0
    negative: Any = 0
    outcomes = set(eta.outcomes()) | set(theta.outcomes())
    for outcome in outcomes:
        diff = eta(outcome) - theta(outcome)
        if diff > 0:
            positive = positive + diff
        else:
            negative = negative - diff
    halt_diff = eta.halting_mass - theta.halting_mass
    if halt_diff > 0:
        positive = positive + halt_diff
    else:
        negative = negative - halt_diff
    return positive if positive >= negative else negative


def correspondence_bijection(
    eta: DiscreteMeasure,
    theta: DiscreteMeasure,
    function: Callable[[Outcome], Outcome],
) -> Dict[Outcome, Outcome]:
    """Return the support bijection witnessing ``eta <-f-> theta`` (Def 2.15).

    Raises ``ValueError`` when the correspondence fails:

    * the restriction of ``function`` to ``supp(eta)`` must be a bijection
      onto ``supp(theta)``;
    * for every ``q in supp(eta)``: ``eta(q) == theta(function(q))``.
    """
    _CORRESPONDENCE_CHECKS.inc()
    mapping: Dict[Outcome, Outcome] = {}
    images = set()
    for outcome in eta.support():
        image = function(outcome)
        if image in images:
            raise ValueError(f"function not injective on support: duplicate image {image!r}")
        images.add(image)
        mapping[outcome] = image
        expected = eta(outcome)
        actual = theta(image)
        if _is_exact(expected) and _is_exact(actual):
            if expected != actual:
                raise ValueError(
                    f"weight mismatch at {outcome!r}: eta={expected!r}, theta(f(q))={actual!r}"
                )
        elif abs(expected - actual) > FLOAT_TOLERANCE:
            raise ValueError(
                f"weight mismatch at {outcome!r}: eta={expected!r}, theta(f(q))={actual!r}"
            )
    if images != set(theta.support()):
        missing = set(theta.support()) - images
        raise ValueError(f"function is not onto supp(theta); missing images {missing!r}")
    return mapping


def measures_correspond(
    eta: DiscreteMeasure,
    theta: DiscreteMeasure,
    function: Callable[[Outcome], Outcome],
) -> bool:
    """Boolean form of :func:`correspondence_bijection`."""
    try:
        correspondence_bijection(eta, theta, function)
    except ValueError:
        return False
    return True
