"""Polynomial and negligible functions (paper Definition 4.12, ``neg,pt``).

The implementation relation :math:`\\underline{A} \\le^{Sch,f}_{neg,pt}
\\underline{B}` quantifies over *polynomial* resource bounds
``p, q1, q2 : N -> N`` and a *negligible* error ``epsilon : N -> R``.
Asymptotic properties cannot be decided from finitely many samples, so this
module provides the finite-horizon analogue the experiment harness uses:

* :func:`fit_polynomial_envelope` fits the smallest-degree monomial envelope
  ``c * k^d`` dominating a sampled function and reports the fit quality;
* :func:`fit_negligible_envelope` fits a geometric envelope ``c * r^k``
  (``r < 1``) over the sampled error series and reports residuals, which is
  the operational meaning of "negligible" over a finite horizon;
* :func:`is_negligible_fit` is the boolean decision used by the checkers:
  the series must be eventually dominated by ``c * r^k`` for some ``r < 1``.

These are *diagnostics over finite families*, documented as a substitution in
DESIGN.md section 5: the paper's theorems construct the asymptotic objects
explicitly, and the harness verifies the construction pointwise for every
sampled ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

__all__ = [
    "PolynomialBound",
    "NegligibleFit",
    "fit_polynomial_envelope",
    "fit_negligible_envelope",
    "is_negligible_fit",
    "evaluate_bound",
]


@dataclass(frozen=True)
class PolynomialBound:
    """An explicit monomial bound ``b(k) = coefficient * k**degree + offset``.

    Used to express the resource bounds ``p, q1, q2`` of Definition 4.12 and
    the ``p_3``-bounded descriptions of Theorem 4.15 concretely.
    """

    coefficient: float
    degree: int
    offset: float = 0.0

    def __call__(self, k: int) -> float:
        return self.coefficient * (k ** self.degree) + self.offset

    def dominates(self, samples: Sequence[Tuple[int, float]]) -> bool:
        """True when ``b(k) >= value`` for every sampled ``(k, value)``."""
        return all(self(k) >= value for k, value in samples)

    def compose_linear(self, factor: float, other: "PolynomialBound") -> "PolynomialBound":
        """Envelope of ``factor * (self(k) + other(k))``.

        This mirrors Lemma 4.3: composition of ``b1``- and ``b2``-bounded
        automata is ``c_comp * (b1 + b2)``-bounded.  The result takes the max
        degree and sums coefficients/offsets, then scales by ``factor``.
        """
        degree = max(self.degree, other.degree)
        coefficient = factor * (self.coefficient + other.coefficient)
        offset = factor * (self.offset + other.offset)
        return PolynomialBound(coefficient, degree, offset)


@dataclass(frozen=True)
class NegligibleFit:
    """Result of fitting a geometric envelope ``c * ratio**k`` to an error series."""

    coefficient: float
    ratio: float
    max_residual: float
    samples: Tuple[Tuple[int, float], ...]

    @property
    def negligible(self) -> bool:
        """Negligible over the sampled horizon: decaying geometric envelope."""
        return self.ratio < 1.0 and self.max_residual <= 1e-9

    def __call__(self, k: int) -> float:
        return self.coefficient * (self.ratio ** k)


def fit_polynomial_envelope(
    samples: Sequence[Tuple[int, float]],
    *,
    max_degree: int = 6,
) -> PolynomialBound:
    """Smallest-degree monomial envelope ``c * k^d`` dominating the samples.

    The degree is chosen as the smallest ``d <= max_degree`` for which the
    implied coefficients ``value / k^d`` stop growing with ``k`` (within 5%),
    i.e. the data is genuinely ``O(k^d)``; the coefficient is the max implied
    coefficient so the envelope dominates every sample exactly.
    """
    cleaned = [(k, v) for k, v in samples if k >= 1]
    if not cleaned:
        raise ValueError("no samples with k >= 1")
    for degree in range(max_degree + 1):
        implied = [(k, v / (k ** degree)) for k, v in cleaned]
        implied.sort()
        coefficients = [c for _, c in implied]
        half = len(coefficients) // 2 or 1
        early = max(coefficients[:half])
        late = max(coefficients[half:]) if coefficients[half:] else early
        if late <= early * 1.05 + 1e-12:
            return PolynomialBound(max(coefficients), degree)
    return PolynomialBound(max(v / (k ** max_degree) for k, v in cleaned), max_degree)


def fit_negligible_envelope(samples: Sequence[Tuple[int, float]]) -> NegligibleFit:
    """Fit ``c * r^k`` dominating the sampled error series exactly.

    The ratio is estimated by least squares on ``log`` of the non-zero
    values; the coefficient is then raised so that the envelope dominates
    every sample (max residual 0 by construction, reported for transparency).
    A series that is identically zero fits ``0 * 0^k``.
    """
    cleaned = sorted((int(k), float(v)) for k, v in samples)
    if not cleaned:
        raise ValueError("empty error series")
    if any(v < 0 for _, v in cleaned):
        raise ValueError("negative error values")
    nonzero = [(k, v) for k, v in cleaned if v > 0]
    if not nonzero:
        return NegligibleFit(0.0, 0.0, 0.0, tuple(cleaned))
    if len(nonzero) == 1:
        k0, v0 = nonzero[0]
        return NegligibleFit(v0 * 2.0 ** k0, 0.5, 0.0, tuple(cleaned))
    xs = [k for k, _ in nonzero]
    ys = [math.log(v) for _, v in nonzero]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom if denom else 0.0
    ratio = math.exp(slope)
    # Raise the coefficient until the envelope dominates every sample.
    coefficient = max(v / (ratio ** k) for k, v in nonzero) if ratio > 0 else nonzero[-1][1]
    residual = max(max(0.0, v - coefficient * ratio ** k) for k, v in cleaned)
    return NegligibleFit(coefficient, ratio, residual, tuple(cleaned))


def is_negligible_fit(samples: Sequence[Tuple[int, float]], *, ratio_threshold: float = 0.95) -> bool:
    """Decide negligibility over the sampled horizon.

    True when the fitted geometric envelope decays (``ratio < ratio_threshold``)
    or the series is identically zero.  ``ratio_threshold`` slightly below 1
    guards against flat series masquerading as decaying through noise.
    """
    fit = fit_negligible_envelope(samples)
    if all(v == 0 for _, v in fit.samples):
        return True
    return fit.ratio < ratio_threshold


def evaluate_bound(bound: Callable[[int], float], ks: Sequence[int]) -> Tuple[Tuple[int, float], ...]:
    """Tabulate a bound over indices — convenience for reports."""
    return tuple((k, float(bound(k))) for k in ks)
