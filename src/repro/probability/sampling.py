"""Seeded sampling from discrete measures.

The framework computes execution measures *exactly* (``repro.semantics.measure``);
sampling is used by the Monte-Carlo cross-validation layer
(``repro.analysis.montecarlo``) and by the randomized workload generators.
All randomness flows through an explicit ``numpy.random.Generator`` so every
experiment is bit-reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence

import numpy as np

from repro.probability.measures import DiscreteMeasure

__all__ = ["sample", "sample_many", "empirical_measure", "generator"]


def generator(seed: int) -> np.random.Generator:
    """A seeded PCG64 generator (single entry point for reproducibility)."""
    return np.random.default_rng(seed)


def sample(eta: DiscreteMeasure, rng: np.random.Generator) -> Hashable:
    """Draw one outcome from ``eta``.

    For sub-probability measures the deficiency is exposed as the outcome
    ``None`` — callers that model scheduler halting rely on this convention
    (a scheduler decision of mass < 1 halts with the residual probability,
    Definition 3.1).
    """
    outcomes: List[Hashable] = []
    weights: List[float] = []
    for outcome, weight in eta.items():
        outcomes.append(outcome)
        weights.append(float(weight))
    deficiency = float(eta.halting_mass)
    if deficiency > 1e-12:
        outcomes.append(None)
        weights.append(deficiency)
    total = sum(weights)
    probabilities = np.asarray(weights, dtype=np.float64) / total
    index = rng.choice(len(outcomes), p=probabilities)
    return outcomes[index]


def sample_many(eta: DiscreteMeasure, count: int, rng: np.random.Generator) -> List[Hashable]:
    """Draw ``count`` i.i.d. outcomes (vectorized over the support)."""
    outcomes: List[Hashable] = []
    weights: List[float] = []
    for outcome, weight in eta.items():
        outcomes.append(outcome)
        weights.append(float(weight))
    deficiency = float(eta.halting_mass)
    if deficiency > 1e-12:
        outcomes.append(None)
        weights.append(deficiency)
    probabilities = np.asarray(weights, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    indices = rng.choice(len(outcomes), size=count, p=probabilities)
    return [outcomes[i] for i in indices]


def empirical_measure(samples: Sequence[Hashable]) -> DiscreteMeasure:
    """Empirical distribution of a sample batch (float weights)."""
    if not samples:
        raise ValueError("empty sample batch")
    counts: Dict[Hashable, int] = {}
    for item in samples:
        counts[item] = counts.get(item, 0) + 1
    n = len(samples)
    return DiscreteMeasure({o: c / n for o, c in counts.items()})
