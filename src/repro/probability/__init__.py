"""Probability substrate for the dynamic secure-emulation framework.

This package implements the measure-theoretic preliminaries of the paper
(Section 2.1): discrete probability measures ``Disc(S)``, Dirac measures,
product measures, supports, and the :math:`\\eta \\overset{f}{\\leftrightarrow}
\\eta'` correspondence of Definition 2.15, plus the asymptotic machinery
(polynomial and negligible functions) used by the bounded layer (Section 4).

All measures are *discrete* and represented sparsely as ``outcome -> weight``
mappings.  Weights may be exact (``int``/``fractions.Fraction``) or floating
point; exactness is preserved whenever the inputs are exact, which lets the
theorem-validation harness assert exact equalities (e.g. the ``epsilon = 0``
conclusion of Lemma 4.29).
"""

from repro.probability.measures import (
    DiscreteMeasure,
    SubDiscreteMeasure,
    dirac,
    uniform,
    bernoulli,
    from_pairs,
    product,
    convex_combination,
    pushforward,
    total_variation,
    measures_correspond,
    correspondence_bijection,
)
from repro.probability.asymptotics import (
    PolynomialBound,
    fit_polynomial_envelope,
    is_negligible_fit,
    fit_negligible_envelope,
    NegligibleFit,
)
from repro.probability.sampling import sample, sample_many, empirical_measure

__all__ = [
    "DiscreteMeasure",
    "SubDiscreteMeasure",
    "dirac",
    "uniform",
    "bernoulli",
    "from_pairs",
    "product",
    "convex_combination",
    "pushforward",
    "total_variation",
    "measures_correspond",
    "correspondence_bijection",
    "PolynomialBound",
    "fit_polynomial_envelope",
    "is_negligible_fit",
    "fit_negligible_envelope",
    "NegligibleFit",
    "sample",
    "sample_many",
    "empirical_measure",
]
