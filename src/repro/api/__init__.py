"""The stable programmatic surface of the reproduction.

Everything a caller needs to run experiments lives here — the CLI
(:mod:`repro.experiments.runner`), the job service (:mod:`repro.service`)
and the test suite are all thin wrappers over these entry points, so the
three can never disagree about what a run means:

* :func:`resolve_config` / :class:`RunConfig` — every runner knob in one
  frozen bundle, resolved with a single documented precedence
  (explicit overrides > environment gates > defaults).
* :func:`run_experiment` — one crash-isolated, timeout-guarded experiment;
  returns its :class:`~repro.experiments.common.ExperimentOutcome`.
* :func:`run_sweep` / :func:`run_suite` — a selection of experiments under
  one config; ``run_sweep`` returns the validated run report alone,
  ``run_suite`` additionally exposes records and the exit code.
* :func:`load_report` — read and validate a saved ``--metrics-out`` file.
* :func:`list_experiments` — known experiment ids and their claims.

Deep imports of runner internals (``from repro.experiments.runner import
build_report``, ...) are deprecated; they still resolve through a
:class:`DeprecationWarning` shim but new code should import from here or
from the canonical defining modules.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.api.config import ConfigError, RunConfig, resolve_config
from repro.api.suite import (
    SuiteResult,
    UnknownExperimentError,
    list_experiments,
    load_report,
    run_suite,
)

__all__ = [
    "ConfigError",
    "RunConfig",
    "SuiteResult",
    "UnknownExperimentError",
    "list_experiments",
    "load_report",
    "resolve_config",
    "run_experiment",
    "run_suite",
    "run_sweep",
]


def run_experiment(
    experiment_id: str, *, config: Optional[RunConfig] = None, **overrides: Any
):
    """Run one experiment under ``config`` (or config resolved from
    ``overrides`` + the environment); returns its ``ExperimentOutcome``.

    The experiment runs exactly as the suite would run it: crash-isolated
    (unless the config says otherwise), timeout-guarded, seeded and with
    the environment gates exported for its children.
    """
    from repro.experiments.common import ALL_EXPERIMENTS, run_experiment_guarded

    if config is None:
        config = resolve_config(**overrides)
    elif overrides:
        raise ConfigError("pass either config or overrides, not both")
    if experiment_id not in ALL_EXPERIMENTS:
        raise UnknownExperimentError([experiment_id])
    config.apply()
    return run_experiment_guarded(
        experiment_id,
        fast=not config.full,
        timeout=config.timeout,
        retries=config.retries,
        seed=config.seed,
        isolated=config.isolated,
    )


def run_sweep(
    experiments=None,
    *,
    config: Optional[RunConfig] = None,
    metrics_out: Optional[str] = None,
    **overrides: Any,
) -> Dict[str, Any]:
    """Run a selection of experiments and return the validated run report.

    The report is exactly what ``--metrics-out`` writes (and is written to
    ``metrics_out`` when given); per-experiment outcomes are in its
    ``experiments`` records, overall health in ``summary``.
    """
    if config is None:
        config = resolve_config(**overrides)
    elif overrides:
        raise ConfigError("pass either config or overrides, not both")
    return run_suite(experiments, config=config, metrics_out=metrics_out).report
