"""The suite engine behind the CLI and the job service.

:func:`run_suite` is the body the runner's ``main`` historically inlined:
apply a resolved :class:`~repro.api.config.RunConfig`, run the selected
experiments (crash-isolated, optionally ``parallel`` at a time), render
each record through :mod:`repro.obs.report`, and wrap everything into a
schema-valid run report.  The CLI prints the emitted lines; the service
captures the report per job; tests call it in-process — all three share
this one code path, so their outputs cannot drift.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.common import (
    ALL_EXPERIMENTS,
    DEFAULT_SEED,
    run_experiment_guarded,
)
from repro.obs import analyze as obs_analyze
from repro.obs import distributed as obs_distributed
from repro.obs import profile as obs_profile
from repro.obs import progress as obs_progress
from repro.obs.report import (
    ReportSchemaError,
    build_report,
    cache_summary,
    format_record,
    format_suite_summary,
    outcome_record,
    profile_summary,
    resilience_summary,
    validate_report,
)
from repro.perf import backends as perf_backends
from repro.perf import store as perf_store
from repro.perf.supervise import SupervisionPolicy

from repro.api.config import RunConfig

__all__ = [
    "SuiteResult",
    "UnknownExperimentError",
    "list_experiments",
    "load_report",
    "run_suite",
]


class UnknownExperimentError(ValueError):
    """A selection names experiment ids the registry does not know."""

    def __init__(self, unknown: Sequence[str]) -> None:
        self.unknown = list(unknown)
        super().__init__(
            f"unknown experiment(s) {', '.join(map(repr, self.unknown))}; "
            f"known: {', '.join(ALL_EXPERIMENTS)}"
        )


def list_experiments() -> Dict[str, str]:
    """Known experiment ids mapped to their claim strings (registry order)."""
    return {
        experiment_id: claim
        for experiment_id, (_module, claim) in ALL_EXPERIMENTS.items()
    }


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a ``--metrics-out`` report file.

    Raises :class:`repro.obs.report.ReportSchemaError` for schema
    violations and ``OSError`` / ``json.JSONDecodeError`` for unreadable
    files — callers that just want "valid or not" can catch ``ValueError``
    plus ``OSError``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_report(payload)
    return payload


@dataclass
class SuiteResult:
    """Everything one suite run produced."""

    #: canonical per-experiment records, in experiment order
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: the schema-valid run report wrapping the records
    report: Dict[str, Any] = field(default_factory=dict)
    #: 0 all passed, 1 any experiment did not pass
    exit_code: int = 0

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


def run_suite(
    experiments: Optional[Sequence[str]] = None,
    *,
    config: Optional[RunConfig] = None,
    argv: Optional[Sequence[str]] = None,
    metrics_out: Optional[str] = None,
    emit: Optional[Callable[[str], None]] = None,
    on_record: Optional[Callable[[str, Dict[str, Any], int, int], None]] = None,
) -> SuiteResult:
    """Run ``experiments`` (default: all) under ``config`` (default: resolved
    purely from the environment) and return records + a validated report.

    ``emit`` receives every human-output line (the CLI passes ``print``;
    the service captures them into its job log).  ``on_record`` fires
    after each experiment completes with ``(experiment_id, record, done,
    total)`` — the service turns these into job progress events.  The
    report is also written to ``metrics_out`` when given.
    """
    from repro.api.config import resolve_config

    if config is None:
        config = resolve_config()
    selected = list(experiments) if experiments else list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown)

    def say(line: str) -> None:
        if emit is not None:
            emit(line)

    # One resolution, one application: children and workers inherit the
    # exported environment, this process configures its live subsystems.
    config.apply()
    cache_enabled = config.cache != "off"
    # The profiler may have been enabled programmatically by an embedding
    # caller (without the flag or REPRO_PROFILE); honor the live switch.
    profiling = config.profile or obs_profile.PROFILER.enabled
    supervision_policy = SupervisionPolicy.from_env()
    backend_block = perf_backends.make_backend(perf_backends.current_spec()).describe()

    suite_start = time.perf_counter()

    def trace_path_for(experiment_id: str) -> Optional[str]:
        if not config.trace_dir:
            return None
        return os.path.join(config.trace_dir, f"{experiment_id}.trace.json")

    def profile_path_for(experiment_id: str) -> Optional[str]:
        if not config.profile_dir:
            return None
        return os.path.join(config.profile_dir, f"{experiment_id}.folded")

    def run_one(experiment_id: str):
        return run_experiment_guarded(
            experiment_id,
            fast=not config.full,
            timeout=config.timeout,
            retries=config.retries,
            seed=config.seed,
            isolated=config.isolated,
            trace_path=trace_path_for(experiment_id),
            profile_path=profile_path_for(experiment_id),
        )

    records: List[Dict[str, Any]] = []
    # Profile lanes and folded files ride the outcomes, not the records:
    # per-experiment records must stay byte-identical with profiling on or
    # off, so phase data only ever lands in summary.profile.
    profile_lanes: List[Dict[str, Any]] = []
    folded_files: List[str] = []

    def record_outcome(experiment_id: str, outcome) -> bool:
        record = outcome_record(
            outcome,
            ALL_EXPERIMENTS[experiment_id][1],
            default_seed=DEFAULT_SEED,
            trace_file=outcome.trace_path,
        )
        records.append(record)
        for lane in outcome.profile or []:
            profile_lanes.append(
                {
                    "pid": lane.get("pid", 0),
                    "lane": f"{experiment_id}: {lane.get('lane', '?')}",
                    "phases": lane.get("phases") or {},
                }
            )
        if outcome.profile_path:
            folded_files.append(outcome.profile_path)
        say(format_record(record))
        say("")
        obs_progress.advance()
        if on_record is not None:
            on_record(experiment_id, record, len(records), len(selected))
        return outcome.ok

    obs_progress.begin("experiments", len(selected), "experiments")

    if config.parallel > 1:
        # Pre-import every selected experiment module, so forked children
        # never race the import machinery from worker threads.
        import importlib

        for experiment_id in selected:
            module_name, _claim = ALL_EXPERIMENTS[experiment_id]
            if "." not in module_name:
                module_name = f"repro.experiments.{module_name}"
            try:
                importlib.import_module(module_name)
            except Exception:  # noqa: BLE001 - the guarded child reports it
                pass
        from concurrent.futures import ThreadPoolExecutor

        # Each worker thread just babysits an isolated child process, so
        # threads-per-experiment is cheap.  Futures are *consumed in
        # experiment order*: output and the report are identical at every
        # worker count (only wall-clock fields differ).
        with ThreadPoolExecutor(max_workers=config.parallel) as pool:
            futures = [(e, pool.submit(run_one, e)) for e in selected]
            for experiment_id, future in futures:
                ok = record_outcome(experiment_id, future.result())
                if not ok and not config.keep_going:
                    for _e, pending in futures:
                        pending.cancel()
                    break
    else:
        for experiment_id in selected:
            ok = record_outcome(experiment_id, run_one(experiment_id))
            if not ok and not config.keep_going:
                break

    obs_progress.finish()
    say(format_suite_summary(records))

    # When a persistent store is active, describe it in the cache block
    # (directory, entry count, byte size); stat failures must never fail
    # the run, and store-less runs keep the block byte-identical to before.
    persistent_block = None
    if cache_enabled:
        store = perf_store.active_store()
        if store is not None:
            try:
                persistent_block = store.stats()
            except OSError:
                persistent_block = None
    cache_block = cache_summary(
        records, enabled=cache_enabled, persistent=persistent_block
    )
    if config.cache == "stats":
        counters = cache_block["counters"]
        hits = sum(v for k, v in counters.items() if k.endswith(".hits"))
        misses = sum(v for k, v in counters.items() if k.endswith(".misses"))
        say(
            f"cache: enabled={cache_enabled} hits={hits} misses={misses} "
            f"({len(counters)} perf counters; see summary.cache in --metrics-out)"
        )

    # The trace summary exists only when tracing actually produced files,
    # so untraced runs emit reports byte-identical to pre-tracing ones.
    trace_block = None
    analysis_block = None
    trace_files = [
        r["trace_file"]
        for r in records
        if r.get("trace_file") and os.path.exists(r["trace_file"])
    ]
    if trace_files:
        try:
            merged = obs_distributed.merge_trace_files(trace_files)
            trace_block = obs_distributed.summarize_events(merged["traceEvents"])
            trace_block["files"] = list(trace_files)
            # Analytics piggyback on tracing alone (never on profiling), so
            # the profile on/off differential guarantee holds.
            analysis_block = obs_analyze.analyze_events(merged["traceEvents"])
        except (OSError, ValueError, json.JSONDecodeError):
            trace_block = None  # a corrupt trace must not fail the run
            analysis_block = None

    # Same only-when-active contract for the phase-profile block.
    profile_block = None
    if profiling:
        profile_block = profile_summary(
            profile_lanes,
            enabled=True,
            folded_files=folded_files if folded_files else None,
        )

    # Like the trace block, the resilience block exists only when
    # supervision was actually on, so unsupervised runs emit reports
    # byte-identical to pre-supervision ones.
    resilience_block = None
    if supervision_policy.enabled:
        resilience_block = resilience_summary(
            records,
            supervised=True,
            chunk_deadline_s=supervision_policy.chunk_deadline_s,
        )

    payload = build_report(
        records,
        argv=list(argv) if argv is not None else None,
        fast=not config.full,
        wall_time_s=time.perf_counter() - suite_start,
        cache=cache_block,
        backend=backend_block,
        trace=trace_block,
        resilience=resilience_block,
        profile=profile_block,
        analysis=analysis_block,
        config=config.describe(),
    )
    if metrics_out:
        parent = os.path.dirname(metrics_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, default=repr)
        say(f"metrics report written to {metrics_out}")

    exit_code = 1 if any(not r["ok"] for r in records) else 0
    return SuiteResult(records=records, report=payload, exit_code=exit_code)
