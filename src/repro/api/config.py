"""The unified run configuration: every runner knob in one frozen bundle.

Historically each toggle (``--cache``, ``--backend``, ``--supervise``,
``REPRO_CACHE_DIR``, ...) was resolved ad hoc at its own call site, which
made the effective precedence differ between the CLI process, its forked
experiment children and standalone socket workers.  :class:`RunConfig`
replaces that with **one documented resolution order**, applied in exactly
one place (:func:`resolve_config`):

1. **Explicit overrides** — CLI flags the user actually passed, or the
   fields of a service job submission.  A flag the user did *not* pass is
   represented as ``None`` (or ``False`` for pure switches) and falls
   through to the next layer.
2. **Environment gates** — ``REPRO_CACHE``, ``REPRO_CACHE_DIR``,
   ``REPRO_BACKEND``, ``REPRO_SUPERVISE``, ``REPRO_CHUNK_DEADLINE``,
   ``REPRO_PROFILE``, ``REPRO_TRACE``, ``REPRO_PROGRESS``.
3. **Defaults** — the dataclass field defaults below.

The resolved config is *total*: :meth:`RunConfig.apply` re-exports every
gate into ``os.environ`` (children fork with it, sweep backends ship it to
socket workers) and configures the in-process subsystems, so a fork child
and a fresh worker interpreter resolve the **same** effective settings the
parent did.  :meth:`RunConfig.describe` renders the config as a JSON-safe
dict — embedded verbatim in service job submissions and recorded in the
run report's ``summary.config`` block.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

__all__ = ["ConfigError", "RunConfig", "resolve_config"]

_OFF_VALUES = ("off", "0", "false", "no")
_ON_VALUES = ("1", "on", "true", "yes")

#: Fields whose value can come from an environment gate (layer 2) when the
#: caller did not override them explicitly (layer 1).
ENV_GATES = {
    "cache": "REPRO_CACHE",
    "cache_dir": "REPRO_CACHE_DIR",
    "backend": "REPRO_BACKEND",
    "supervise": "REPRO_SUPERVISE",
    "chunk_deadline": "REPRO_CHUNK_DEADLINE",
    "profile": "REPRO_PROFILE",
    "trace": "REPRO_TRACE",
    "progress": "REPRO_PROGRESS",
}


class ConfigError(ValueError):
    """A run configuration that cannot be resolved (bad value or combination)."""


def _switch(raw: str) -> bool:
    return raw.strip().lower() in _ON_VALUES + ("plain",)


@dataclass(frozen=True)
class RunConfig:
    """Every knob of one experiment/sweep run, resolved and validated.

    Instances are frozen: the CLI parses into one, the service embeds one
    per job, and the report records one — all three see the same object
    shape with the same precedence already applied.  Build instances with
    :func:`resolve_config` (or :meth:`from_dict` for wire payloads); the
    bare constructor skips environment resolution.
    """

    #: run the larger (``--full``) sweeps instead of the fast ones
    full: bool = False
    #: wall-clock seconds per experiment attempt; ``None`` = unbounded
    timeout: Optional[float] = 600.0
    #: extra attempts for a non-passing experiment (seed rotates)
    retries: int = 0
    #: base seed for sampling experiments; ``None`` = experiment default
    seed: Optional[int] = None
    #: run each experiment in its own subprocess (timeouts enforced)
    isolated: bool = True
    #: continue the suite after a failing experiment
    keep_going: bool = True
    #: experiments run concurrently (isolated children babysat by threads)
    parallel: int = 1
    #: memoization layer: ``"on"``, ``"off"``, or ``"stats"`` (on + stats line)
    cache: str = "on"
    #: disk-backed content-addressed store directory (``REPRO_CACHE_DIR``)
    cache_dir: Optional[str] = None
    #: sweep execution backend spec; ``None`` = serial
    backend: Optional[str] = None
    #: self-healing transport layer for remote sweep backends
    supervise: bool = False
    #: wall-clock bound per sweep chunk; ``None`` = policy default, ``0`` = off
    chunk_deadline: Optional[float] = None
    #: export Chrome-trace spans (``REPRO_TRACE``)
    trace: bool = False
    #: save one trace JSON per experiment into this directory
    trace_dir: Optional[str] = None
    #: deterministic phase profiler (``REPRO_PROFILE``)
    profile: bool = False
    #: save one collapsed-stack ``.folded`` file per experiment (implies profile)
    profile_dir: Optional[str] = None
    #: live stderr progress heartbeats (``REPRO_PROGRESS``)
    progress: bool = False

    def __post_init__(self) -> None:
        if self.cache not in ("on", "off", "stats"):
            raise ConfigError(
                f"cache must be 'on', 'off' or 'stats', got {self.cache!r}"
            )
        if not isinstance(self.parallel, int) or isinstance(self.parallel, bool):
            raise ConfigError(f"parallel must be an integer, got {self.parallel!r}")
        if self.parallel < 1:
            raise ConfigError(f"parallel must be >= 1, got {self.parallel!r}")
        if self.parallel > 1 and not self.isolated:
            raise ConfigError("parallel > 1 requires isolation")
        if not isinstance(self.retries, int) or isinstance(self.retries, bool):
            raise ConfigError(f"retries must be an integer, got {self.retries!r}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries!r}")
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise ConfigError(f"seed must be an integer or null, got {self.seed!r}")
        for name in ("timeout", "chunk_deadline"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ConfigError(f"{name} must be a number or null, got {value!r}")
        for name in ("full", "isolated", "keep_going", "supervise",
                     "trace", "profile", "progress"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigError(
                    f"{name} must be a boolean, got {getattr(self, name)!r}"
                )
        for name in ("cache_dir", "backend", "trace_dir", "profile_dir"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise ConfigError(f"{name} must be a string or null, got {value!r}")

    # -- wire formats ------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunConfig":
        """Rebuild a config from a :meth:`describe`-shaped mapping.

        Unknown keys are a :class:`ConfigError` (a malformed submission
        must be rejected, not silently truncated)."""
        if not isinstance(payload, Mapping):
            raise ConfigError(f"config must be an object, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown config field(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**dict(payload))

    def describe(self) -> Dict[str, Any]:
        """The JSON-safe rendering: job submissions and ``summary.config``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    to_dict = describe

    # -- applying ----------------------------------------------------------------

    def apply(self) -> None:
        """Export every gate to ``os.environ`` and configure this process.

        After this call, forked experiment children, fork sweep children
        and freshly-spawned socket workers all resolve the same effective
        settings this process did — the environment *is* the resolved
        config, so there is no second resolution that could drift.
        """
        from repro.obs import profile as obs_profile
        from repro.obs import progress as obs_progress
        from repro.perf import backends as perf_backends
        from repro.perf import cache as perf_cache

        cache_enabled = self.cache != "off"
        os.environ["REPRO_CACHE"] = "on" if cache_enabled else "off"
        perf_cache.configure(enabled=cache_enabled)

        if self.cache_dir:
            os.environ["REPRO_CACHE_DIR"] = self.cache_dir
        else:
            os.environ.pop("REPRO_CACHE_DIR", None)

        if self.backend is not None:
            os.environ["REPRO_BACKEND"] = self.backend
            perf_backends.configure_backend(self.backend)
        else:
            os.environ.pop("REPRO_BACKEND", None)
            perf_backends.configure_backend(None)

        if self.supervise:
            os.environ["REPRO_SUPERVISE"] = "on"
            if self.seed is not None and "REPRO_SUPERVISE_SEED" not in os.environ:
                os.environ["REPRO_SUPERVISE_SEED"] = str(self.seed)
        else:
            os.environ.pop("REPRO_SUPERVISE", None)
        if self.chunk_deadline is not None:
            os.environ["REPRO_CHUNK_DEADLINE"] = str(self.chunk_deadline)
        else:
            os.environ.pop("REPRO_CHUNK_DEADLINE", None)

        if self.profile:
            os.environ["REPRO_PROFILE"] = "on"
            obs_profile.enable()
        else:
            os.environ.pop("REPRO_PROFILE", None)

        if self.trace:
            os.environ["REPRO_TRACE"] = "on"
        else:
            os.environ.pop("REPRO_TRACE", None)

        if self.progress:
            # A user-set REPRO_PROGRESS=plain keeps its forced rendering mode.
            if not obs_progress.env_plain():
                os.environ["REPRO_PROGRESS"] = "on"
            obs_progress.enable()
        else:
            os.environ.pop("REPRO_PROGRESS", None)
            obs_progress.disable()


def resolve_config(
    *, env: Optional[Mapping[str, str]] = None, **overrides: Any
) -> RunConfig:
    """Resolve a :class:`RunConfig`: explicit overrides > env gates > defaults.

    ``overrides`` are the caller's explicit choices (CLI flags, a job
    submission's config fields).  ``None`` means "not specified" for every
    value field, and ``False`` means "not specified" for the pure switches
    (``supervise``, ``trace``, ``profile``, ``progress``) — a switch flag
    can only turn a feature *on*; turning one off against the environment
    is done through the environment (matching the CLI's historic
    semantics).  Unknown override names raise :class:`ConfigError`.

    Values are normalized here, once: the backend spec is canonicalized
    (``fork`` -> ``fork:8``), ``cache_dir`` is made absolute, a
    non-positive ``timeout`` becomes ``None`` (unbounded) and
    ``profile_dir`` implies ``profile``.
    """
    environ = os.environ if env is None else env
    known = {f.name for f in fields(RunConfig)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ConfigError(
            f"unknown config field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )

    values: Dict[str, Any] = {}

    # Layer 2: environment gates (only consulted when layer 1 is silent).
    def env_raw(field: str) -> Optional[str]:
        raw = environ.get(ENV_GATES[field], "")
        raw = raw.strip()
        return raw or None

    def pick(field: str, *, switch: bool = False) -> Any:
        given = overrides.get(field)
        if switch:
            if given:
                return True
        elif given is not None:
            return given
        return None

    # Plain (non-env-gated) fields: explicit override or dataclass default.
    for name in ("full", "isolated", "keep_going"):
        if name in overrides and overrides[name] is not None:
            values[name] = bool(overrides[name])
    for name in ("timeout", "retries", "seed", "parallel", "trace_dir",
                 "profile_dir"):
        if name in overrides and overrides[name] is not None:
            values[name] = overrides[name]

    # cache: flag choice wins; else REPRO_CACHE (on/off only — "stats" is a
    # CLI/submission-level request, not an environment mode).
    explicit_cache = pick("cache")
    if explicit_cache is not None:
        values["cache"] = explicit_cache
    else:
        raw = env_raw("cache")
        if raw is not None:
            values["cache"] = "off" if raw.lower() in _OFF_VALUES else "on"

    explicit_dir = pick("cache_dir")
    if explicit_dir is not None:
        values["cache_dir"] = explicit_dir
    else:
        raw = env_raw("cache_dir")
        if raw is not None:
            values["cache_dir"] = raw

    explicit_backend = pick("backend")
    if explicit_backend is not None:
        values["backend"] = explicit_backend
    else:
        raw = env_raw("backend")
        if raw is not None:
            values["backend"] = raw

    if pick("supervise", switch=True):
        values["supervise"] = True
    else:
        raw = env_raw("supervise")
        if raw is not None:
            values["supervise"] = _switch(raw)

    explicit_deadline = pick("chunk_deadline")
    if explicit_deadline is not None:
        values["chunk_deadline"] = explicit_deadline
    else:
        raw = env_raw("chunk_deadline")
        if raw is not None:
            try:
                values["chunk_deadline"] = float(raw)
            except ValueError:
                raise ConfigError(
                    f"REPRO_CHUNK_DEADLINE needs a number, got {raw!r}"
                )

    for switch_field in ("trace", "profile", "progress"):
        if pick(switch_field, switch=True):
            values[switch_field] = True
        else:
            raw = env_raw(switch_field)
            if raw is not None:
                values[switch_field] = _switch(raw)

    # Layer 3 is the dataclass defaults; construct (validates) then normalize.
    try:
        config = RunConfig(**values)
    except TypeError as exc:
        raise ConfigError(str(exc))

    updates: Dict[str, Any] = {}
    if config.timeout is not None and config.timeout <= 0:
        updates["timeout"] = None
    if config.cache_dir is not None:
        updates["cache_dir"] = os.path.abspath(config.cache_dir)
    if config.backend is not None:
        from repro.perf import backends as perf_backends

        try:
            updates["backend"] = perf_backends.normalize_spec(config.backend)
        except perf_backends.BackendSpecError as exc:
            raise ConfigError(f"invalid backend spec: {exc}")
    if config.profile_dir and not config.profile:
        updates["profile"] = True
    return replace(config, **updates) if updates else config
