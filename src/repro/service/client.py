"""A stdlib client for the sweep service (and the CI smoke driver).

:class:`ServiceClient` wraps the ``/v1`` JSON API with plain
``urllib.request`` — submit, poll, wait, fetch reports, stream events.
Errors come back as :class:`ServiceClientError` carrying the HTTP status
and the decoded error body (so a 429's ``retry_after_s`` is one attribute
away).

The module doubles as a tiny CLI for scripting and CI smoke tests::

    python -m repro.service.client --url http://127.0.0.1:8642 health
    python -m repro.service.client --url ... submit E12 E15 --wait --out report.json
    python -m repro.service.client --url ... status job-1-abc123
    python -m repro.service.client --url ... report job-1-abc123 --out report.json
    python -m repro.service.client --url ... metrics            # Prometheus text
    python -m repro.service.client --url ... trace job-1-abc123 --out job.trace.json
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """An error response from the service (or a transport failure)."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        detail = body.get("error") if isinstance(body, dict) else None
        super().__init__(f"HTTP {status}: {detail or body}")
        self.status = status
        self.body = body if isinstance(body, dict) else {"error": repr(body)}

    @property
    def retry_after_s(self) -> Optional[float]:
        value = self.body.get("retry_after_s")
        return float(value) if value is not None else None


class ServiceClient:
    """Talk to one service instance at ``base_url`` (e.g. ``http://host:port``)."""

    def __init__(
        self, base_url: str, *, tenant: Optional[str] = None, timeout: float = 30.0
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = f"{self.base_url}/v1{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": str(exc)}
            raise ServiceClientError(exc.code, body) from None

    # -- API ---------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def experiments(self) -> Dict[str, str]:
        return self._request("GET", "/experiments")["experiments"]

    def metrics(self) -> Dict[str, Any]:
        """The service metrics snapshot (counters/gauges/histograms dict)."""
        return self._request("GET", "/metrics?format=json")["metrics"]

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``GET /v1/metrics``."""
        url = f"{self.base_url}/v1/metrics"
        request = urllib.request.Request(url, headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceClientError(exc.code, {"error": str(exc)}) from None

    def trace(self, job_id: str) -> Dict[str, Any]:
        """A finished traced job's merged Chrome trace (409/404 otherwise)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def submit(
        self,
        experiments: Optional[List[str]] = None,
        *,
        config: Optional[Dict[str, Any]] = None,
        reuse: bool = False,
    ) -> Dict[str, Any]:
        """Submit a job; returns its snapshot (``["id"]`` is the handle)."""
        payload: Dict[str, Any] = {}
        if experiments is not None:
            payload["experiments"] = list(experiments)
        if config is not None:
            payload["config"] = dict(config)
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if reuse:
            payload["reuse"] = True
        return self._request("POST", "/jobs", payload)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        query = f"?tenant={self.tenant}" if self.tenant else ""
        return self._request("GET", f"/jobs{query}")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def report(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/report")["report"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll_s: float = 0.2,
        on_status: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if on_status is not None:
                on_status(snapshot)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']!r} after {timeout}s"
                )
            time.sleep(poll_s)

    def stream_events(self, job_id: str, *, timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """Yield the job's SSE events until the stream closes (terminal state)."""
        url = f"{self.base_url}/v1/jobs/{job_id}/events"
        request = urllib.request.Request(url, headers={"Accept": "text/event-stream"})
        with urllib.request.urlopen(request, timeout=timeout) as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line.startswith("data:"):
                    yield json.loads(line[len("data:"):].strip())


# -- CLI -------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="repro sweep-service client")
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument("--tenant", default=None, help="tenant id for submissions")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("health", help="print the health document")
    sub.add_parser("experiments", help="list known experiments")

    metrics = sub.add_parser("metrics", help="scrape /v1/metrics")
    metrics.add_argument("--json", action="store_true",
                         help="fetch the JSON snapshot instead of Prometheus text")

    submit = sub.add_parser("submit", help="submit a job")
    submit.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    submit.add_argument(
        "--config", default=None,
        help='RunConfig fields as a JSON object, e.g. \'{"parallel": 2}\'',
    )
    submit.add_argument("--reuse", action="store_true",
                        help="serve an identical finished job's report if one exists")
    submit.add_argument("--wait", action="store_true", help="block until terminal")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    submit.add_argument("--out", default=None,
                        help="write the run report JSON here (implies --wait)")

    status = sub.add_parser("status", help="print one job snapshot")
    status.add_argument("job_id")

    report = sub.add_parser("report", help="fetch a finished job's report")
    report.add_argument("job_id")
    report.add_argument("--out", default=None, help="write the report JSON here")

    trace = sub.add_parser("trace", help="fetch a traced job's merged trace")
    trace.add_argument("job_id")
    trace.add_argument("--out", default=None, help="write the Chrome trace JSON here")

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job_id")

    args = parser.parse_args(argv)
    client = ServiceClient(args.url, tenant=args.tenant)

    try:
        if args.command == "health":
            print(json.dumps(client.health(), indent=1))
        elif args.command == "metrics":
            if args.json:
                print(json.dumps(client.metrics(), indent=1))
            else:
                print(client.metrics_text(), end="")
        elif args.command == "experiments":
            for experiment_id, claim in client.experiments().items():
                print(f"{experiment_id:4s} {claim}")
        elif args.command == "submit":
            config = json.loads(args.config) if args.config else None
            job = client.submit(
                args.experiments or None, config=config, reuse=args.reuse
            )
            print(f"submitted {job['id']} ({job['state']})")
            if args.wait or args.out:
                job = client.wait(job["id"], timeout=args.timeout)
                print(f"{job['id']}: {job['state']} (exit_code={job['exit_code']})")
                if job["state"] == "failed":
                    print(job.get("error") or "")
                    return 1
                if job["state"] == "cancelled":
                    return 1
                if args.out:
                    payload = client.report(job["id"])
                    with open(args.out, "w", encoding="utf-8") as handle:
                        json.dump(payload, handle, indent=1)
                    print(f"report written to {args.out}")
                return int(job["exit_code"] or 0)
        elif args.command == "status":
            print(json.dumps(client.status(args.job_id), indent=1))
        elif args.command == "report":
            payload = client.report(args.job_id)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=1)
                print(f"report written to {args.out}")
            else:
                print(json.dumps(payload, indent=1))
        elif args.command == "trace":
            payload = client.trace(args.job_id)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                print(
                    f"trace ({len(payload.get('traceEvents', []))} events) "
                    f"written to {args.out}"
                )
            else:
                print(json.dumps(payload))
        elif args.command == "cancel":
            job = client.cancel(args.job_id)
            print(f"{job['id']}: {job['state']}")
    except ServiceClientError as exc:
        print(f"service error: {exc}")
        return 2
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
