"""Admission control: a bounded job queue plus per-tenant quotas.

The service is a shared resource in front of a finite warm pool, so it
must say *no* early rather than queue unboundedly: a submission is
admitted only while the total number of active (queued or running) jobs
is under ``max_active`` **and** the submitting tenant's own active jobs
are under ``max_active_per_tenant``.  Rejections are 429-shaped — the
decision carries a ``retry_after_s`` hint sized to the service's typical
job latency, and the server maps it onto ``HTTP 429`` + ``Retry-After``.

Coalesced followers (identical submissions riding an already-admitted
job) still count toward their tenant's quota — a tenant cannot amplify
its footprint by resubmitting the same sweep — but they add no execution
load, which is exactly the fairness the coalescing is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AdmissionPolicy", "AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The service's load bounds (one frozen bundle, like SupervisionPolicy)."""

    #: queued + running jobs the service will hold, across all tenants
    max_active: int = 16
    #: queued + running jobs one tenant may hold
    max_active_per_tenant: int = 4
    #: seconds clients are told to back off after a rejection
    retry_after_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {self.max_active}")
        if self.max_active_per_tenant < 1:
            raise ValueError(
                f"max_active_per_tenant must be >= 1, "
                f"got {self.max_active_per_tenant}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    """Admit or reject, with the HTTP-shaped rejection detail."""

    admitted: bool
    #: machine-readable reason: ``queue_full`` | ``tenant_quota``
    reason: Optional[str] = None
    #: human detail for the error body
    detail: Optional[str] = None
    #: seconds the client should wait before retrying (rejections only)
    retry_after_s: Optional[float] = None


class AdmissionController:
    """Apply an :class:`AdmissionPolicy` to live registry load numbers."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy

    def admit(self, *, total_active: int, tenant_active: int, tenant: str) -> AdmissionDecision:
        if total_active >= self.policy.max_active:
            return AdmissionDecision(
                admitted=False,
                reason="queue_full",
                detail=(
                    f"service at capacity: {total_active} active job(s), "
                    f"limit {self.policy.max_active}"
                ),
                retry_after_s=self.policy.retry_after_s,
            )
        if tenant_active >= self.policy.max_active_per_tenant:
            return AdmissionDecision(
                admitted=False,
                reason="tenant_quota",
                detail=(
                    f"tenant {tenant!r} at quota: {tenant_active} active "
                    f"job(s), limit {self.policy.max_active_per_tenant}"
                ),
                retry_after_s=self.policy.retry_after_s,
            )
        return AdmissionDecision(admitted=True)
