"""``python -m repro.service`` — run the sweep service in the foreground.

Prints a parseable banner (``repro-service listening on HOST:PORT``, the
same convention as ``repro.perf.worker``) once the API is bound, then
serves until SIGINT/SIGTERM.  With ``--log-dir``, the structured JSONL
service log lands at ``<dir>/service.jsonl`` next to the per-worker pool
logs (and, via the inherited ``REPRO_LOG``, the pool workers append to
the same file).

``python -m repro.service top --url http://HOST:PORT`` runs the live
dashboard over a service started elsewhere (see :mod:`repro.service.top`).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import List, Optional

from repro.obs import log as obs_log
from repro.service.admission import AdmissionPolicy
from repro.service.server import JobService


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "top":
        from repro.service.top import main as top_main

        return top_main(arguments[1:])
    argv = arguments
    parser = argparse.ArgumentParser(
        description="Serve experiment/sweep submissions over HTTP.",
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8642,
                        help="bind port (0 picks a free one)")
    parser.add_argument(
        "--pool", type=int, default=0, metavar="N",
        help="spawn N long-lived warm workers; jobs without a pinned "
             "backend run their sweeps on this pool",
    )
    parser.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="default backend spec for jobs that do not pin one "
             "(mutually exclusive with --pool)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="default persistent store for jobs that do not pin one "
             "(shared by the pool: warm resubmissions skip recompute)",
    )
    parser.add_argument("--max-active", type=int, default=16,
                        help="admission bound: queued+running jobs, all tenants")
    parser.add_argument("--tenant-quota", type=int, default=4,
                        help="admission bound: queued+running jobs per tenant")
    parser.add_argument("--retry-after", type=float, default=2.0,
                        help="Retry-After seconds sent with 429 rejections")
    parser.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="write per-worker pool logs and the structured JSONL service "
             "log (service.jsonl) into this directory",
    )
    parser.add_argument(
        "--job-ttl", type=float, default=None, metavar="SECONDS",
        help="evict finished jobs older than this (default: no age bound)",
    )
    parser.add_argument(
        "--max-done", type=int, default=512, metavar="N",
        help="keep at most N finished jobs (oldest evicted first)",
    )
    args = parser.parse_args(argv)

    if args.log_dir:
        # Configure before anything else logs; exports REPRO_LOG so the
        # pool workers spawned below append to the same JSONL file.
        obs_log.configure(os.path.join(args.log_dir, "service.jsonl"))

    service = JobService(
        pool=args.pool,
        backend=args.backend,
        cache_dir=args.cache_dir,
        policy=AdmissionPolicy(
            max_active=args.max_active,
            max_active_per_tenant=args.tenant_quota,
            retry_after_s=args.retry_after,
        ),
        log_dir=args.log_dir,
        job_ttl_s=args.job_ttl,
        max_done=args.max_done,
    )
    service.start()
    host, port = service.serve_http(args.host, args.port)
    print(f"repro-service listening on {host}:{port}", flush=True)

    stop = threading.Event()

    def _shutdown(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    while not stop.is_set():
        stop.wait(0.5)
    print("repro-service shutting down", flush=True)
    service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
