"""``python -m repro.service top`` — a live terminal view of one service.

Polls ``GET /v1/health`` and ``GET /v1/metrics?format=json`` and renders a
compact dashboard: queue/running/done, pool health, admission totals, and
the p50/p90/p99 queue-wait and end-to-end job latencies the SLO
histograms accumulate.  On a TTY each frame repaints in place (ANSI
clear); on a pipe (or with ``--plain``) frames print sequentially, which
is also what the ``--frames N`` one-shot mode in tests and CI uses.

The rendering is split from the fetching (:func:`render_frame` is a pure
function of the two JSON documents) so tests can exercise the layout
without a live service.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["main", "render_frame"]

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_quantiles(digest: Optional[Dict[str, Any]]) -> str:
    if not digest or not digest.get("count"):
        return "-"
    parts = []
    for key in ("p50", "p90", "p99"):
        value = digest.get(key)
        parts.append(f"{key} {value:.3f}s" if isinstance(value, (int, float)) else f"{key} -")
    return "  ".join(parts)


def render_frame(
    health: Dict[str, Any], metrics: Dict[str, Any], *, url: str = ""
) -> str:
    """One dashboard frame from a health document and a metrics snapshot."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    jobs = health.get("jobs", {})
    pool = health.get("pool", {})

    started = health.get("started_unix")
    uptime = f"{time.time() - started:.0f}s" if isinstance(started, (int, float)) else "?"
    lines: List[str] = []
    title = f"repro-service {url}".rstrip()
    lines.append(f"{title} — up {uptime}")
    lines.append(
        "jobs     queued {queued}  running {running}  done {done}  "
        "failed {failed}  evicted {evicted}".format(
            queued=jobs.get("queued", 0),
            running=jobs.get("running", 0),
            done=jobs.get("done", 0),
            failed=counters.get("service.jobs.failed", 0),
            evicted=counters.get("service.jobs.evicted", 0),
        )
    )
    lines.append(
        "pool     alive {alive}/{workers}  respawns {respawns}  "
        "sse subscribers {sse}".format(
            alive=pool.get("alive", 0),
            workers=pool.get("workers", 0),
            respawns=counters.get("service.pool.respawns", 0),
            sse=gauges.get("service.sse.subscribers", 0),
        )
    )
    limits = health.get("limits", {})
    lines.append(
        "admit    admitted {admitted}  rejected {rejected}  "
        "(max_active {max_active}, per-tenant {per_tenant})".format(
            admitted=counters.get("service.admission.admitted", 0),
            rejected=counters.get("service.admission.rejected", 0),
            max_active=limits.get("max_active", "?"),
            per_tenant=limits.get("max_active_per_tenant", "?"),
        )
    )
    lines.append(
        f"latency  queue-wait  {_fmt_quantiles(histograms.get('service.jobs.queue_wait_s'))}"
    )
    lines.append(
        f"         end-to-end  {_fmt_quantiles(histograms.get('service.jobs.e2e_latency_s'))}"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    from repro.service.client import ServiceClient, ServiceClientError

    parser = argparse.ArgumentParser(
        prog="python -m repro.service top",
        description="Live dashboard over a running sweep service.",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between refreshes")
    parser.add_argument("--frames", type=int, default=0, metavar="N",
                        help="render N frames then exit (0 = until interrupted)")
    parser.add_argument("--plain", action="store_true",
                        help="never repaint in place (default off a TTY)")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    repaint = sys.stdout.isatty() and not args.plain
    rendered = 0
    try:
        while True:
            try:
                health = client.health()
                metrics = client.metrics()
            except (ServiceClientError, OSError) as exc:
                print(f"cannot reach {args.url}: {exc}")
                return 1
            frame = render_frame(health, metrics, url=args.url)
            if repaint:
                print(f"{_CLEAR}{frame}", flush=True)
            else:
                print(frame, flush=True)
            rendered += 1
            if args.frames and rendered >= args.frames:
                return 0
            if not repaint and not args.frames:
                print("---", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
