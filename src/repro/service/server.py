"""Sweep-as-a-service: the long-lived job server over the repro.api facade.

One :class:`JobService` owns four things:

* a :class:`~repro.service.jobs.JobRegistry` (submissions, states, events),
* an :class:`~repro.service.admission.AdmissionController` (bounded queue,
  per-tenant quotas — rejections are HTTP 429 with ``Retry-After``),
* an optional **warm worker pool**: long-lived ``repro.perf.worker``
  subprocesses (:class:`repro.perf.supervise.WorkerProcess`) spawned once
  at startup; jobs that do not pin a backend run their sweeps on
  ``socket:<pool addresses>``, so consecutive jobs reuse hot interpreters
  instead of paying fork+import per sweep.  Dead workers are respawned
  between jobs (``service.pool.respawns`` counts them); a worker dying
  *mid-job* degrades gracefully through the socket transport's lost-chunk
  fallback — the chunk is recomputed in the service process and the job
  still completes,
* a single **dispatcher thread** executing queued jobs strictly one at a
  time.  Serial execution is load-bearing, not a simplification:
  :meth:`repro.api.RunConfig.apply` exports the resolved configuration
  into the process environment (that is how children and workers inherit
  it), so two concurrently-applied configs would race; within one job,
  ``parallel``/backend fan-out still provides the concurrency.

Result reuse is layered, cheapest first: an *identical active* submission
coalesces onto the in-flight job (one execution, every submitter gets the
report); a submission with ``"reuse": true`` is served a completed
identical job's report without running at all; and an ordinary warm
resubmission re-runs the suite but its sweeps are answered from the
persistent content-addressed store (``REPRO_CACHE_DIR`` shared across the
pool), so nothing is re-dispatched — the report's
``summary.cache.counters`` shows ``perf.cache.sweep.hits`` > 0, which is
also how the CI smoke asserts warmness.

The HTTP surface is versioned under ``/v1`` (JSON in/out; see
``docs/service.md``)::

    GET    /v1/health                  liveness + pool/job gauges
    GET    /v1/experiments             known experiment ids and claims
    GET    /v1/metrics                 Prometheus exposition (?format=json)
    POST   /v1/jobs                    submit {experiments?, config?, tenant?,
                                       reuse?} -> 202 {job} | 400 | 429
    GET    /v1/jobs[?tenant=]          list job snapshots
    GET    /v1/jobs/<id>               one job snapshot
    GET    /v1/jobs/<id>/report        the run report (409 until done)
    GET    /v1/jobs/<id>/trace         merged job trace (409/404; traced jobs)
    GET    /v1/jobs/<id>/events        Server-Sent Events progress stream
    POST   /v1/jobs/<id>/cancel        cancel a queued job (409 otherwise)

Telemetry: every request, admission decision, job transition and pool
respawn is mirrored into the structured JSONL log (:mod:`repro.obs.log`,
enabled by ``--log-dir``/``REPRO_LOG``).  The dispatcher brackets each
execution with the job's correlation id, which then rides the environment
into forked experiment children and the run-frame ctx into socket
workers — so the per-lane trace payloads, the saved trace files, and
every log record written anywhere in the tree carry the job id, and
``GET /v1/jobs/<id>/trace`` can hand back one merged, attributable trace.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import api
from repro.obs import distributed as obs_distributed
from repro.obs import expo as obs_expo
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.perf.fingerprint import try_fingerprint
from repro.perf.supervise import WorkerProcess
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.jobs import (
    DONE,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobRegistry,
)

__all__ = ["API_VERSION", "JobService", "ServiceError"]

_LOG = obs_log.get_logger("service")
_ACCESS_LOG = obs_log.get_logger("service.http")

API_VERSION = "v1"

#: Submissions larger than this are rejected outright (413).
MAX_BODY_BYTES = 1 << 20


class ServiceError(Exception):
    """An HTTP-shaped service failure."""

    def __init__(self, status: int, detail: str, **extra: Any) -> None:
        super().__init__(detail)
        self.status = status
        self.body = {"error": detail, **extra}
        self.headers: Dict[str, str] = {}


class JobService:
    """The service core: submissions in, validated run reports out."""

    def __init__(
        self,
        *,
        pool: int = 0,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        policy: Optional[AdmissionPolicy] = None,
        log_dir: Optional[str] = None,
        auto_dispatch: bool = True,
        job_ttl_s: Optional[float] = None,
        max_done: Optional[int] = 512,
        sse_keepalive_s: float = 5.0,
    ) -> None:
        if pool and backend:
            raise ValueError("pass either pool=N or backend=SPEC, not both")
        self.registry = JobRegistry(ttl_s=job_ttl_s, max_done=max_done)
        self.admission = AdmissionController(policy or AdmissionPolicy())
        self.pool_size = int(pool)
        self.default_backend = backend
        self.default_cache_dir = cache_dir
        self.log_dir = log_dir
        #: seconds of SSE silence before a comment frame probes the client
        #: (also how fast a vanished subscriber is noticed and cleaned up)
        self.sse_keepalive_s = float(sse_keepalive_s)
        self._pool: List[WorkerProcess] = []
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._auto_dispatch = auto_dispatch
        self._started_unix: Optional[float] = None
        self._sse_lock = threading.Lock()
        self._sse_count = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the warm pool (if any) and the dispatcher thread."""
        self._started_unix = time.time()
        for slot in range(self.pool_size):
            worker = WorkerProcess(slot, log_dir=self.log_dir)
            worker.start()
            self._pool.append(worker)
        if self._auto_dispatch:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-service-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()

    def serve_http(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the HTTP API and serve it on a background thread.

        Returns the bound ``(host, port)`` — pass port 0 to let the OS
        pick one (tests do)."""
        service = self

        class _BoundHandler(_Handler):
            pass

        _BoundHandler.service = service
        self._httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self._httpd.daemon_threads = True
        thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10)
            self._dispatcher = None
        for worker in self._pool:
            worker.terminate()
        self._pool = []

    # -- the warm pool -----------------------------------------------------------

    def pool_spec(self) -> Optional[str]:
        """The ``socket:`` spec addressing the live warm pool, if any."""
        if not self._pool:
            return None
        addresses = ",".join(f"{host}:{port}" for host, port in
                             (w.address for w in self._pool))
        return f"socket:{addresses}"

    def pool_alive(self) -> int:
        return sum(1 for worker in self._pool if worker.alive)

    def ensure_workers(self) -> int:
        """Respawn dead pool workers (between jobs); returns respawn count.

        A respawned worker binds a fresh port, so the pool spec is
        recomputed per job — which is why jobs resolve their backend at
        execution time, not admission time."""
        respawned = 0
        for worker in self._pool:
            if not worker.alive:
                worker.terminate()  # reap + close the old pipe/log handles
                worker.start()
                respawned += 1
                host, port = worker.address
                _LOG.warning(
                    "service.pool.respawn", slot=worker.slot,
                    address=f"{host}:{port}",
                )
        if respawned:
            obs_metrics.counter("service.pool.respawns").inc(respawned)
        return respawned

    # -- submission --------------------------------------------------------------

    def submit(self, payload: Any) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Admit one submission; returns (status, body, extra headers).

        ``payload``: ``{"experiments": [...], "config": {...},
        "tenant": "...", "reuse": bool}`` — all fields optional."""
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise ServiceError(400, "submission must be a JSON object")
        unknown = sorted(set(payload) - {"experiments", "config", "tenant", "reuse"})
        if unknown:
            raise ServiceError(
                400, f"unknown submission field(s): {', '.join(unknown)}"
            )

        tenant = payload.get("tenant") or "default"
        if not isinstance(tenant, str):
            raise ServiceError(400, "tenant must be a string")
        reuse = payload.get("reuse", False)
        if not isinstance(reuse, bool):
            raise ServiceError(400, "reuse must be a boolean")

        experiments = payload.get("experiments")
        known = api.list_experiments()
        if experiments is not None and (
            not isinstance(experiments, list)
            or not all(isinstance(e, str) for e in experiments)
        ):
            raise ServiceError(400, "experiments must be a list of ids")
        if not experiments:  # None or [] both mean the whole suite
            experiments = list(known)
        bad = [e for e in experiments if e not in known]
        if bad:
            raise ServiceError(
                400,
                f"unknown experiment(s): {', '.join(sorted(bad))}",
                known=list(known),
            )

        config_payload = payload.get("config") or {}
        if not isinstance(config_payload, dict):
            raise ServiceError(400, "config must be an object")
        overrides = dict(config_payload)
        # Service-wide defaults fill fields the submission left open; the
        # submission's own values always win (spec > service > env gates).
        if overrides.get("cache_dir") is None and self.default_cache_dir:
            overrides["cache_dir"] = self.default_cache_dir
        if overrides.get("backend") is None and self.default_backend:
            overrides["backend"] = self.default_backend
        try:
            config = api.resolve_config(**overrides)
        except api.ConfigError as exc:
            raise ServiceError(400, f"invalid config: {exc}")
        if config.progress:
            # Heartbeat rendering belongs to interactive terminals; job
            # progress is streamed through the registry's events instead.
            config = api.RunConfig(**{**config.describe(), "progress": False})

        cache_key = try_fingerprint(
            (
                "service.job",
                tuple(experiments),
                tuple(sorted(config.describe().items(), key=lambda kv: kv[0])),
            )
        )

        # Reuse: serve a completed identical job's report without running.
        if reuse and cache_key is not None:
            finished = self.registry.find_done_by_key(cache_key)
            if finished is not None:
                job = self.registry.create(
                    tenant=tenant,
                    experiments=experiments,
                    config=config,
                    cache_key=cache_key,
                )
                self.registry.mark_running(job)
                self.registry.finish(
                    job,
                    report=finished.report,
                    exit_code=finished.exit_code,
                    served_from=finished.id,
                )
                _LOG.info(
                    "service.job.reused", job=job.id, tenant=tenant,
                    served_from=finished.id,
                )
                return 202, {"job": job.snapshot()}, {}

        decision = self.admission.admit(
            total_active=self.registry.active_count(),
            tenant_active=self.registry.active_count(tenant=tenant),
            tenant=tenant,
        )
        if not decision.admitted:
            obs_metrics.counter("service.admission.rejected").inc()
            obs_metrics.counter(f"service.admission.rejected.{tenant}").inc()
            _LOG.warning(
                "service.admission.rejected",
                tenant=tenant,
                reason=decision.reason,
                detail=decision.detail,
                retry_after_s=decision.retry_after_s,
            )
            error = ServiceError(
                429, decision.detail or "rejected",
                reason=decision.reason,
                retry_after_s=decision.retry_after_s,
            )
            if decision.retry_after_s is not None:
                error.headers["Retry-After"] = str(int(decision.retry_after_s) or 1)
            raise error
        obs_metrics.counter("service.admission.admitted").inc()
        obs_metrics.counter(f"service.admission.admitted.{tenant}").inc()

        # Coalesce onto an identical in-flight job: one execution, every
        # submitter gets the report.
        leader = (
            self.registry.find_active_by_key(cache_key)
            if cache_key is not None
            else None
        )
        job = self.registry.create(
            tenant=tenant,
            experiments=experiments,
            config=config,
            cache_key=cache_key,
            leader=leader.id if leader is not None else None,
        )
        _LOG.info(
            "service.admission.admitted",
            job=job.id,
            tenant=tenant,
            experiments=len(experiments),
            coalesced_onto=leader.id if leader is not None else None,
        )
        self._wake.set()
        return 202, {"job": job.snapshot()}, {}

    # -- execution ---------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.registry.next_queued()
            if job is None:
                self._wake.wait(0.2)
                self._wake.clear()
                continue
            self.registry.mark_running(job)
            self.execute(job)

    def execute(self, job: Job) -> None:
        """Run one job's suite in this process (the dispatcher's body)."""
        self.ensure_workers()
        config = job.config
        overrides: Dict[str, Any] = {}
        if config.backend is None:
            spec = self.pool_spec()
            if spec is not None:
                # Resolved at execution time: respawned workers bind fresh
                # ports, so admission-time specs could point at the dead.
                overrides["backend"] = spec
        if config.trace and config.trace_dir is None:
            # Traced jobs get a per-job trace directory so the merged trace
            # stays retrievable via GET /v1/jobs/<id>/trace.  Injected at
            # execution time — like the backend — so it never perturbs the
            # submission's content fingerprint (coalescing/reuse).
            root = (
                os.path.join(self.log_dir, "traces")
                if self.log_dir
                else os.path.join(tempfile.gettempdir(), "repro-service-traces")
            )
            job.trace_dir = os.path.join(root, job.id)
            os.makedirs(job.trace_dir, exist_ok=True)
            overrides["trace_dir"] = job.trace_dir
        if overrides:
            config = api.RunConfig(**{**config.describe(), **overrides})

        progress_state = {"label": None, "done": 0}

        def on_heartbeat(event: str, **details: Any) -> None:
            # repro.obs.progress heartbeats -> job progress events.  Only
            # the suite-level phase counts: sweep phases inside inline
            # experiments advance in this process too, but they belong to
            # an experiment, not the job.
            if event == "begin":
                progress_state["label"] = details.get("label")
            elif (
                event == "advance"
                and progress_state["label"] == "experiments"
            ):
                progress_state["done"] += int(details.get("n", 1))
                self.registry.record_progress(
                    job, progress_state["done"], job.total
                )

        def on_record(
            experiment_id: str, record: Dict[str, Any], done: int, total: int
        ) -> None:
            self.registry.record_experiment(
                job, experiment_id, record["status"], record["ok"]
            )

        obs_progress.add_listener(on_heartbeat)
        obs_metrics.counter("service.jobs.started").inc()
        # The correlation bracket: from here until the finally, every log
        # record, trace lane and chunk payload produced anywhere in this
        # job's process tree carries job.id (fork children inherit it via
        # REPRO_JOB_ID, socket workers via the run-frame ctx).
        obs_log.set_correlation(job.id)
        _LOG.info(
            "service.job.dispatch",
            job=job.id,
            tenant=job.tenant,
            backend=config.backend,
            experiments=len(job.experiments),
            trace_dir=job.trace_dir,
        )
        try:
            result = api.run_suite(
                job.experiments,
                config=config,
                argv=["service", *job.experiments],
                on_record=on_record,
            )
        except Exception:  # noqa: BLE001 - the job absorbs the failure
            obs_metrics.counter("service.jobs.failed").inc()
            self.registry.finish(job, error=traceback.format_exc())
        else:
            obs_metrics.counter("service.jobs.completed").inc()
            self.registry.finish(
                job, report=result.report, exit_code=result.exit_code
            )
        finally:
            obs_log.set_correlation(None)
            obs_progress.remove_listener(on_heartbeat)

    # -- health ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        jobs = self.registry.jobs()
        return {
            "status": "ok",
            "version": API_VERSION,
            "started_unix": self._started_unix,
            "pool": {"workers": len(self._pool), "alive": self.pool_alive()},
            "jobs": {
                "total": len(jobs),
                "queued": sum(1 for j in jobs if j.state == QUEUED),
                "running": sum(1 for j in jobs if j.state == RUNNING),
                "done": sum(1 for j in jobs if j.state == DONE),
            },
            "limits": {
                "max_active": self.admission.policy.max_active,
                "max_active_per_tenant": self.admission.policy.max_active_per_tenant,
            },
        }

    # -- telemetry ---------------------------------------------------------------

    def sse_subscribers(self) -> int:
        with self._sse_lock:
            return self._sse_count

    def _sse_add(self) -> None:
        with self._sse_lock:
            self._sse_count += 1
            obs_metrics.gauge("service.sse.subscribers").set(self._sse_count)

    def _sse_remove(self) -> None:
        with self._sse_lock:
            self._sse_count = max(0, self._sse_count - 1)
            obs_metrics.gauge("service.sse.subscribers").set(self._sse_count)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot behind ``GET /v1/metrics``.

        Point-in-time gauges (queue depth, pool health, uptime) are
        refreshed at scrape time — counters and histograms accumulate on
        their own as the service runs."""
        jobs = self.registry.jobs()
        obs_metrics.gauge("service.jobs.queue_depth").set(
            sum(1 for j in jobs if j.state == QUEUED)
        )
        obs_metrics.gauge("service.jobs.running").set(
            sum(1 for j in jobs if j.state == RUNNING)
        )
        obs_metrics.gauge("service.jobs.retained").set(len(jobs))
        obs_metrics.gauge("service.pool.workers").set(len(self._pool))
        obs_metrics.gauge("service.pool.alive").set(self.pool_alive())
        obs_metrics.gauge("service.sse.subscribers").set(self.sse_subscribers())
        if self._started_unix is not None:
            obs_metrics.gauge("service.uptime_s").set(
                round(time.time() - self._started_unix, 3)
            )
        return obs_metrics.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition of :meth:`metrics_snapshot`."""
        return obs_expo.render(self.metrics_snapshot())

    def job_trace(self, job: Job) -> Dict[str, Any]:
        """The merged Chrome trace behind ``GET /v1/jobs/<id>/trace``.

        409 while the job is still queued/running, 404 when it was not
        traced.  Followers and reuse-served jobs resolve through the job
        that actually executed.  Every ``process_name`` lane in the merged
        payload (and the payload itself) is stamped with the requested
        job's id — the correlation contract the analyze tooling and tests
        lean on."""
        if job.state not in TERMINAL_STATES:
            raise ServiceError(
                409, f"job {job.id} has no trace yet (state: {job.state})",
                state=job.state,
            )
        trace_dir = job.trace_dir
        if trace_dir is None and job.served_from is not None:
            source = self.registry.get(job.served_from)
            if source is not None:
                trace_dir = source.trace_dir
        files = sorted(glob.glob(os.path.join(trace_dir, "*.trace.json"))) if trace_dir else []
        if not files:
            raise ServiceError(
                404,
                f"job {job.id} was not traced "
                '(submit with config {"trace": true})',
            )
        merged = obs_distributed.merge_trace_files(files)
        merged["job"] = job.id
        for event in merged["traceEvents"]:
            if event.get("ph") == "M" and event.get("name") == "process_name":
                args = dict(event.get("args") or {})
                args["job"] = job.id
                event["args"] = args
        return merged


# -- the HTTP layer --------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` onto the bound :class:`JobService`."""

    service: JobService  # injected per server by serve_http
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        # http.server's own per-response lines, routed into the structured
        # log instead of stderr (debug level: _route emits the richer
        # `http.request` record for every request at info).
        _ACCESS_LOG.debug(
            "http.log", client=self.address_string(), message=fmt % args
        )

    def _send_json(
        self, status: int, body: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        data = json.dumps(body, default=repr).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, f"body too large ({length} bytes)")
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, f"body is not valid JSON: {exc}")

    def _job_or_404(self, job_id: str) -> Job:
        job = self.service.registry.get(job_id)
        if job is None:
            raise ServiceError(404, f"no such job: {job_id}")
        return job

    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        self._status: Optional[int] = None
        started = time.perf_counter()
        disconnected = False
        try:
            if not parts or parts[0] != API_VERSION:
                raise ServiceError(
                    404, f"unknown API version (use /{API_VERSION}/...)"
                )
            self._dispatch(method, parts[1:], parse_qs(parsed.query))
        except ServiceError as exc:
            self._send_json(exc.status, exc.body, exc.headers)
        except (BrokenPipeError, ConnectionResetError):
            disconnected = True  # client went away mid-stream
        except Exception:  # noqa: BLE001 - the server must not die per request
            self._send_json(500, {"error": traceback.format_exc()})
        # The structured access log: one record per request, job-correlated
        # whenever the path addresses a job (this is the satellite replacing
        # the old silently-discarding log_message).
        job_id = parts[2] if len(parts) >= 3 and parts[1] == "jobs" else None
        _ACCESS_LOG.info(
            "http.request",
            method=method,
            path=parsed.path,
            status=self._status,
            duration_ms=round((time.perf_counter() - started) * 1000.0, 3),
            client=self.client_address[0] if self.client_address else None,
            job=job_id,
            disconnected=True if disconnected else None,
        )

    def _dispatch(self, method: str, parts: List[str], query: Dict[str, List[str]]) -> None:
        registry = self.service.registry
        if method == "GET" and parts == ["health"]:
            self._send_json(200, self.service.health())
        elif method == "GET" and parts == ["experiments"]:
            self._send_json(200, {"experiments": api.list_experiments()})
        elif method == "GET" and parts == ["metrics"]:
            if (query.get("format") or [None])[0] == "json":
                self._send_json(200, {"metrics": self.service.metrics_snapshot()})
            else:
                self._send_text(
                    200, self.service.metrics_text(), obs_expo.CONTENT_TYPE
                )
        elif method == "POST" and parts == ["jobs"]:
            status, body, headers = self.service.submit(self._read_body())
            self._send_json(status, body, headers)
        elif method == "GET" and parts == ["jobs"]:
            tenant = (query.get("tenant") or [None])[0]
            self._send_json(
                200,
                {"jobs": [j.snapshot() for j in registry.jobs(tenant=tenant)]},
            )
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            self._send_json(200, {"job": self._job_or_404(parts[1]).snapshot()})
        elif method == "GET" and len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "report":
            job = self._job_or_404(parts[1])
            if job.report is None:
                raise ServiceError(
                    409, f"job {job.id} has no report (state: {job.state})",
                    state=job.state,
                )
            self._send_json(200, {"job": job.id, "report": job.report})
        elif method == "GET" and len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "trace":
            self._send_json(200, self.service.job_trace(self._job_or_404(parts[1])))
        elif method == "GET" and len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "events":
            self._stream_events(self._job_or_404(parts[1]))
        elif method == "POST" and len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "cancel":
            job = self._job_or_404(parts[1])
            if not registry.cancel(job):
                raise ServiceError(
                    409, f"job {job.id} is not cancellable (state: {job.state})",
                    state=job.state,
                )
            self._send_json(200, {"job": job.snapshot()})
        else:
            raise ServiceError(404, f"no route for {method} {self.path}")

    # -- SSE ---------------------------------------------------------------------

    def _stream_events(self, job: Job) -> None:
        """Server-Sent Events: every job event as one ``data:`` frame.

        The stream replays the job's full event history, then follows it
        live and closes after the terminal-state event — a client reading
        to EOF has seen the whole lifecycle.  Quiet periods are bridged by
        SSE comment frames (``: keepalive``) every ``sse_keepalive_s``:
        clients ignore them by spec, and the write is what surfaces a
        vanished subscriber (a silent wait would otherwise hold the
        listener slot forever on an idle queued job).  The subscriber
        gauge is maintained in a try/finally, so a mid-stream disconnect
        — which raises out of the write — still releases the slot."""
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        registry = self.service.registry
        last_seq = 0

        self.service._sse_add()
        try:
            while True:
                events = registry.wait_events(
                    job, last_seq, timeout=self.service.sse_keepalive_s
                )
                for event in events:
                    last_seq = event["seq"]
                    frame = f"data: {json.dumps(event, default=repr)}\n\n"
                    self.wfile.write(frame.encode("utf-8"))
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                if job.state in TERMINAL_STATES and not registry.events_since(job, last_seq):
                    return
        finally:
            self.service._sse_remove()

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")
