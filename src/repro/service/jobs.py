"""Job registry for the sweep service: states, progress, coalescing.

A *job* is one accepted submission — a selection of experiments plus a
fully-resolved :class:`repro.api.RunConfig`.  Jobs move through::

    queued -> running -> done | failed
    queued -> cancelled

``done`` means the suite ran to completion (individual experiments may
still have failed — the run report records that, and the job keeps the
suite exit code); ``failed`` means the service itself could not execute
the run.  The registry is thread-safe: the HTTP handler threads read it
while the dispatcher thread advances it, coordinated by one condition
variable so waiters (`wait`, the SSE stream) never poll a lock-free race.

Identical active submissions *coalesce*: a submission whose content
fingerprint matches a queued/running job becomes a **follower** of that
leader — it gets its own job id and lifecycle events, but the sweep runs
once and the leader's report fans out to every follower on completion.

Telemetry: every state transition is mirrored as a structured
``service.job.*`` record (:mod:`repro.obs.log`) carrying the job id, and
the registry feeds the service SLO instruments — queue-wait and
end-to-end latency histograms, and the eviction counter.  Finished jobs
are retained for reuse/coalescing but not forever: ``ttl_s`` ages
terminal jobs out and ``max_done`` caps how many are kept (oldest
evicted first), closing the unbounded-growth gap the ROADMAP called out.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics

__all__ = [
    "Job",
    "JobRegistry",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

_LOG = obs_log.get_logger("service.jobs")


@dataclass
class Job:
    """One accepted submission and everything the service knows about it."""

    id: str
    tenant: str
    experiments: List[str]
    #: the resolved RunConfig (repro.api.RunConfig) this job runs under
    config: Any
    submitted_unix: float
    state: str = QUEUED
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: experiments completed / total (advanced from progress heartbeats)
    done: int = 0
    total: int = 0
    #: suite exit code (0 all passed, 1 some experiment did not pass)
    exit_code: Optional[int] = None
    #: the validated run report, once state == done
    report: Optional[Dict[str, Any]] = None
    #: service-level failure diagnosis, once state == failed
    error: Optional[str] = None
    #: content fingerprint of (experiments, config) for coalescing/reuse
    cache_key: Optional[str] = None
    #: job id this submission coalesced onto (follower side)
    leader: Optional[str] = None
    #: job ids coalesced onto this job (leader side)
    followers: List[str] = field(default_factory=list)
    #: job id whose finished report this job was served from (reuse)
    served_from: Optional[str] = None
    #: directory the job's per-experiment trace files landed in (traced jobs)
    trace_dir: Optional[str] = None
    #: monotonically numbered lifecycle/progress events (SSE source)
    events: List[Dict[str, Any]] = field(default_factory=list)

    def snapshot(self) -> Dict[str, Any]:
        """The JSON description served by ``GET /v1/jobs/<id>`` (no report —
        that has its own endpoint, it can be large)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "experiments": list(self.experiments),
            "config": self.config.describe(),
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "progress": {"done": self.done, "total": self.total},
            "exit_code": self.exit_code,
            "error": self.error,
            "leader": self.leader,
            "followers": list(self.followers),
            "served_from": self.served_from,
        }


class JobRegistry:
    """Thread-safe job store shared by HTTP handlers and the dispatcher."""

    def __init__(
        self, *, ttl_s: Optional[float] = None, max_done: Optional[int] = None
    ) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._counter = itertools.count(1)
        #: retention bounds for terminal jobs (None = keep; see evict())
        self.ttl_s = ttl_s
        self.max_done = max_done

    # -- creation ----------------------------------------------------------------

    def create(
        self,
        *,
        tenant: str,
        experiments: List[str],
        config: Any,
        cache_key: Optional[str] = None,
        leader: Optional[str] = None,
    ) -> Job:
        with self._changed:
            # Every submission pays the (cheap) retention sweep, so the
            # registry cannot grow without bound between explicit evictions.
            self._evict_locked(time.time())
            job_id = f"job-{next(self._counter)}-{os.urandom(3).hex()}"
            job = Job(
                id=job_id,
                tenant=tenant,
                experiments=list(experiments),
                config=config,
                submitted_unix=time.time(),
                total=len(experiments),
                cache_key=cache_key,
                leader=leader,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            if leader is not None:
                leader_job = self._jobs.get(leader)
                if leader_job is not None:
                    leader_job.followers.append(job_id)
            self._event_locked(job, "state", state=QUEUED)
            self._changed.notify_all()
            return job

    # -- reads -------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, *, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            selected = (self._jobs[job_id] for job_id in self._order)
            return [j for j in selected if tenant is None or j.tenant == tenant]

    def active_count(self, *, tenant: Optional[str] = None) -> int:
        """Jobs currently queued or running (the admission-relevant load)."""
        return sum(
            1 for j in self.jobs(tenant=tenant) if j.state in (QUEUED, RUNNING)
        )

    def next_queued(self) -> Optional[Job]:
        """The oldest queued non-follower job (followers ride their leader)."""
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == QUEUED and job.leader is None:
                    return job
            return None

    def find_active_by_key(self, cache_key: str) -> Optional[Job]:
        """A queued/running non-follower job with this content fingerprint."""
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if (
                    job.cache_key == cache_key
                    and job.leader is None
                    and job.state in (QUEUED, RUNNING)
                ):
                    return job
            return None

    def find_done_by_key(self, cache_key: str) -> Optional[Job]:
        """The most recent completed job with this fingerprint and a report."""
        with self._lock:
            for job_id in reversed(self._order):
                job = self._jobs[job_id]
                if (
                    job.cache_key == cache_key
                    and job.state == DONE
                    and job.report is not None
                ):
                    return job
            return None

    # -- transitions -------------------------------------------------------------

    def mark_running(self, job: Job) -> None:
        with self._changed:
            job.state = RUNNING
            job.started_unix = time.time()
            obs_metrics.histogram("service.jobs.queue_wait_s").observe(
                max(0.0, job.started_unix - job.submitted_unix)
            )
            self._event_locked(job, "state", state=RUNNING)
            self._changed.notify_all()

    def record_experiment(
        self, job: Job, experiment_id: str, status: str, ok: bool
    ) -> None:
        """Log one completed experiment as a job event (SSE surfaces it)."""
        with self._changed:
            self._event_locked(
                job, "experiment", experiment=experiment_id, status=status, ok=ok
            )
            self._changed.notify_all()

    def record_progress(self, job: Job, done: int, total: int) -> None:
        with self._changed:
            job.done = done
            job.total = total
            self._event_locked(job, "progress", done=done, total=total)
            self._changed.notify_all()

    def finish(
        self,
        job: Job,
        *,
        report: Optional[Dict[str, Any]] = None,
        exit_code: Optional[int] = None,
        error: Optional[str] = None,
        served_from: Optional[str] = None,
    ) -> None:
        """Move ``job`` (and its followers) to ``done`` or ``failed``."""
        with self._changed:
            targets = [job] + [
                self._jobs[fid]
                for fid in job.followers
                if fid in self._jobs and self._jobs[fid].state in (QUEUED, RUNNING)
            ]
            state = FAILED if error is not None else DONE
            now = time.time()
            for target in targets:
                target.state = state
                target.finished_unix = now
                obs_metrics.histogram("service.jobs.e2e_latency_s").observe(
                    max(0.0, now - target.submitted_unix)
                )
                target.report = report
                target.exit_code = exit_code
                target.error = error
                if target is not job:
                    target.served_from = job.id
                    target.done = job.done
                    target.total = job.total
                elif served_from is not None:
                    target.served_from = served_from
                self._event_locked(target, "state", state=state)
            self._changed.notify_all()

    def cancel(self, job: Job) -> bool:
        """Cancel a queued job (running jobs are not interruptible).

        Cancelling a queued leader cascades to its queued followers — they
        were only ever going to be served by this execution."""
        with self._changed:
            if job.state != QUEUED:
                return False
            targets = [job] + [
                self._jobs[fid]
                for fid in job.followers
                if fid in self._jobs and self._jobs[fid].state == QUEUED
            ]
            now = time.time()
            for target in targets:
                target.state = CANCELLED
                target.finished_unix = now
                self._event_locked(target, "state", state=CANCELLED)
            self._changed.notify_all()
            return True

    # -- waiting -----------------------------------------------------------------

    def wait(self, job: Job, timeout: Optional[float] = None) -> str:
        """Block until ``job`` reaches a terminal state; returns the state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while job.state not in TERMINAL_STATES:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._changed.wait(remaining if remaining is not None else 1.0)
            return job.state

    def events_since(self, job: Job, after_seq: int) -> List[Dict[str, Any]]:
        with self._lock:
            return [e for e in job.events if e["seq"] > after_seq]

    def wait_events(
        self, job: Job, after_seq: int, timeout: float
    ) -> List[Dict[str, Any]]:
        """Events newer than ``after_seq``, blocking up to ``timeout`` for one."""
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                fresh = [e for e in job.events if e["seq"] > after_seq]
                if fresh or job.state in TERMINAL_STATES:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._changed.wait(remaining)

    # -- retention ---------------------------------------------------------------

    def evict(self, *, now: Optional[float] = None) -> int:
        """Apply the retention bounds now; returns how many jobs were dropped.

        ``create`` already calls this on every submission — the explicit
        entry point exists for idle-time sweeps and tests."""
        with self._changed:
            return self._evict_locked(time.time() if now is None else now)

    def _evict_locked(self, now: float) -> int:
        if self.ttl_s is None and self.max_done is None:
            return 0
        terminal = [
            job
            for job_id in self._order
            if (job := self._jobs[job_id]).state in TERMINAL_STATES
        ]
        victims: List[Job] = []
        if self.ttl_s is not None:
            victims = [
                job
                for job in terminal
                if job.finished_unix is not None
                and now - job.finished_unix > self.ttl_s
            ]
        if self.max_done is not None:
            kept = [job for job in terminal if job not in victims]
            overflow = len(kept) - self.max_done
            if overflow > 0:
                victims.extend(kept[:overflow])  # _order is insertion order: oldest first
        for job in victims:
            del self._jobs[job.id]
            self._order.remove(job.id)
            obs_metrics.counter("service.jobs.evicted").inc()
            _LOG.info(
                "service.jobs.evicted",
                job=job.id,
                tenant=job.tenant,
                state=job.state,
                age_s=round(now - (job.finished_unix or job.submitted_unix), 3),
            )
        return len(victims)

    # -- internals ---------------------------------------------------------------

    def _event_locked(self, job: Job, kind: str, **details: Any) -> None:
        job.events.append(
            {
                "seq": len(job.events) + 1,
                "unix": time.time(),
                "event": kind,
                **details,
            }
        )
        # Mirror every lifecycle/progress event into the structured log —
        # `service.job.state`, `service.job.experiment`, `service.job.progress`
        # — always keyed by the job's own id (a follower logs its own id even
        # while the leader's execution drives the transition).
        _LOG.info(f"service.job.{kind}", job=job.id, tenant=job.tenant, **details)
