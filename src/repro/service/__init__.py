"""Sweep-as-a-service: a long-lived job service over :mod:`repro.api`.

Submit experiment/sweep runs over a versioned JSON HTTP API, get job ids
back, stream progress, fetch validated run reports — with admission
control (bounded queue, per-tenant quotas), a warm worker pool behind the
sweeps, coalescing of identical in-flight submissions and result reuse
through the persistent content-addressed store.  See ``docs/service.md``.

Start a server::

    python -m repro.service --port 8642 --pool 2 --cache-dir .cache/repro

Talk to it::

    python -m repro.service.client --url http://127.0.0.1:8642 submit E15 --wait
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.jobs import Job, JobRegistry
from repro.service.server import API_VERSION, JobService, ServiceError


def __getattr__(name):
    # Lazy so `python -m repro.service.client` does not find the module
    # pre-imported by its own package (runpy would warn).
    if name in ("ServiceClient", "ServiceClientError"):
        from repro.service import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "API_VERSION",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "Job",
    "JobRegistry",
    "JobService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
]
