"""Example systems built on the framework.

These are the concrete workloads the paper's introduction motivates —
probabilistic protocols, cryptographic channels, and dynamic systems with
run-time creation/destruction of participants:

* :mod:`repro.systems.coin` — fair/biased coins and amplified coin
  families (the canonical approximate-implementation workload);
* :mod:`repro.systems.channels` — one-time-pad secure channels: real
  protocol vs ideal functionality, with simulators (the canonical
  secure-emulation workload);
* :mod:`repro.systems.commitment` — masked bit commitment vs the ideal
  commitment functionality;
* :mod:`repro.systems.consensus` — randomized binary consensus with a
  shared coin, against an always-agreeing ideal functionality;
* :mod:`repro.systems.ledger` — a dynamic ledger PCA whose clients join
  and leave at run time (automata creation/destruction);
* :mod:`repro.systems.factory` — seeded random automaton generation for
  property tests and benchmarks.
"""

from repro.systems.coin import (
    coin,
    structured_coin,
    fair_coin_family,
    amplified_coin_family,
    coin_observer,
)
from repro.systems.channels import (
    real_channel,
    ideal_channel,
    broken_channel,
    guessing_adversary,
    channel_simulator,
    channel_environment,
    channel_emulation_instance,
)
from repro.systems.channels_mary import (
    mary_real_channel,
    mary_ideal_channel,
    mary_channel_simulator,
    mary_guessing_adversary,
    mary_channel_environment,
)
from repro.systems.commitment import (
    real_commitment,
    ideal_commitment,
    commitment_simulator,
    commitment_environment,
    commitment_emulation_instance,
)
from repro.systems.consensus import (
    real_consensus,
    ideal_consensus,
    consensus_environment,
)
from repro.systems.ledger import (
    ledger_client,
    ledger_manager_pca,
    spawning_pca,
)
from repro.systems.factory import random_psioa, random_structured

__all__ = [
    "coin",
    "structured_coin",
    "fair_coin_family",
    "amplified_coin_family",
    "coin_observer",
    "real_channel",
    "ideal_channel",
    "broken_channel",
    "guessing_adversary",
    "channel_simulator",
    "channel_environment",
    "channel_emulation_instance",
    "mary_real_channel",
    "mary_ideal_channel",
    "mary_channel_simulator",
    "mary_guessing_adversary",
    "mary_channel_environment",
    "real_commitment",
    "ideal_commitment",
    "commitment_simulator",
    "commitment_environment",
    "commitment_emulation_instance",
    "real_consensus",
    "ideal_consensus",
    "consensus_environment",
    "ledger_client",
    "ledger_manager_pca",
    "spawning_pca",
    "random_psioa",
    "random_structured",
]
