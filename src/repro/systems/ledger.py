"""A dynamic ledger: clients join and leave at run time.

This is the dynamicity workload the paper's introduction motivates
(blockchains whose participant set changes): a manager PCA *creates* a
fresh client automaton on each ``join`` and clients *destroy themselves*
(reach the empty signature) once their transaction is acknowledged —
exercising intrinsic transitions with creation and destruction
(Definition 2.14) and PCA constraints (Definition 2.16) at scale.

The module also provides the generic :func:`spawning_pca` used by the
creation-monotonicity experiment (E11): a PCA that dynamically creates a
caller-chosen automaton, so ``X_A`` and ``X_B`` differing only in what they
create can be compared under creation-oblivious schedulers.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.config.configuration import Configuration
from repro.config.pca import CanonicalPCA
from repro.core.psioa import PSIOA, TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import dirac

__all__ = [
    "ledger_client",
    "ledger_manager",
    "ledger_manager_pca",
    "spawning_pca",
    "ordering_ledger",
    "fifo_ideal_ledger",
    "ordering_adversary",
    "reversing_adversary",
    "fifo_adversary",
    "reversing_script",
    "fifo_script",
    "ideal_fifo_script",
    "ledger_environment",
]


def ledger_client(client_id: Hashable) -> TablePSIOA:
    """A client: submits one transaction, waits for the acknowledgement,
    then reaches the empty signature (self-destruction, Definition 2.12)."""
    submit = ("tx", client_id)
    ack = ("ack", client_id)
    signatures = {
        "fresh": Signature(outputs={submit}),
        "pending": Signature(inputs={ack}),
        "gone": Signature(),
    }
    transitions = {
        ("fresh", submit): dirac("pending"),
        ("pending", ack): dirac("gone"),
    }
    return TablePSIOA(("client", client_id), "fresh", signatures, transitions)


def ledger_manager(count: int, name: Hashable = "ledger-mgr") -> TablePSIOA:
    """The ordering service: admits ``count`` clients (emitting ``join i``),
    and acknowledges transactions in arrival order."""
    joins = [("join", i) for i in range(count)]
    txs = frozenset(("tx", i) for i in range(count))
    signatures = {}
    transitions = {}

    # States: ("m", joined, pending) with joined = number of joins emitted,
    # pending = frozenset of client ids with unacknowledged transactions.
    def sig(joined: int, pending: frozenset) -> Signature:
        outputs = set()
        if joined < count:
            outputs.add(("join", joined))
        if pending:
            outputs.add(("ack", min(pending)))
        return Signature(inputs=txs, outputs=outputs)

    for joined in range(count + 1):
        for pending in _subsets(range(count)):
            state = ("m", joined, pending)
            signatures[state] = sig(joined, pending)
            if joined < count:
                transitions[(state, ("join", joined))] = dirac(("m", joined + 1, pending))
            if pending:
                head = min(pending)
                transitions[(state, ("ack", head))] = dirac(("m", joined, pending - {head}))
            for i in range(count):
                target = pending | {i}
                transitions[(state, ("tx", i))] = dirac(("m", joined, frozenset(target)))
    return TablePSIOA(name, ("m", 0, frozenset()), signatures, transitions)


def _subsets(items) -> Sequence[frozenset]:
    items = list(items)
    out = [frozenset()]
    for item in items:
        out += [s | {item} for s in out]
    return out


def ledger_manager_pca(count: int, *, name: Hashable = "ledger") -> CanonicalPCA:
    """The dynamic ledger PCA: each ``join i`` creates client ``i`` at run
    time; clients self-destruct after their acknowledgement."""
    manager = ledger_manager(count, name=(name, "mgr"))

    def created(configuration: Configuration, action):
        if isinstance(action, tuple) and action[0] == "join":
            return [ledger_client(action[1])]
        return []

    return CanonicalPCA(name, [manager], created=created)


def spawning_pca(
    child_factory: Callable[[], PSIOA],
    *,
    name: Hashable = "spawner",
    trigger: Hashable = "spawn",
    manager_name: Optional[Hashable] = None,
) -> CanonicalPCA:
    """A PCA that creates ``child_factory()`` when ``trigger`` fires.

    This is the shape of the creation-monotonicity property (Section 4.4
    discussion): two spawning PCA differing only in the created child can
    be compared under creation-oblivious schedulers.
    """
    mgr_name = manager_name if manager_name is not None else (name, "mgr")
    manager = TablePSIOA(
        mgr_name,
        "ready",
        {
            "ready": Signature(outputs={trigger}),
            "spawned": Signature(inputs={("poke", mgr_name)}),
        },
        {
            ("ready", trigger): dirac("spawned"),
            ("spawned", ("poke", mgr_name)): dirac("spawned"),
        },
    )

    def created(configuration: Configuration, action):
        if action == trigger:
            return [child_factory()]
        return []

    return CanonicalPCA(name, [manager], created=created)


# -- ordering ledgers: which ideal functionality is realizable? ------------------

SUBMIT = lambda i: ("submit", i)
COMMITTED = lambda i: ("committed", i)
ORDER = lambda perm: ("order", perm)
PENDING = ("pending",)

_SUBMITS = frozenset({SUBMIT(1), SUBMIT(2)})


def ordering_ledger(name: Hashable = "ord-ledger"):
    """The *real* ledger protocol: once both transactions are submitted,
    the adversary chooses the commit order.

    Environment actions: ``submit i`` in, ``committed i`` out.  Adversary
    actions: ``("pending",)`` out (the ledger announces a full batch) and
    ``("order", "12"/"21")`` in (the adversary's choice) — the classic
    power a real ordering service grants its network adversary.
    """
    from repro.secure.structured import structure

    signatures = {
        "idle": Signature(inputs=_SUBMITS),
        ("one", 1): Signature(inputs=_SUBMITS),
        ("one", 2): Signature(inputs=_SUBMITS),
        "ask": Signature(inputs=_SUBMITS, outputs={PENDING}),
        "await": Signature(inputs=_SUBMITS | {ORDER("12"), ORDER("21")}),
        "done": Signature(inputs=_SUBMITS),
    }
    transitions = {
        ("idle", SUBMIT(1)): dirac(("one", 1)),
        ("idle", SUBMIT(2)): dirac(("one", 2)),
        (("one", 1), SUBMIT(1)): dirac(("one", 1)),
        (("one", 1), SUBMIT(2)): dirac("ask"),
        (("one", 2), SUBMIT(2)): dirac(("one", 2)),
        (("one", 2), SUBMIT(1)): dirac("ask"),
        ("ask", PENDING): dirac("await"),
        ("await", ORDER("12")): dirac(("c1", 1, 2)),
        ("await", ORDER("21")): dirac(("c1", 2, 1)),
    }
    for state in ("ask", "await", "done"):
        for s in _SUBMITS:
            transitions[(state, s)] = dirac(state)
    for first, second in [(1, 2), (2, 1)]:
        signatures[("c1", first, second)] = Signature(
            inputs=_SUBMITS, outputs={COMMITTED(first)}
        )
        transitions[(("c1", first, second), COMMITTED(first))] = dirac(("c2", second))
        for s in _SUBMITS:
            transitions[(("c1", first, second), s)] = dirac(("c1", first, second))
    for second in (1, 2):
        signatures[("c2", second)] = Signature(inputs=_SUBMITS, outputs={COMMITTED(second)})
        transitions[(("c2", second), COMMITTED(second))] = dirac("done")
        for s in _SUBMITS:
            transitions[(("c2", second), s)] = dirac(("c2", second))
    base = TablePSIOA(name, "idle", signatures, transitions)
    return structure(base, _SUBMITS | {COMMITTED(1), COMMITTED(2)})


def fifo_ideal_ledger(name: Hashable = "fifo-ledger"):
    """The *strict-FIFO* ideal ledger: commits in submission order; the
    adversary is only notified (``("pending",)``) and has **no** ordering
    input.

    This ideal is **not realizable** by the ordering protocol: no simulator
    can make the FIFO commits match an adversarially reversed real-world
    order — experiment E14 measures the constant distinguishing advantage.
    """
    from repro.secure.structured import structure

    signatures = {
        "idle": Signature(inputs=_SUBMITS),
        ("one", 1): Signature(inputs=_SUBMITS),
        ("one", 2): Signature(inputs=_SUBMITS),
        "done": Signature(inputs=_SUBMITS),
    }
    transitions = {
        ("idle", SUBMIT(1)): dirac(("one", 1)),
        ("idle", SUBMIT(2)): dirac(("one", 2)),
        (("one", 1), SUBMIT(1)): dirac(("one", 1)),
        (("one", 2), SUBMIT(2)): dirac(("one", 2)),
    }
    # FIFO: the commit order is the submission order.
    transitions[(("one", 1), SUBMIT(2))] = dirac(("ask", 1, 2))
    transitions[(("one", 2), SUBMIT(1))] = dirac(("ask", 2, 1))
    for first, second in [(1, 2), (2, 1)]:
        signatures[("ask", first, second)] = Signature(
            inputs=_SUBMITS, outputs={PENDING}
        )
        transitions[(("ask", first, second), PENDING)] = dirac(("c1", first, second))
        signatures[("c1", first, second)] = Signature(
            inputs=_SUBMITS, outputs={COMMITTED(first)}
        )
        transitions[(("c1", first, second), COMMITTED(first))] = dirac(("c2", second))
        for s in _SUBMITS:
            transitions[(("ask", first, second), s)] = dirac(("ask", first, second))
            transitions[(("c1", first, second), s)] = dirac(("c1", first, second))
    for second in (1, 2):
        signatures[("c2", second)] = Signature(inputs=_SUBMITS, outputs={COMMITTED(second)})
        transitions[(("c2", second), COMMITTED(second))] = dirac("done")
        for s in _SUBMITS:
            transitions[(("c2", second), s)] = dirac(("c2", second))
    for s in _SUBMITS:
        transitions[("done", s)] = dirac("done")
    base = TablePSIOA(name, "idle", signatures, transitions)
    return structure(base, _SUBMITS | {COMMITTED(1), COMMITTED(2)})


def ordering_adversary(name: Hashable = "OrdAdv") -> TablePSIOA:
    """The Definition-4.24-compliant ordering adversary: a single state
    covering *both* ordering inputs of the ledger at all times (the
    definition requires ``AI_A(q) subseteq out(Adv)(q_Adv)`` at every
    reachable joint state, and exhaustive exploration reaches states where
    a multi-phase adversary would have retired its outputs).

    The concrete order choice is the scheduler's — faithful to the
    framework, where scheduling *is* the adversary's resolution power
    (Section 3).  Use the scripts below to realize the malicious/benign
    resolutions.
    """
    orders = {ORDER("12"), ORDER("21")}
    sig = Signature(inputs={PENDING}, outputs=orders)
    transitions = {("s", a): dirac("s") for a in orders | {PENDING}}
    return TablePSIOA(name, "s", {"s": sig}, transitions)


def reversing_adversary(name: Hashable = "RevAdv") -> TablePSIOA:
    """Alias of :func:`ordering_adversary`; pair with
    :func:`reversing_script` to realize the reversing resolution."""
    return ordering_adversary(name)


def fifo_adversary(name: Hashable = "FifoAdv") -> TablePSIOA:
    """Alias of :func:`ordering_adversary`; pair with :func:`fifo_script`."""
    return ordering_adversary(name)


def reversing_script():
    """The oblivious script of the reversing resolution against the real
    ordering ledger (plus the environment's accept)."""
    return [
        SUBMIT(1), SUBMIT(2), PENDING, ORDER("21"),
        COMMITTED(2), COMMITTED(1), "acc",
    ]


def fifo_script():
    """The benign resolution against the real ordering ledger."""
    return [
        SUBMIT(1), SUBMIT(2), PENDING, ORDER("12"),
        COMMITTED(1), COMMITTED(2), "acc",
    ]


def ideal_fifo_script():
    """The canonical run of the strict-FIFO ideal (no ordering input)."""
    return [
        SUBMIT(1), SUBMIT(2), PENDING,
        COMMITTED(1), COMMITTED(2), "acc",
    ]


def ledger_environment(name: Hashable = "LedgerEnv") -> TablePSIOA:
    """Submits tx 1 then tx 2 and raises ``acc`` iff the commits arrive
    *reversed* — the distinguisher separating the ordering protocol from
    the strict-FIFO ideal."""
    commits = frozenset({COMMITTED(1), COMMITTED(2)})
    signatures = {
        "s1": Signature(outputs={SUBMIT(1)}, inputs=commits),
        "s2": Signature(outputs={SUBMIT(2)}, inputs=commits),
        "watch": Signature(inputs=commits),
        "rev": Signature(inputs=commits, outputs={"acc"}),
        "fwd": Signature(inputs=commits),
        "end": Signature(inputs=commits),
    }
    transitions = {
        ("s1", SUBMIT(1)): dirac("s2"),
        ("s2", SUBMIT(2)): dirac("watch"),
        ("watch", COMMITTED(2)): dirac("rev"),
        ("watch", COMMITTED(1)): dirac("fwd"),
        ("rev", "acc"): dirac("end"),
    }
    for state in ("s1", "s2", "rev", "fwd", "end"):
        for c in commits:
            transitions.setdefault((state, c), dirac(state))
    return TablePSIOA(name, "s1", signatures, transitions)
