"""Bit commitment: masked real protocol vs ideal functionality.

The real committer publishes ``post = b XOR r`` where the mask ``r`` is a
pad bit with bias ``2^{-(k+1)}`` (so hiding holds up to a geometrically
small advantage), then reveals ``b`` on demand.  The ideal functionality
publishes only the fact that a commitment was made and reveals on demand —
binding and hiding are perfect by construction.

This second emulation workload exercises the same machinery as the OTP
channel but with a *two-phase* environment interface (commit then open),
so simulators must be consistent across phases.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Optional

from repro.bounded.families import PSIOAFamily
from repro.core.composition import compose
from repro.core.psioa import PSIOA, TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac
from repro.secure.dummy import hide_adversary_actions
from repro.secure.emulation import EmulationInstance
from repro.secure.structured import StructuredPSIOA, structure

__all__ = [
    "COMMIT",
    "OPEN",
    "REVEAL",
    "POST",
    "POSTED",
    "real_commitment",
    "ideal_commitment",
    "posting_adversary",
    "commitment_simulator",
    "commitment_environment",
    "commitment_emulation_instance",
]

COMMIT = lambda b: ("commit", b)
OPEN = ("open",)
REVEAL = lambda b: ("reveal", b)
POST = lambda c: ("post", c)
POSTED = ("posted",)

_EACT = frozenset({COMMIT(0), COMMIT(1), OPEN, REVEAL(0), REVEAL(1)})


def _mask_bias(k: Optional[int]) -> Fraction:
    return Fraction(0) if k is None else Fraction(1, 2 ** (k + 1))


def real_commitment(name: Hashable = "real-com", k: Optional[int] = None) -> StructuredPSIOA:
    """The masked commitment: ``post = b XOR r`` with ``P(r=0)=1/2+delta``."""
    delta = _mask_bias(k)
    env_inputs = frozenset({COMMIT(0), COMMIT(1), OPEN})
    signatures = {"idle": Signature(inputs=env_inputs)}
    transitions = {("idle", OPEN): dirac("idle")}
    for b in (0, 1):
        p_same = Fraction(1, 2) + delta  # P(post == b) = P(r = 0)
        transitions[("idle", COMMIT(b))] = DiscreteMeasure(
            {("mask", b, b): p_same, ("mask", b, 1 - b): 1 - p_same}
        )
        for c in (0, 1):
            signatures[("mask", b, c)] = Signature(inputs=env_inputs, outputs={POST(c)})
            for x in (COMMIT(0), COMMIT(1), OPEN):
                transitions[(("mask", b, c), x)] = dirac(("mask", b, c))
            transitions[(("mask", b, c), POST(c))] = dirac(("held", b))
        signatures[("held", b)] = Signature(inputs=env_inputs)
        for x in (COMMIT(0), COMMIT(1)):
            transitions[(("held", b), x)] = dirac(("held", b))
        transitions[(("held", b), OPEN)] = dirac(("opening", b))
        signatures[("opening", b)] = Signature(inputs=env_inputs, outputs={REVEAL(b)})
        for x in (COMMIT(0), COMMIT(1), OPEN):
            transitions[(("opening", b), x)] = dirac(("opening", b))
        transitions[(("opening", b), REVEAL(b))] = dirac("done")
    signatures["done"] = Signature(inputs=env_inputs)
    for x in (COMMIT(0), COMMIT(1), OPEN):
        transitions[("done", x)] = dirac("done")
    return structure(TablePSIOA(name, "idle", signatures, transitions), _EACT)


def ideal_commitment(name: Hashable = "ideal-com") -> StructuredPSIOA:
    """The ideal functionality: publish only ``("posted",)``."""
    env_inputs = frozenset({COMMIT(0), COMMIT(1), OPEN})
    signatures = {"idle": Signature(inputs=env_inputs)}
    transitions = {("idle", OPEN): dirac("idle")}
    for b in (0, 1):
        transitions[("idle", COMMIT(b))] = dirac(("notify", b))
        signatures[("notify", b)] = Signature(inputs=env_inputs, outputs={POSTED})
        for x in (COMMIT(0), COMMIT(1), OPEN):
            transitions[(("notify", b), x)] = dirac(("notify", b))
        transitions[(("notify", b), POSTED)] = dirac(("held", b))
        signatures[("held", b)] = Signature(inputs=env_inputs)
        for x in (COMMIT(0), COMMIT(1)):
            transitions[(("held", b), x)] = dirac(("held", b))
        transitions[(("held", b), OPEN)] = dirac(("opening", b))
        signatures[("opening", b)] = Signature(inputs=env_inputs, outputs={REVEAL(b)})
        for x in (COMMIT(0), COMMIT(1), OPEN):
            transitions[(("opening", b), x)] = dirac(("opening", b))
        transitions[(("opening", b), REVEAL(b))] = dirac("done")
    signatures["done"] = Signature(inputs=env_inputs)
    for x in (COMMIT(0), COMMIT(1), OPEN):
        transitions[("done", x)] = dirac("done")
    return structure(TablePSIOA(name, "idle", signatures, transitions), _EACT)


def _commitment_sim_core(name: Hashable = "ComSimCore") -> TablePSIOA:
    """Fakes a uniform masked post on the ideal notification."""
    signatures = {
        "wait": Signature(inputs={POSTED}),
        "spent": Signature(inputs={POSTED}),
    }
    transitions = {
        ("wait", POSTED): DiscreteMeasure(
            {("fake", 0): Fraction(1, 2), ("fake", 1): Fraction(1, 2)}
        ),
        ("spent", POSTED): dirac("spent"),
    }
    for c in (0, 1):
        signatures[("fake", c)] = Signature(inputs={POSTED}, outputs={POST(c)})
        transitions[(("fake", c), POSTED)] = dirac(("fake", c))
        transitions[(("fake", c), POST(c))] = dirac("spent")
    return TablePSIOA(name, "wait", signatures, transitions)


def posting_adversary(name: Hashable = "ComAdv", *, guess_kind: str = "guess") -> TablePSIOA:
    """The real-interface adversary: reads the masked post and announces a
    guess of the committed bit on the ``guess_kind`` channel."""
    posts = {POST(0), POST(1)}
    guess = lambda b: (guess_kind, b)
    signatures = {"wait": Signature(inputs=posts)}
    transitions = {}
    for c in (0, 1):
        transitions[("wait", POST(c))] = dirac(("heard", c))
        signatures[("heard", c)] = Signature(inputs=posts, outputs={guess(c)})
        for c2 in (0, 1):
            transitions[(("heard", c), POST(c2))] = dirac(("heard", c))
        transitions[(("heard", c), guess(c))] = dirac("told")
    signatures["told"] = Signature(inputs=posts)
    for c in (0, 1):
        transitions[("told", POST(c))] = dirac("told")
    return TablePSIOA(name, "wait", signatures, transitions)


def commitment_simulator(adversary: PSIOA, *, name: Hashable = "ComSim") -> PSIOA:
    """``Sim = hide(SimCore || Adv, post-actions)``."""
    stack = compose(_commitment_sim_core(("core", name)), adversary, name=("sim-stack", name))
    return hide_adversary_actions(stack, frozenset({POST(0), POST(1)}), name=name)


def commitment_environment(
    bit: int, name: Hashable = None, *, guess_kind: str = "guess"
) -> TablePSIOA:
    """Distinguisher: commits ``bit``, opens, and accepts when the
    adversary guessed the committed bit before the reveal.

    ``guess_kind`` names the adversary's announcement channel — override it
    when composing with other workloads whose adversaries also guess.
    """
    name = name if name is not None else ("com-env", bit)
    guess = lambda b: (guess_kind, b)
    watched = frozenset({REVEAL(0), REVEAL(1), guess(0), guess(1)})

    def sig(outputs=()):
        return Signature(inputs=watched, outputs=frozenset(outputs))

    signatures = {
        "start": Signature(outputs={COMMIT(bit)}),
        "committed": sig({OPEN}),
        "hit": sig({OPEN}),
        "miss": sig({OPEN}),
        "opened": sig({"acc"}),
        "end": sig(),
    }
    transitions = {("start", COMMIT(bit)): dirac("committed")}
    for state in ("committed", "hit", "miss", "opened", "end"):
        for b in (0, 1):
            transitions[(state, REVEAL(b))] = dirac(state)
    for b in (0, 1):
        transitions[("committed", guess(b))] = dirac("hit" if b == bit else "miss")
        for state in ("hit", "miss", "opened", "end"):
            transitions[(state, guess(b))] = dirac(state)
    transitions[("committed", OPEN)] = dirac("committed")
    transitions[("hit", OPEN)] = dirac("opened")
    transitions[("miss", OPEN)] = dirac("end")
    transitions[("opened", "acc")] = dirac("end")
    return TablePSIOA(name, "start", signatures, transitions)


def commitment_emulation_instance(*, leaky: bool = True, name: str = "commitment") -> EmulationInstance:
    """``real-commitment(k) <=_SE ideal-commitment`` with hiding error
    ``2^{-(k+1)}`` (0 when ``leaky=False``)."""
    real = PSIOAFamily(
        f"{name}/real",
        lambda k: real_commitment(("real-com", k), k if leaky else None),
    )
    ideal = PSIOAFamily(f"{name}/ideal", lambda k: ideal_commitment(("ideal-com", k)))
    return EmulationInstance(
        name,
        real,
        ideal,
        simulator_for=lambda k, adv: commitment_simulator(adv, name=("ComSim", k)),
    )
