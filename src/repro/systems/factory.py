"""Seeded random automaton generation for property tests and benchmarks.

Generates valid finite PSIOA with controllable size: every generated
automaton satisfies the Definition 2.1 constraints by construction
(disjoint signature components, one probability measure per enabled
action).  All randomness flows through a seeded ``numpy`` generator, so
workloads are bit-reproducible.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.probability.measures import DiscreteMeasure, dirac
from repro.secure.structured import StructuredPSIOA, structure

__all__ = ["random_psioa", "random_structured"]


def random_psioa(
    name: Hashable,
    rng: np.random.Generator,
    *,
    n_states: int = 6,
    n_actions: int = 4,
    branching: int = 2,
    input_fraction: float = 0.3,
    action_prefix: Optional[Hashable] = None,
) -> TablePSIOA:
    """A random valid PSIOA.

    * states are ``0 .. n_states-1`` with start 0;
    * the action alphabet is ``(prefix, j)`` (prefix defaults to ``name``,
      keeping alphabets disjoint between automata by default);
    * each state enables a random non-empty subset of the alphabet, split
      into inputs and locally-controlled actions;
    * each enabled action gets a random dyadic distribution over at most
      ``branching`` target states (exact rational weights).
    """
    prefix = action_prefix if action_prefix is not None else name
    alphabet = [(prefix, j) for j in range(n_actions)]
    signatures = {}
    transitions = {}
    for state in range(n_states):
        count = int(rng.integers(1, n_actions + 1))
        chosen_idx = rng.choice(n_actions, size=count, replace=False)
        inputs: List = []
        outputs: List = []
        internals: List = []
        for j in sorted(int(i) for i in chosen_idx):
            roll = rng.random()
            if roll < input_fraction:
                inputs.append(alphabet[j])
            elif roll < input_fraction + (1 - input_fraction) / 2:
                outputs.append(alphabet[j])
            else:
                internals.append(alphabet[j])
        signatures[state] = Signature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )
        for action in inputs + outputs + internals:
            fan = int(rng.integers(1, branching + 1))
            targets = sorted(int(t) for t in rng.choice(n_states, size=fan, replace=False))
            if len(targets) == 1:
                transitions[(state, action)] = dirac(targets[0])
            else:
                # Dyadic weights: uniform over 2^ceil(log2(fan)) slots merged.
                weight = Fraction(1, len(targets))
                transitions[(state, action)] = DiscreteMeasure(
                    {t: weight for t in targets}
                )
    return TablePSIOA(name, 0, signatures, transitions)


def random_structured(
    name: Hashable,
    rng: np.random.Generator,
    *,
    env_fraction: float = 0.5,
    **kwargs,
) -> StructuredPSIOA:
    """A random structured PSIOA: each external action is marked
    environment-facing with probability ``env_fraction`` (globally, so the
    split is state-independent)."""
    base = random_psioa(name, rng, **kwargs)
    external: set = set()
    for sig in base.signatures.values():
        external |= sig.external
    marked = frozenset(a for a in sorted(external, key=repr) if rng.random() < env_fraction)
    return structure(base, marked)
