"""Compositional randomized consensus: two *separate* process automata.

Where :mod:`repro.systems.consensus` models the protocol as one monolithic
automaton (convenient for exact sweeps), this module builds it the way the
formalism intends — as a **composition** of per-process PSIOA exchanging
vote actions, each flipping its own local coin (Ben-Or style):

* round 0 votes carry the proposals; on agreement a process decides;
* on disagreement each process flips a *local* fair coin (an internal
  probabilistic action), adopts it, and the processes re-exchange votes;
* after ``k`` coin rounds a process times out and decides its current
  value — so the composed protocol violates agreement exactly when all
  ``k`` coin rounds produced differing coins: probability ``2^{-k}``,
  matching the monolithic model.

The module is the framework's "realistic distributed system" stress case:
the protocol emerges from composition (Definition 2.18), synchronization
from matched input/output actions, and randomness from per-component
internal transitions.  ``consensus_pair`` wires two processes; the
environments and insight of :mod:`repro.systems.consensus` apply unchanged
because the external interface (``propose``/``decide``) is identical.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Tuple

from repro.core.composition import ComposedPSIOA, compose
from repro.core.psioa import TablePSIOA
from repro.core.signature import Signature
from repro.experiments.common import kind_priority_schema
from repro.probability.measures import DiscreteMeasure, dirac

__all__ = ["consensus_process", "consensus_pair", "consensus_pair_schema"]

PROPOSE = lambda proc, v: ("propose", proc, v)
VOTE = lambda proc, r, v: ("vote", proc, r, v)
DECIDE = lambda proc, v: ("decide", proc, v)
RESOLVE = lambda proc, r: ("resolve", proc, r)
COIN = lambda proc, r: ("localcoin", proc, r)


def consensus_process(i: int, j: int, k: int, *, name: Hashable = None) -> TablePSIOA:
    """One consensus process: id ``i``, peer ``j``, ``k`` local-coin rounds.

    States (``r`` is the current round, ``v`` my value, ``w`` the peer's):

    * ``idle`` — waiting for the proposal;
    * ``("send", r, v)`` — must emit my round-``r`` vote; the peer's vote
      may arrive first (``("send+", r, v, w)``);
    * ``("sent", r, v)`` — waiting for the peer's round-``r`` vote;
    * ``("cmp", r, v, w)`` — internal resolution: agree -> decide,
      disagree -> flip (or time out at round ``k``);
    * ``("flip", r, v)`` — the local coin (probabilistic internal step);
    * ``("decide", v)`` — emit the decision, then sink.
    """
    name = name if name is not None else ("proc", i)
    proposals = frozenset(PROPOSE(i, v) for v in (0, 1))
    signatures = {"idle": Signature(inputs=proposals)}
    transitions = {}
    for v in (0, 1):
        transitions[("idle", PROPOSE(i, v))] = dirac(("send", 0, v))

    for r in range(k + 1):
        peer_votes = frozenset(VOTE(j, r, w) for w in (0, 1))
        for v in (0, 1):
            # send: my vote pending; peer's vote may overtake.
            signatures[("send", r, v)] = Signature(
                inputs=peer_votes | proposals, outputs={VOTE(i, r, v)}
            )
            transitions[(("send", r, v), VOTE(i, r, v))] = dirac(("sent", r, v))
            for p in proposals:
                transitions[(("send", r, v), p)] = dirac(("send", r, v))
            for w in (0, 1):
                transitions[(("send", r, v), VOTE(j, r, w))] = dirac(("send+", r, v, w))
                # send+: peer vote recorded, my vote still pending.
                signatures[("send+", r, v, w)] = Signature(
                    inputs=proposals, outputs={VOTE(i, r, v)}
                )
                transitions[(("send+", r, v, w), VOTE(i, r, v))] = dirac(("cmp", r, v, w))
                for p in proposals:
                    transitions[(("send+", r, v, w), p)] = dirac(("send+", r, v, w))
            # sent: my vote out, waiting for the peer's.
            signatures[("sent", r, v)] = Signature(inputs=peer_votes | proposals)
            for p in proposals:
                transitions[(("sent", r, v), p)] = dirac(("sent", r, v))
            for w in (0, 1):
                transitions[(("sent", r, v), VOTE(j, r, w))] = dirac(("cmp", r, v, w))
            # cmp: internal resolution.
            for w in (0, 1):
                signatures[("cmp", r, v, w)] = Signature(
                    inputs=proposals, internals={RESOLVE(i, r)}
                )
                for p in proposals:
                    transitions[(("cmp", r, v, w), p)] = dirac(("cmp", r, v, w))
                if v == w or r == k:
                    target = dirac(("decide", v))
                else:
                    target = dirac(("flip", r, v))
                transitions[(("cmp", r, v, w), RESOLVE(i, r))] = target
            # flip: the local coin, feeding the next round.
            if r < k:
                signatures[("flip", r, v)] = Signature(
                    inputs=proposals, internals={COIN(i, r)}
                )
                for p in proposals:
                    transitions[(("flip", r, v), p)] = dirac(("flip", r, v))
                transitions[(("flip", r, v), COIN(i, r))] = DiscreteMeasure(
                    {("send", r + 1, 0): Fraction(1, 2), ("send", r + 1, 1): Fraction(1, 2)}
                )

    for v in (0, 1):
        # Decisions; the sink absorbs late proposals and any peer votes.
        late = frozenset(VOTE(j, r, w) for r in range(k + 1) for w in (0, 1))
        signatures[("decide", v)] = Signature(
            inputs=proposals | late, outputs={DECIDE(i, v)}
        )
        for a in proposals | late:
            transitions[(("decide", v), a)] = dirac(("decide", v))
        transitions[(("decide", v), DECIDE(i, v))] = dirac("sink")
    sink_inputs = proposals | frozenset(
        VOTE(j, r, w) for r in range(k + 1) for w in (0, 1)
    )
    signatures["sink"] = Signature(inputs=sink_inputs)
    for a in sink_inputs:
        transitions[("sink", a)] = dirac("sink")
    return TablePSIOA(name, "idle", signatures, transitions)


def consensus_pair(k: int, *, name: Hashable = None) -> ComposedPSIOA:
    """The two-process protocol ``P1 || P2`` with ``k`` coin rounds."""
    p1 = consensus_process(1, 2, k, name=("proc", 1, k))
    p2 = consensus_process(2, 1, k, name=("proc", 2, k))
    return compose(p1, p2, name=name if name is not None else ("consensus2", k))


def consensus_pair_schema():
    """The natural protocol driver: internal resolution and coin flips
    before votes, votes before decisions — keeping the two processes in
    lockstep rounds so no vote is ever lost."""
    return kind_priority_schema(
        ["propose", "resolve", "localcoin", "vote", "decide"], plain=["acc"]
    )
